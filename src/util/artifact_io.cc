#include "util/artifact_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace transer {
namespace artifact {

namespace {

/// Caps on the container structure. Real artifacts sit far below these;
/// a crafted file that exceeds them is rejected before any allocation.
constexpr uint32_t kMaxSections = 4096;
constexpr uint32_t kMaxNameBytes = 1 << 16;

const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

namespace {

FsyncFn g_fsync_hook = nullptr;
WriteFn g_write_hook = nullptr;

}  // namespace

FsyncFn SetFsyncHookForTesting(FsyncFn fn) {
  FsyncFn previous = g_fsync_hook;
  g_fsync_hook = fn;
  return previous;
}

int FsyncFd(int fd) {
  return g_fsync_hook != nullptr ? g_fsync_hook(fd) : ::fsync(fd);
}

WriteFn SetWriteHookForTesting(WriteFn fn) {
  WriteFn previous = g_write_hook;
  g_write_hook = fn;
  return previous;
}

ssize_t WriteFd(int fd, const void* buf, size_t count) {
  return g_write_hook != nullptr ? g_write_hook(fd, buf, count)
                                 : ::write(fd, buf, count);
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + dir + " for fsync");
  }
  const int synced = FsyncFd(fd);
  ::close(fd);
  if (synced != 0) {
    return Status::IoError("failed fsyncing directory " + dir);
  }
  return Status::OK();
}

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = CrcTable();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t FingerprintFeatureSchema(const std::vector<std::string>& names) {
  // FNV-1a over the column count and each name (with a separator so
  // {"ab","c"} and {"a","bc"} differ).
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (int shift = 0; shift < 64; shift += 8) {
    mix(static_cast<uint8_t>(names.size() >> shift));
  }
  for (const std::string& name : names) {
    for (char c : name) mix(static_cast<uint8_t>(c));
    mix(0x1F);
  }
  return h;
}

void Encoder::PutU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void Encoder::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void Encoder::PutDoubleVec(const std::vector<double>& v) {
  PutU64(v.size());
  for (double d : v) PutDouble(d);
}

void Encoder::PutIntVec(const std::vector<int>& v) {
  PutU64(v.size());
  for (int i : v) PutI64(i);
}

void Encoder::PutU64Vec(const std::vector<uint64_t>& v) {
  PutU64(v.size());
  for (uint64_t u : v) PutU64(u);
}

void Encoder::PutStringVec(const std::vector<std::string>& v) {
  PutU64(v.size());
  for (const std::string& s : v) PutString(s);
}

Status Decoder::Take(size_t n, const uint8_t** out) {
  if (n > remaining()) {
    return Status::InvalidArgument(
        StrFormat("artifact payload truncated: need %zu bytes, %zu left", n,
                  remaining()));
  }
  *out = bytes_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status Decoder::GetU8(uint8_t* out) {
  const uint8_t* p = nullptr;
  TRANSER_RETURN_IF_ERROR(Take(1, &p));
  *out = *p;
  return Status::OK();
}

Status Decoder::GetU32(uint32_t* out) {
  const uint8_t* p = nullptr;
  TRANSER_RETURN_IF_ERROR(Take(4, &p));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status Decoder::GetU64(uint64_t* out) {
  const uint8_t* p = nullptr;
  TRANSER_RETURN_IF_ERROR(Take(8, &p));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status Decoder::GetI64(int64_t* out) {
  uint64_t v = 0;
  TRANSER_RETURN_IF_ERROR(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status Decoder::GetDouble(double* out) {
  uint64_t bits = 0;
  TRANSER_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetString(std::string* out) {
  uint32_t length = 0;
  TRANSER_RETURN_IF_ERROR(GetU32(&length));
  const uint8_t* p = nullptr;
  TRANSER_RETURN_IF_ERROR(Take(length, &p));
  out->assign(reinterpret_cast<const char*>(p), length);
  return Status::OK();
}

Status Decoder::GetDoubleVec(std::vector<double>* out) {
  uint64_t count = 0;
  TRANSER_RETURN_IF_ERROR(GetU64(&count));
  if (count > remaining() / 8) {
    return Status::InvalidArgument(
        StrFormat("artifact vector count %llu exceeds the payload",
                  static_cast<unsigned long long>(count)));
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    double v = 0.0;
    TRANSER_RETURN_IF_ERROR(GetDouble(&v));
    out->push_back(v);
  }
  return Status::OK();
}

Status Decoder::GetIntVec(std::vector<int>* out) {
  uint64_t count = 0;
  TRANSER_RETURN_IF_ERROR(GetU64(&count));
  if (count > remaining() / 8) {
    return Status::InvalidArgument(
        StrFormat("artifact vector count %llu exceeds the payload",
                  static_cast<unsigned long long>(count)));
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t v = 0;
    TRANSER_RETURN_IF_ERROR(GetI64(&v));
    if (v < INT32_MIN || v > INT32_MAX) {
      return Status::InvalidArgument("artifact int out of range");
    }
    out->push_back(static_cast<int>(v));
  }
  return Status::OK();
}

Status Decoder::GetU64Vec(std::vector<uint64_t>* out) {
  uint64_t count = 0;
  TRANSER_RETURN_IF_ERROR(GetU64(&count));
  if (count > remaining() / 8) {
    return Status::InvalidArgument(
        StrFormat("artifact vector count %llu exceeds the payload",
                  static_cast<unsigned long long>(count)));
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    TRANSER_RETURN_IF_ERROR(GetU64(&v));
    out->push_back(v);
  }
  return Status::OK();
}

Status Decoder::GetStringVec(std::vector<std::string>* out) {
  uint64_t count = 0;
  TRANSER_RETURN_IF_ERROR(GetU64(&count));
  if (count > remaining() / 4) {  // each entry costs at least a u32 length
    return Status::InvalidArgument(
        StrFormat("artifact vector count %llu exceeds the payload",
                  static_cast<unsigned long long>(count)));
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string s;
    TRANSER_RETURN_IF_ERROR(GetString(&s));
    out->push_back(std::move(s));
  }
  return Status::OK();
}

Status Decoder::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("artifact payload has %zu trailing bytes", remaining()));
  }
  return Status::OK();
}

const Section* Artifact::Find(const std::string& name) const {
  for (const Section& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

Status WriteArtifact(const std::string& path, const Header& header,
                     const std::vector<Section>& sections) {
  if (path.empty()) {
    return Status::InvalidArgument("artifact path is empty");
  }
  if (sections.size() > kMaxSections) {
    return Status::InvalidArgument("too many artifact sections");
  }

  std::vector<uint8_t> file;
  file.insert(file.end(), kMagic, kMagic + sizeof(kMagic));
  Encoder body;
  body.PutU32(kFormatVersion);
  body.PutString(header.kind);
  body.PutU64(header.schema_fingerprint);
  body.PutU32(static_cast<uint32_t>(sections.size()));
  for (const Section& section : sections) {
    body.PutString(section.name);
    body.PutU64(section.payload.size());
    for (uint8_t b : section.payload) body.PutU8(b);
    body.PutU32(Crc32(section.payload.data(), section.payload.size()));
  }
  const std::vector<uint8_t> encoded = body.TakeBytes();
  file.insert(file.end(), encoded.begin(), encoded.end());
  Encoder trailer;
  trailer.PutU32(Crc32(file.data(), file.size()));
  file.insert(file.end(), trailer.bytes().begin(), trailer.bytes().end());

  // Write-temp, fsync, rename: the artifact at `path` is always either
  // the previous complete file or the new complete file.
  const std::string temp_path = path + ".tmp";
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + temp_path + " for writing");
  }
  size_t written = 0;
  while (written < file.size()) {
    const ssize_t n =
        WriteFd(fd, file.data() + written, file.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(temp_path.c_str());
      return Status::IoError("failed writing " + temp_path);
    }
    written += static_cast<size_t>(n);
  }
  // A failed fsync means the kernel could not promise the bytes are on
  // disk; surfacing it *before* the rename is what keeps the artifact at
  // `path` trustworthy — renaming first would publish a file whose
  // content might evaporate on power loss.
  if (FsyncFd(fd) != 0) {
    ::close(fd);
    ::unlink(temp_path.c_str());
    return Status::IoError("failed fsyncing " + temp_path);
  }
  if (::close(fd) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IoError("failed closing " + temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IoError("failed renaming " + temp_path + " over " + path);
  }
  // The rename itself lives in the directory; without this sync a crash
  // can forget the publish even though the file's bytes are safe. The
  // artifact at `path` is complete either way, so the caller may retry.
  return SyncParentDir(path);
}

Result<Artifact> ReadArtifact(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::NotFound("no artifact at " + path);
  }
  std::vector<uint8_t> file;
  uint8_t buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    file.insert(file.end(), buffer, buffer + n);
  }
  const bool read_error = std::ferror(in) != 0;
  std::fclose(in);
  if (read_error) {
    return Status::IoError("failed reading " + path);
  }

  // Container minimum: magic + version + kind length + fingerprint +
  // section count + trailer CRC.
  if (file.size() < sizeof(kMagic) + 4 + 4 + 8 + 4 + 4) {
    return Status::InvalidArgument(path + " is too short to be an artifact");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a TransER artifact");
  }
  // Whole-file CRC before any structure is trusted: truncation and bit
  // flips anywhere (including in the version and length fields) fail
  // here, not deep inside the parser.
  const size_t body_size = file.size() - 4;
  Decoder trailer(
      std::span<const uint8_t>(file.data() + body_size, size_t{4}));
  uint32_t stored_crc = 0;
  TRANSER_RETURN_IF_ERROR(trailer.GetU32(&stored_crc));
  if (Crc32(file.data(), body_size) != stored_crc) {
    return Status::InvalidArgument(
        path + ": artifact checksum mismatch (truncated or corrupted)");
  }

  Decoder body(std::span<const uint8_t>(file.data() + sizeof(kMagic),
                                        body_size - sizeof(kMagic)));
  uint32_t version = 0;
  TRANSER_RETURN_IF_ERROR(body.GetU32(&version));
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("%s: artifact format version %u is not supported "
                  "(this build reads version %u)",
                  path.c_str(), version, kFormatVersion));
  }

  Artifact artifact;
  TRANSER_RETURN_IF_ERROR(body.GetString(&artifact.header.kind));
  TRANSER_RETURN_IF_ERROR(body.GetU64(&artifact.header.schema_fingerprint));
  uint32_t section_count = 0;
  TRANSER_RETURN_IF_ERROR(body.GetU32(&section_count));
  if (section_count > kMaxSections) {
    return Status::InvalidArgument(path + ": implausible section count");
  }
  artifact.sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    Section section;
    TRANSER_RETURN_IF_ERROR(body.GetString(&section.name));
    if (section.name.size() > kMaxNameBytes) {
      return Status::InvalidArgument(path + ": implausible section name");
    }
    uint64_t payload_size = 0;
    TRANSER_RETURN_IF_ERROR(body.GetU64(&payload_size));
    if (payload_size > body.remaining()) {
      return Status::InvalidArgument(
          StrFormat("%s: section '%s' claims %llu bytes but only %zu remain",
                    path.c_str(), section.name.c_str(),
                    static_cast<unsigned long long>(payload_size),
                    body.remaining()));
    }
    section.payload.resize(payload_size);
    for (uint64_t b = 0; b < payload_size; ++b) {
      TRANSER_RETURN_IF_ERROR(body.GetU8(&section.payload[b]));
    }
    uint32_t section_crc = 0;
    TRANSER_RETURN_IF_ERROR(body.GetU32(&section_crc));
    if (Crc32(section.payload.data(), section.payload.size()) !=
        section_crc) {
      return Status::InvalidArgument(StrFormat(
          "%s: section '%s' checksum mismatch", path.c_str(),
          section.name.c_str()));
    }
    artifact.sections.push_back(std::move(section));
  }
  TRANSER_RETURN_IF_ERROR(body.ExpectEnd());
  return artifact;
}

}  // namespace artifact
}  // namespace transer

#ifndef TRANSER_ML_GRADIENT_BOOSTING_H_
#define TRANSER_ML_GRADIENT_BOOSTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace transer {

/// \brief Hyper-parameters for gradient-boosted trees.
struct GradientBoostingOptions {
  size_t num_rounds = 60;
  double learning_rate = 0.2;
  int max_depth = 3;
  size_t min_samples_leaf = 4;
  /// Worker lanes for the per-node split search (0 = process default).
  /// Each feature scores from a pristine copy of the node's row order,
  /// and the ordered reduce keeps the lowest-index feature on gain
  /// ties, so the fitted trees are bit-identical at any thread count.
  int num_threads = 0;
};

namespace internal_gbdt {

/// \brief Shallow regression tree fit to residuals with squared error;
/// leaves predict the (weighted) mean residual. Internal to
/// GradientBoosting.
struct RegressionTree {
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;
    ptrdiff_t left = -1;
    ptrdiff_t right = -1;
    double value = 0.0;
  };
  std::vector<Node> nodes;
  ptrdiff_t root = -1;

  void Fit(const Matrix& x, const std::vector<double>& residuals,
           const std::vector<double>& weights, int max_depth,
           size_t min_samples_leaf, int num_threads = 1);
  double Predict(std::span<const double> features) const;

 private:
  ptrdiff_t Grow(const Matrix& x, const std::vector<double>& residuals,
                 const std::vector<double>& weights,
                 std::vector<size_t>* indices, size_t begin, size_t end,
                 int depth, int max_depth, size_t min_samples_leaf,
                 int num_threads);
};

}  // namespace internal_gbdt

/// \brief Gradient-boosted decision trees for binary log loss: each round
/// fits a shallow regression tree to the negative gradient (y - p) and
/// the ensemble logit accumulates the shrunken predictions. A stronger
/// tabular family beyond the paper's four-classifier suite; plugs into
/// TransER like any other Classifier.
class GradientBoosting : public Classifier {
 public:
  explicit GradientBoosting(GradientBoostingOptions options = {})
      : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<double>& weights) override;
  using Classifier::Fit;

  double PredictProba(std::span<const double> features) const override;

  std::string name() const override { return "gradient_boosting"; }

  Status SaveState(artifact::Encoder* out) const override;
  Status LoadState(artifact::Decoder* in) override;

  size_t round_count() const { return trees_.size(); }

 private:
  GradientBoostingOptions options_;
  std::vector<internal_gbdt::RegressionTree> trees_;
  double base_logit_ = 0.0;
  size_t num_features_ = 0;
};

}  // namespace transer

#endif  // TRANSER_ML_GRADIENT_BOOSTING_H_

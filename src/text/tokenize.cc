#include "text/tokenize.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"

namespace transer {

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view text, size_t q,
                                bool padded) {
  TRANSER_CHECK_GT(q, 0u);
  std::string buffer;
  std::string_view source = text;
  if (padded && q > 1) {
    buffer.assign(q - 1, '#');
    buffer.append(text);
    buffer.append(q - 1, '$');
    source = buffer;
  }
  std::vector<std::string> grams;
  if (source.empty()) return grams;
  if (source.size() < q) {
    grams.emplace_back(source);
    return grams;
  }
  grams.reserve(source.size() - q + 1);
  for (size_t i = 0; i + q <= source.size(); ++i) {
    grams.emplace_back(source.substr(i, q));
  }
  return grams;
}

std::vector<std::string> UniqueSorted(std::vector<std::string> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace transer

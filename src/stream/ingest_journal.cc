#include "stream/ingest_journal.h"

#include <algorithm>
#include <utility>

#include "util/artifact_io.h"
#include "util/string_util.h"

namespace transer {
namespace stream {

namespace {

/// Payload version inside a frame, so the entry layout can evolve
/// independently of the framing.
constexpr uint8_t kEntryVersion = 1;

}  // namespace

std::vector<uint8_t> EncodeIngestEntry(const IngestEntry& entry) {
  artifact::Encoder encoder;
  encoder.PutU8(kEntryVersion);
  encoder.PutU64(entry.sequence);
  encoder.PutString(entry.record.id);
  encoder.PutI64(entry.record.entity_id);
  encoder.PutStringVec(entry.record.values);
  return encoder.TakeBytes();
}

Result<IngestEntry> DecodeIngestEntry(std::span<const uint8_t> payload) {
  artifact::Decoder decoder(payload);
  uint8_t version = 0;
  TRANSER_RETURN_IF_ERROR(decoder.GetU8(&version));
  if (version != kEntryVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported ingest entry version %u", version));
  }
  IngestEntry entry;
  TRANSER_RETURN_IF_ERROR(decoder.GetU64(&entry.sequence));
  TRANSER_RETURN_IF_ERROR(decoder.GetString(&entry.record.id));
  TRANSER_RETURN_IF_ERROR(decoder.GetI64(&entry.record.entity_id));
  TRANSER_RETURN_IF_ERROR(decoder.GetStringVec(&entry.record.values));
  TRANSER_RETURN_IF_ERROR(decoder.ExpectEnd());
  if (entry.sequence == 0) {
    return Status::InvalidArgument("ingest entry sequence 0 is reserved");
  }
  return entry;
}

Result<IngestJournal> IngestJournal::Open(const IngestJournalOptions& options,
                                          IngestJournalRecovery* recovery) {
  if (recovery == nullptr) {
    return Status::InvalidArgument("ingest journal recovery out-param is null");
  }
  *recovery = IngestJournalRecovery{};

  journal::SegmentedJournalOptions segment_options;
  segment_options.max_segment_bytes = options.max_segment_bytes;
  journal::SegmentedRecovery segments;
  TRANSER_ASSIGN_OR_RETURN(
      journal::SegmentedJournal journal,
      journal::SegmentedJournal::Open(options.directory, options.stem,
                                      kIngestJournalMagic, &segments,
                                      segment_options));
  recovery->tail_dropped = segments.tail_dropped;
  recovery->dropped_bytes = segments.dropped_bytes;
  recovery->segments = segments.segments.size();
  recovery->orphans_removed = segments.orphans_removed;

  IngestJournal out(options, std::move(journal));
  uint64_t last_sequence = 0;
  for (const journal::SegmentRecovery& segment : segments.segments) {
    for (size_t i = 0; i < segment.frames.size(); ++i) {
      auto entry = DecodeIngestEntry(segment.frames[i]);
      if (!entry.ok()) {
        // The frame CRC passed, so this is not bit rot: the payload
        // layout itself is wrong. That is never a torn tail — refuse.
        return Status::FailedPrecondition(StrFormat(
            "%s: frame %zu is not a valid ingest entry: %s",
            out.journal_.SegmentPath(segment.id).c_str(), i + 1,
            entry.status().message().c_str()));
      }
      if (entry.value().sequence <= last_sequence) {
        return Status::FailedPrecondition(StrFormat(
            "%s: frame %zu has sequence %llu after %llu (journal order "
            "violated)",
            out.journal_.SegmentPath(segment.id).c_str(), i + 1,
            static_cast<unsigned long long>(entry.value().sequence),
            static_cast<unsigned long long>(last_sequence)));
      }
      last_sequence = entry.value().sequence;
      recovery->entries.push_back(std::move(entry).value());
    }
    if (segment.id != out.journal_.active_segment_id()) {
      out.sealed_last_sequence_.emplace_back(segment.id, last_sequence);
    }
  }
  out.last_appended_sequence_ = last_sequence;
  out.synced_through_id_ = out.journal_.active_segment_id();
  return out;
}

void IngestJournal::SyncSealed() {
  const uint64_t active = journal_.active_segment_id();
  while (synced_through_id_ < active) {
    // Sealed since the last sync: everything it holds was appended
    // before now, so its last entry is at most last_appended_sequence_
    // (exactly it — frames land only in the then-active segment).
    sealed_last_sequence_.emplace_back(synced_through_id_,
                                       last_appended_sequence_);
    ++synced_through_id_;
  }
}

Status IngestJournal::Append(const IngestEntry& entry,
                             RunDiagnostics* diagnostics) {
  const std::vector<uint8_t> payload = EncodeIngestEntry(entry);
  // Only IoError is transient here (space may free, a dying disk may
  // recover). InvalidArgument means an oversized frame — permanent.
  const Status appended = serve::RetryWithBackoff(
      options_.retry, "ingest_journal",
      [&] { return journal_.Append(payload); },
      [](const Status& status) {
        return status.code() == StatusCode::kIoError;
      },
      options_.sleep, diagnostics);
  // Rotations may have happened inside the segmented layer (size cap,
  // or quarantine of a segment whose append failed mid-retry).
  SyncSealed();
  if (appended.ok()) last_appended_sequence_ = entry.sequence;
  return appended;
}

Result<size_t> IngestJournal::RetainCoveredBy(uint64_t sequence) {
  // When even the active segment is fully covered, seal it so its file
  // becomes droppable too; an empty active segment has nothing to seal.
  if (journal_.active_frame_count() > 0 &&
      last_appended_sequence_ <= sequence) {
    TRANSER_RETURN_IF_ERROR(journal_.Rotate());
    SyncSealed();
  }
  // Keep from the first sealed segment holding anything past the
  // snapshot; when none does, keep only the active segment.
  uint64_t keep_from = journal_.active_segment_id();
  for (const auto& [id, last] : sealed_last_sequence_) {
    if (last > sequence) {
      keep_from = id;
      break;
    }
  }
  TRANSER_ASSIGN_OR_RETURN(size_t removed,
                           journal_.DropSegmentsBefore(keep_from));
  sealed_last_sequence_.erase(
      std::remove_if(
          sealed_last_sequence_.begin(), sealed_last_sequence_.end(),
          [&](const auto& entry) { return entry.first < keep_from; }),
      sealed_last_sequence_.end());
  return removed;
}

}  // namespace stream
}  // namespace transer

#ifndef TRANSER_CORE_EXPERIMENT_H_
#define TRANSER_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/sweep_checkpoint.h"
#include "data/scenario.h"
#include "eval/aggregate.h"
#include "eval/metrics.h"
#include "ml/classifier.h"
#include "transfer/transfer_method.h"

namespace transer {

/// \brief Outcome of one (method, scenario) cell of Tables 2 / 3:
/// linkage quality aggregated over the classifier suite plus runtime.
struct MethodScenarioResult {
  std::string method;
  std::string scenario;
  QualityAggregate quality;
  std::vector<LinkageQuality> per_classifier;
  double total_runtime_seconds = 0.0;
  size_t completed_runs = 0;
  /// Non-empty when the method failed: "TE" (time), "ME" (memory), or the
  /// status message.
  std::string failure;
};

/// \brief Runs one transfer method on one scenario for every classifier in
/// the suite and aggregates (the protocol of Section 5.1.1: per-method
/// averages ± std over SVM / RF / LR / DT). A TE/ME failure on the first
/// classifier short-circuits the remaining runs.
MethodScenarioResult RunMethodOnScenario(
    const TransferMethod& method, const TransferScenario& scenario,
    const std::vector<NamedClassifierFactory>& suite,
    const TransferRunOptions& base_options);

/// Classifies a failure status into the paper's table shorthand:
/// "TE" for time, "ME" for memory, otherwise the status text.
std::string FailureShorthand(const Status& status);

/// The baseline line-up of Section 5.1.3 in table order: TransER first,
/// then Naive, DTAL*, DR, LocIT*, TCA, Coral.
std::vector<std::unique_ptr<TransferMethod>> DefaultMethodLineup();

/// \brief Controls for a (checkpointed) experiment sweep.
struct SweepOptions {
  /// JSONL journal path. Empty disables checkpointing (the sweep then
  /// behaves exactly like looping RunMethodOnScenario).
  std::string checkpoint_path;
  /// Per-cell run options: `seed` is the sweep base seed (each cell runs
  /// at seed + 1000 * classifier_index, as RunMethodOnScenario does);
  /// `context`, when set, is checked between cells so cancellation or a
  /// sweep-wide deadline stops the sweep at a cell boundary with every
  /// completed cell already journaled.
  TransferRunOptions base_options;
  /// Sink for sweep-level events (checkpoint tail drops, cell retries).
  RunDiagnostics* diagnostics = nullptr;
  /// When non-empty, each cell runs with a per-cell model snapshot path
  /// (`<dir>/<method>_<scenario>_<classifier>.tera`) so methods that
  /// support snapshots (TransER) warm-start on resume instead of
  /// retraining. The directory must already exist.
  std::string warm_start_dir;
};

/// \brief Runs every (method x scenario x classifier) cell of a
/// Table 2/3-style sweep with crash-safe restartability: each completed
/// cell is journaled; on restart, completed cells are skipped (their
/// recorded results reused, making the resumed aggregate bit-identical to
/// an uninterrupted sweep), deterministic TE/ME failures are not
/// re-attempted, and transiently-failed cells get one bounded retry.
/// Results are ordered scenario-major, method-minor. Stops with the
/// interrupting status when `base_options.context` is cancelled/expired.
Result<std::vector<MethodScenarioResult>> RunCheckpointedSweep(
    const std::vector<std::unique_ptr<TransferMethod>>& methods,
    const std::vector<TransferScenario>& scenarios,
    const std::vector<NamedClassifierFactory>& suite,
    const SweepOptions& options);

}  // namespace transer

#endif  // TRANSER_CORE_EXPERIMENT_H_

#ifndef TRANSER_TEXT_NUMERIC_SIMILARITY_H_
#define TRANSER_TEXT_NUMERIC_SIMILARITY_H_

#include <string_view>

namespace transer {

/// Absolute-difference similarity for numeric values:
/// max(0, 1 - |a-b| / max_diff). Used for years in the paper's music and
/// bibliographic feature vectors (e.g. 1970 vs 1971 -> 0.9 at max_diff=10).
double AbsoluteDifferenceSimilarity(double a, double b, double max_diff);

/// Parses both strings as numbers and applies AbsoluteDifferenceSimilarity;
/// non-numeric or missing values fall back to exact string match (1/0).
double NumericStringSimilarity(std::string_view a, std::string_view b,
                               double max_diff);

/// Exact-match similarity: 1.0 iff equal (after no normalisation), else 0.
double ExactSimilarity(std::string_view a, std::string_view b);

}  // namespace transer

#endif  // TRANSER_TEXT_NUMERIC_SIMILARITY_H_

#include "blocking/sorted_neighbourhood.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace transer {

namespace {

struct Entry {
  std::string key;
  size_t index;
  bool is_left;
};

}  // namespace

std::vector<PairRef> SortedNeighbourhoodBlocker::Block(
    const Dataset& left, const Dataset& right) const {
  TRANSER_CHECK_GT(options_.window, 1u);

  std::vector<Entry> entries;
  entries.reserve(left.size() + right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    entries.push_back({key_fn_(left.record(i)), i, true});
  }
  for (size_t j = 0; j < right.size(); ++j) {
    entries.push_back({key_fn_(right.record(j)), j, false});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });

  std::unordered_set<uint64_t> emitted;
  std::vector<PairRef> pairs;
  for (size_t start = 0; start < entries.size(); ++start) {
    const size_t end = std::min(entries.size(), start + options_.window);
    for (size_t a = start; a < end; ++a) {
      for (size_t b = a + 1; b < end; ++b) {
        const Entry& ea = entries[a];
        const Entry& eb = entries[b];
        if (ea.is_left == eb.is_left) continue;
        const size_t li = ea.is_left ? ea.index : eb.index;
        const size_t rj = ea.is_left ? eb.index : ea.index;
        const uint64_t id =
            (static_cast<uint64_t>(li) << 32) | static_cast<uint64_t>(rj);
        if (emitted.insert(id).second) pairs.push_back(PairRef{li, rj});
      }
    }
  }
  return pairs;
}

Result<std::vector<PairRef>> SortedNeighbourhoodBlocker::Block(
    const Dataset& left, const Dataset& right,
    const ExecutionContext& context, RunDiagnostics* diagnostics) const {
  TRANSER_CHECK_GT(options_.window, 1u);
  TRANSER_RETURN_IF_ERROR(context.Check("sorted_neighbourhood", diagnostics));

  // The merged key list dominates memory (keys plus indices); pair output
  // is bounded by window * entries and rides on the same reservation.
  ScopedReservation entry_memory;
  TRANSER_RETURN_IF_ERROR(entry_memory.Acquire(
      context, "sorted_neighbourhood",
      (left.size() + right.size()) *
          (sizeof(Entry) + options_.window * sizeof(PairRef)),
      diagnostics));

  std::vector<Entry> entries;
  entries.reserve(left.size() + right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    TRANSER_RETURN_IF_ERROR(
        context.Check("sorted_neighbourhood", diagnostics));
    entries.push_back({key_fn_(left.record(i)), i, true});
  }
  for (size_t j = 0; j < right.size(); ++j) {
    TRANSER_RETURN_IF_ERROR(
        context.Check("sorted_neighbourhood", diagnostics));
    entries.push_back({key_fn_(right.record(j)), j, false});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });

  std::unordered_set<uint64_t> emitted;
  std::vector<PairRef> pairs;
  for (size_t start = 0; start < entries.size(); ++start) {
    TRANSER_RETURN_IF_ERROR(
        context.Check("sorted_neighbourhood", diagnostics));
    const size_t end = std::min(entries.size(), start + options_.window);
    for (size_t a = start; a < end; ++a) {
      for (size_t b = a + 1; b < end; ++b) {
        const Entry& ea = entries[a];
        const Entry& eb = entries[b];
        if (ea.is_left == eb.is_left) continue;
        const size_t li = ea.is_left ? ea.index : eb.index;
        const size_t rj = ea.is_left ? eb.index : ea.index;
        const uint64_t id =
            (static_cast<uint64_t>(li) << 32) | static_cast<uint64_t>(rj);
        if (emitted.insert(id).second) pairs.push_back(PairRef{li, rj});
      }
    }
  }
  return pairs;
}

}  // namespace transer

#include "text/numeric_similarity.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace transer {

double AbsoluteDifferenceSimilarity(double a, double b, double max_diff) {
  TRANSER_CHECK_GT(max_diff, 0.0);
  const double diff = std::fabs(a - b);
  if (diff >= max_diff) return 0.0;
  return 1.0 - diff / max_diff;
}

double NumericStringSimilarity(std::string_view a, std::string_view b,
                               double max_diff) {
  double va = 0.0;
  double vb = 0.0;
  if (ParseDouble(a, &va) && ParseDouble(b, &vb)) {
    return AbsoluteDifferenceSimilarity(va, vb, max_diff);
  }
  return ExactSimilarity(a, b);
}

double ExactSimilarity(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

}  // namespace transer

#ifndef TRANSER_ML_LINEAR_SVM_H_
#define TRANSER_ML_LINEAR_SVM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace transer {

/// \brief Hyper-parameters for the linear SVM.
struct LinearSvmOptions {
  double lambda = 1e-3;  ///< regularisation strength (Pegasos)
  int epochs = 200;
  uint64_t seed = 2;
};

/// \brief Linear SVM trained with the Pegasos stochastic sub-gradient
/// solver, with Platt scaling (a sigmoid over the margin, fit by a few
/// Newton-free gradient steps) so PredictProba is a usable confidence —
/// required by the GEN phase's pseudo-label scores.
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearSvmOptions options = {}) : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<double>& weights) override;
  using Classifier::Fit;

  double PredictProba(std::span<const double> features) const override;

  std::string name() const override { return "linear_svm"; }

  Status SaveState(artifact::Encoder* out) const override;
  Status LoadState(artifact::Decoder* in) override;

  /// Raw (uncalibrated) margin w.x + b.
  double DecisionFunction(std::span<const double> features) const;

 private:
  /// Fits the Platt sigmoid P(y=1|margin) = sigmoid(a*margin + b).
  void FitPlatt(const Matrix& x, const std::vector<int>& y);

  LinearSvmOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  double platt_a_ = 1.0;
  double platt_b_ = 0.0;
};

}  // namespace transer

#endif  // TRANSER_ML_LINEAR_SVM_H_

#include "transfer/transfer_method.h"

#include "util/logging.h"

namespace transer {

const ExecutionContext& ResolveExecutionContext(
    const TransferRunOptions& run_options,
    std::optional<ExecutionContext>* local) {
  if (run_options.context != nullptr) return *run_options.context;
  if (run_options.time_limit_seconds <= 0.0 &&
      run_options.memory_limit_bytes == 0) {
    return ExecutionContext::Unlimited();
  }
  local->emplace(ExecutionLimits{run_options.time_limit_seconds,
                                 run_options.memory_limit_bytes});
  return **local;
}

namespace transfer_internal {

size_t DomainWorkingSetBytes(const FeatureMatrix& source,
                             const FeatureMatrix& target) {
  return (source.size() + target.size()) * source.num_features() *
         sizeof(double);
}

std::vector<int> RequireLabels(const FeatureMatrix& x) {
  std::vector<int> labels(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const int label = x.label(i);
    TRANSER_CHECK_NE(label, kUnlabeled)
        << "instance " << i << " has no label";
    labels[i] = label;
  }
  return labels;
}

}  // namespace transfer_internal
}  // namespace transer

#ifndef TRANSER_ML_SCALER_H_
#define TRANSER_ML_SCALER_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace transer {

namespace artifact {
class Encoder;
class Decoder;
}  // namespace artifact

/// \brief Per-feature standardisation (zero mean, unit variance), fit on
/// training data and applied to train and test alike. Needed by the
/// gradient-trained models (LR, SVM, MLP) when features are embeddings.
class StandardScaler {
 public:
  /// Learns column means and standard deviations from `x`.
  void Fit(const Matrix& x);

  /// Returns the standardised copy of `x`. Requires a prior Fit.
  Matrix Transform(const Matrix& x) const;

  /// Fit followed by Transform on the same data.
  Matrix FitTransform(const Matrix& x);

  /// Standardises one vector in place.
  void TransformInPlace(std::vector<double>* v) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

  /// Serialises the fitted moments into an artifact payload.
  Status SaveState(artifact::Encoder* out) const;
  /// Restores the moments, validating finiteness and strictly positive
  /// standard deviations before committing any state.
  Status LoadState(artifact::Decoder* in);

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace transer

#endif  // TRANSER_ML_SCALER_H_

#include "data/dataset_statistics.h"

#include <algorithm>

#include "util/logging.h"

namespace transer {

DomainPairStatistics ComputePairStatistics(const std::string& name_a,
                                           const FeatureMatrix& a,
                                           const std::string& name_b,
                                           const FeatureMatrix& b) {
  TRANSER_CHECK_EQ(a.num_features(), b.num_features());
  AmbiguityAnalyzer analyzer(/*decimals=*/2);
  DomainPairStatistics stats;
  stats.domain_a = name_a;
  stats.domain_b = name_b;
  stats.num_features = a.num_features();
  stats.stats_a = analyzer.Analyze(a);
  stats.stats_b = analyzer.Analyze(b);
  stats.common = analyzer.AnalyzeCommon(a, b);
  return stats;
}

size_t SimilarityHistogram::ArgMax() const {
  TRANSER_CHECK(!counts.empty());
  return static_cast<size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

bool SimilarityHistogram::IsBimodal(double valley_ratio) const {
  if (counts.size() < 3) return false;
  // Smooth with a 3-bin moving average to ignore jitter peaks.
  std::vector<double> smooth(counts.size(), 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    double total = static_cast<double>(counts[i]);
    double cells = 1.0;
    if (i > 0) {
      total += static_cast<double>(counts[i - 1]);
      cells += 1.0;
    }
    if (i + 1 < counts.size()) {
      total += static_cast<double>(counts[i + 1]);
      cells += 1.0;
    }
    smooth[i] = total / cells;
  }
  // Find the two highest local maxima and the valley between them.
  std::vector<size_t> peaks;
  for (size_t i = 1; i + 1 < smooth.size(); ++i) {
    if (smooth[i] >= smooth[i - 1] && smooth[i] >= smooth[i + 1] &&
        smooth[i] > 0.0) {
      peaks.push_back(i);
    }
  }
  if (smooth[0] > smooth[1]) peaks.insert(peaks.begin(), 0);
  if (smooth.back() > smooth[smooth.size() - 2]) {
    peaks.push_back(smooth.size() - 1);
  }
  if (peaks.size() < 2) return false;
  std::sort(peaks.begin(), peaks.end(),
            [&smooth](size_t l, size_t r) { return smooth[l] > smooth[r]; });
  size_t p1 = peaks[0];
  size_t p2 = peaks[1];
  if (p1 > p2) std::swap(p1, p2);
  if (p2 - p1 < 2) return false;
  double valley = smooth[p1];
  for (size_t i = p1; i <= p2; ++i) valley = std::min(valley, smooth[i]);
  const double smaller_peak = std::min(smooth[p1], smooth[p2]);
  return valley <= valley_ratio * smaller_peak;
}

SimilarityHistogram ComputeSimilarityHistogram(const FeatureMatrix& x,
                                               size_t bins) {
  TRANSER_CHECK_GT(bins, 0u);
  SimilarityHistogram hist;
  hist.bins = bins;
  hist.counts.assign(bins, 0);
  for (size_t i = 0; i < x.size(); ++i) {
    double total = 0.0;
    for (double v : x.Row(i)) total += v;
    const double avg =
        x.num_features() > 0 ? total / static_cast<double>(x.num_features())
                             : 0.0;
    size_t bin = static_cast<size_t>(avg * static_cast<double>(bins));
    if (bin >= bins) bin = bins - 1;
    ++hist.counts[bin];
  }
  return hist;
}

}  // namespace transer

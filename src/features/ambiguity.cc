#include "features/ambiguity.h"

#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace transer {

namespace {

/// Label census of one distinct vector.
struct VectorCensus {
  size_t matches = 0;
  size_t nonmatches = 0;

  bool ambiguous() const { return matches > 0 && nonmatches > 0; }
  bool match_only() const { return matches > 0 && nonmatches == 0; }
};

std::unordered_map<std::string, VectorCensus> BuildCensus(
    const FeatureMatrix& x, const AmbiguityAnalyzer& analyzer) {
  std::unordered_map<std::string, VectorCensus> census;
  for (size_t i = 0; i < x.size(); ++i) {
    VectorCensus& entry = census[analyzer.Key(x.Row(i))];
    if (x.label(i) == kMatch) {
      ++entry.matches;
    } else if (x.label(i) == kNonMatch) {
      ++entry.nonmatches;
    }
  }
  return census;
}

}  // namespace

AmbiguityAnalyzer::AmbiguityAnalyzer(int decimals) : decimals_(decimals) {
  TRANSER_CHECK_GE(decimals, 0);
  TRANSER_CHECK_LE(decimals, 9);
}

std::string AmbiguityAnalyzer::Key(std::span<const double> row) const {
  std::string key;
  key.reserve(row.size() * (static_cast<size_t>(decimals_) + 3));
  for (double v : row) {
    key += StrFormat("%.*f|", decimals_, v);
  }
  return key;
}

AmbiguityStats AmbiguityAnalyzer::Analyze(const FeatureMatrix& x) const {
  const auto census = BuildCensus(x, *this);
  AmbiguityStats stats;
  stats.total_instances = x.size();
  stats.distinct_vectors = census.size();
  if (x.empty()) return stats;

  size_t match_only = 0, nonmatch_only = 0, ambiguous = 0;
  for (const auto& [key, entry] : census) {
    const size_t instances = entry.matches + entry.nonmatches;
    if (entry.ambiguous()) {
      ambiguous += instances;
    } else if (entry.match_only()) {
      match_only += instances;
    } else {
      nonmatch_only += instances;
    }
  }
  const double n = static_cast<double>(x.size());
  stats.match_fraction = static_cast<double>(match_only) / n;
  stats.nonmatch_fraction = static_cast<double>(nonmatch_only) / n;
  stats.ambiguous_fraction = static_cast<double>(ambiguous) / n;
  return stats;
}

CommonVectorStats AmbiguityAnalyzer::AnalyzeCommon(
    const FeatureMatrix& a, const FeatureMatrix& b) const {
  const auto census_a = BuildCensus(a, *this);
  const auto census_b = BuildCensus(b, *this);

  CommonVectorStats stats;
  size_t same = 0, diff = 0, ambiguous = 0;
  for (const auto& [key, entry_a] : census_a) {
    auto it = census_b.find(key);
    if (it == census_b.end()) continue;
    const VectorCensus& entry_b = it->second;
    ++stats.common_distinct_vectors;
    if (entry_a.ambiguous() || entry_b.ambiguous()) {
      ++ambiguous;
    } else if (entry_a.match_only() == entry_b.match_only()) {
      ++same;
    } else {
      ++diff;
    }
  }
  if (stats.common_distinct_vectors > 0) {
    const double n = static_cast<double>(stats.common_distinct_vectors);
    stats.same_class_fraction = static_cast<double>(same) / n;
    stats.diff_class_fraction = static_cast<double>(diff) / n;
    stats.ambiguous_fraction = static_cast<double>(ambiguous) / n;
  }
  return stats;
}

}  // namespace transer

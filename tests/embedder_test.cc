#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "text/char_ngram_embedder.h"

namespace transer {
namespace {

TEST(CharNgramEmbedderTest, DimensionAndDeterminism) {
  CharNgramEmbedderOptions options;
  options.dimension = 24;
  CharNgramEmbedder embedder(options);
  const auto a = embedder.Embed("kirielle");
  const auto b = embedder.Embed("kirielle");
  EXPECT_EQ(a.size(), 24u);
  EXPECT_EQ(a, b);
}

TEST(CharNgramEmbedderTest, NonEmptyStringsAreUnitNorm) {
  CharNgramEmbedder embedder;
  EXPECT_NEAR(L2Norm(embedder.Embed("christen")), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(L2Norm(embedder.Embed("")), 0.0);
}

TEST(CharNgramEmbedderTest, SimilarSpellingsAreCloserThanUnrelated) {
  CharNgramEmbedder embedder;
  const auto base = embedder.Embed("margaret");
  const auto typo = embedder.Embed("margret");
  const auto other = embedder.Embed("xylophone");
  EXPECT_GT(Dot(base, typo), Dot(base, other));
  EXPECT_GT(Dot(base, typo), 0.5);  // subword overlap dominates
}

TEST(CharNgramEmbedderTest, SeedChangesTheSpace) {
  CharNgramEmbedderOptions a_options;
  a_options.seed = 1;
  CharNgramEmbedderOptions b_options;
  b_options.seed = 2;
  CharNgramEmbedder a(a_options), b(b_options);
  EXPECT_NE(a.Embed("smith"), b.Embed("smith"));
}

TEST(CharNgramEmbedderTest, EmbedFieldsConcatenates) {
  CharNgramEmbedderOptions options;
  options.dimension = 8;
  CharNgramEmbedder embedder(options);
  const auto out = embedder.EmbedFields({"a", "b", "c"});
  EXPECT_EQ(out.size(), 24u);
}

TEST(CharNgramEmbedderTest, EmbedPairShapeAndIdentityProperty) {
  CharNgramEmbedderOptions options;
  options.dimension = 8;
  CharNgramEmbedder embedder(options);
  EXPECT_EQ(embedder.PairDimension(2), 32u);
  const auto same = embedder.EmbedPair({"x", "y"}, {"x", "y"});
  ASSERT_EQ(same.size(), 32u);
  // |e - e| components are exactly zero for identical fields.
  for (size_t f = 0; f < 2; ++f) {
    for (size_t d = 0; d < 8; ++d) {
      EXPECT_DOUBLE_EQ(same[f * 16 + d], 0.0);
    }
  }
}

}  // namespace
}  // namespace transer

#ifndef TRANSER_ML_NAIVE_BAYES_H_
#define TRANSER_ML_NAIVE_BAYES_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace transer {

/// \brief Options for Gaussian naive Bayes.
struct NaiveBayesOptions {
  double variance_floor = 1e-6;  ///< keeps degenerate features usable
};

/// \brief Gaussian naive Bayes: per-class, per-feature normal likelihoods
/// with weighted sufficient statistics. A fast extra classifier family
/// beyond the paper's four, useful in tests and examples.
class GaussianNaiveBayes : public Classifier {
 public:
  explicit GaussianNaiveBayes(NaiveBayesOptions options = {})
      : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<double>& weights) override;
  using Classifier::Fit;

  double PredictProba(std::span<const double> features) const override;

  std::string name() const override { return "naive_bayes"; }

  Status SaveState(artifact::Encoder* out) const override;
  Status LoadState(artifact::Decoder* in) override;

 private:
  NaiveBayesOptions options_;
  double log_prior_match_ = 0.0;
  double log_prior_nonmatch_ = 0.0;
  std::vector<double> mean_[2];      ///< [class][feature]
  std::vector<double> variance_[2];  ///< [class][feature]
  bool has_class_[2] = {false, false};
};

}  // namespace transer

#endif  // TRANSER_ML_NAIVE_BAYES_H_

#ifndef TRANSER_TESTING_FAULT_INJECTION_H_
#define TRANSER_TESTING_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "features/feature_matrix.h"
#include "util/status.h"

namespace transer {
namespace fault {

/// \brief The fault classes the chaos suite injects. Each models a
/// real-world dirty-data regime the pipeline must survive: sensor/ETL
/// gaps (NaN), serialisation bugs (corrupted CSV), annotation noise
/// (label flips) and pathological domains (single class).
enum class FaultKind {
  kNanFeatures = 0,   ///< random feature cells replaced by NaN
  kInfFeatures,       ///< random feature cells replaced by ±Inf
  kLabelFlips,        ///< random labels inverted
  kOutOfDomainLabels, ///< random labels replaced by invalid codes
  kSingleClass,       ///< all instances of one class removed
  kCorruptedCsvRows,  ///< CSV text rows truncated / garbled / mis-quoted
};

/// Short identifier, e.g. "nan_features".
const char* FaultKindName(FaultKind kind);

/// All matrix-level fault kinds (everything except kCorruptedCsvRows).
std::vector<FaultKind> MatrixFaultKinds();

/// \brief Injection controls. Everything is driven by the seeded Rng so
/// a chaos failure reproduces exactly from (kind, rate, seed).
struct FaultOptions {
  double rate = 0.1;    ///< fraction of rows (or cells) affected
  uint64_t seed = 42;
};

/// Returns a copy of `matrix` with ~`rate` of the rows carrying one NaN
/// feature cell each.
FeatureMatrix InjectNanFeatures(const FeatureMatrix& matrix,
                                const FaultOptions& options);

/// Returns a copy with ~`rate` of the rows carrying one ±Inf cell each.
FeatureMatrix InjectInfFeatures(const FeatureMatrix& matrix,
                                const FaultOptions& options);

/// Returns a copy with ~`rate` of the labelled rows' labels inverted.
FeatureMatrix InjectLabelFlips(const FeatureMatrix& matrix,
                               const FaultOptions& options);

/// Returns a copy with ~`rate` of the rows' labels replaced by codes
/// outside {kMatch, kNonMatch, kUnlabeled}.
FeatureMatrix InjectOutOfDomainLabels(const FeatureMatrix& matrix,
                                      const FaultOptions& options);

/// Returns a copy containing only the rows labelled `keep_label` — the
/// degenerate all-one-class domain.
FeatureMatrix MakeSingleClass(const FeatureMatrix& matrix, int keep_label);

/// Applies the matrix-level fault `kind` (kCorruptedCsvRows is a text
/// fault; CHECK-fails here).
FeatureMatrix InjectMatrixFault(const FeatureMatrix& matrix, FaultKind kind,
                                const FaultOptions& options);

/// Corrupts ~`rate` of the data lines of CSV `text`: truncation (missing
/// fields), inserted garbage tokens, and broken quoting, chosen per line
/// by the seeded Rng. The header line is left intact.
std::string CorruptCsvText(const std::string& text,
                           const FaultOptions& options);

// --- On-disk corruption helpers for artifact/checkpoint robustness ---
// These act on binary files byte-for-byte, modelling the torn writes and
// bit rot a loader must reject cleanly.

/// Reads the whole file into `out`. NotFound / IoError on failure.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` to `path`, replacing any existing content (plain
/// overwrite — deliberately NOT atomic, this is the fault injector).
Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes);

/// XORs the byte at `offset` with `mask` (default: flip every bit).
/// InvalidArgument when `offset` is past the end, or when `mask` is 0
/// (a no-op "corruption" would silently weaken a test).
Status FlipFileByte(const std::string& path, size_t offset,
                    uint8_t mask = 0xFF);

/// Truncates the file to its first `keep_bytes` bytes — the torn tail a
/// crash mid-write leaves behind. InvalidArgument when `keep_bytes`
/// exceeds the current size (truncation must shrink, not extend).
Status TruncateFile(const std::string& path, size_t keep_bytes);

/// \brief Scoped partial-write fault: while alive, every WriteFileBytes
/// call writes at most `bytes_before_failure` bytes of its payload and
/// then fails with an ENOSPC-style IoError, leaving the torn prefix on
/// disk — the "disk filled up mid-write" regime a loader and its retry
/// path must survive. `fail_after_writes` successful calls pass through
/// untouched first (0 = fail from the first write). Not thread-safe by
/// design: it mutates process-global injection state, so it belongs in
/// single-threaded test setup, and at most one may be alive at a time
/// (a nested scope CHECK-fails).
class ScopedPartialWriteFault {
 public:
  explicit ScopedPartialWriteFault(size_t bytes_before_failure,
                                   size_t fail_after_writes = 0);
  ~ScopedPartialWriteFault();

  ScopedPartialWriteFault(const ScopedPartialWriteFault&) = delete;
  ScopedPartialWriteFault& operator=(const ScopedPartialWriteFault&) = delete;

  /// WriteFileBytes calls that hit the fault so far.
  size_t injected_failures() const;
};

/// \brief Scoped disk-full fault: while alive, every write the library
/// issues through artifact::WriteFd (artifact temp files, journal
/// headers, journal appends) draws from a byte allowance of
/// `bytes_before_enospc`. Once the allowance is spent, writes land
/// partially (up to the remaining allowance) and then fail with ENOSPC —
/// exactly how a filling filesystem behaves: a torn prefix on disk and
/// -1/ENOSPC to the caller. Writers must surface a clean IoError, never
/// acknowledge the torn bytes, and leave the file recoverable. Same
/// discipline as the other scoped faults: process-global, single-
/// threaded test setup only, at most one alive at a time (nested scopes
/// CHECK-fail).
class ScopedDiskFullFault {
 public:
  explicit ScopedDiskFullFault(size_t bytes_before_enospc);
  ~ScopedDiskFullFault();

  ScopedDiskFullFault(const ScopedDiskFullFault&) = delete;
  ScopedDiskFullFault& operator=(const ScopedDiskFullFault&) = delete;

  /// write calls that returned -1/ENOSPC so far.
  size_t injected_failures() const;
  /// Bytes of allowance left (0 once the "disk" is full).
  size_t bytes_remaining() const;
  /// Refills the allowance — the "space was freed" regime a retry path
  /// recovers in.
  void Refill(size_t bytes);
};

/// \brief Scoped fsync fault: while alive, every fsync the library
/// issues through artifact::FsyncFd (artifact writes, journal appends,
/// directory syncs after rename) fails with an EIO-style error after
/// `fail_after_syncs` successful calls pass through (0 = fail from the
/// first). Models a dying disk / filesystem that accepts writes but
/// cannot make them durable — the regime in which a writer must report
/// a write error rather than publish unsynced bytes. Same discipline as
/// ScopedPartialWriteFault: process-global, single-threaded test setup
/// only, at most one alive at a time (nested scopes CHECK-fail).
class ScopedFsyncFault {
 public:
  explicit ScopedFsyncFault(size_t fail_after_syncs = 0);
  ~ScopedFsyncFault();

  ScopedFsyncFault(const ScopedFsyncFault&) = delete;
  ScopedFsyncFault& operator=(const ScopedFsyncFault&) = delete;

  /// fsync calls that hit the fault so far.
  size_t injected_failures() const;
};

}  // namespace fault
}  // namespace transer

#endif  // TRANSER_TESTING_FAULT_INJECTION_H_

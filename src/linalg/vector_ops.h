#ifndef TRANSER_LINALG_VECTOR_OPS_H_
#define TRANSER_LINALG_VECTOR_OPS_H_

#include <span>
#include <vector>

namespace transer {

/// Convenience layer over linalg/kernels: the vector-returning API the
/// rest of the codebase grew up with, plus allocation-free span
/// overloads for hot paths. All reductions delegate to the kernel
/// layer, so their accumulation order follows the determinism contract
/// in kernels.h (four interleaved lanes), not the old sequential loop.

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (L2) norm.
double L2Norm(const std::vector<double>& v);
double L2Norm(std::span<const double> v);

/// Euclidean distance between equal-length vectors.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);
double L2Distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance (avoids the sqrt for k-NN comparisons).
double SquaredL2Distance(const std::vector<double>& a,
                         const std::vector<double>& b);
double SquaredL2Distance(std::span<const double> a, std::span<const double> b);

/// a + b, element-wise.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b, element-wise.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// v * s, element-wise.
std::vector<double> Scale(const std::vector<double>& v, double s);

/// In-place a += b.
void AddInPlace(std::span<double> a, std::span<const double> b);

/// In-place a -= b.
void SubtractInPlace(std::span<double> a, std::span<const double> b);

/// In-place v *= s.
void ScaleInPlace(std::span<double> v, double s);

/// Arithmetic mean of `vectors` (all equal length; at least one vector).
std::vector<double> Mean(const std::vector<std::vector<double>>& vectors);

/// Mean of `vectors` accumulated into caller-owned `out` (resized to
/// match). Bit-identical to Mean() with no per-call allocation once
/// `out` has capacity.
void MeanInto(const std::vector<std::vector<double>>& vectors,
              std::vector<double>* out);

/// In-place a += s * b.
void Axpy(double s, const std::vector<double>& b, std::vector<double>* a);
void Axpy(double s, std::span<const double> b, std::span<double> a);

/// Normalises v to unit L2 norm; leaves zero vectors untouched.
void NormalizeInPlace(std::vector<double>* v);

}  // namespace transer

#endif  // TRANSER_LINALG_VECTOR_OPS_H_

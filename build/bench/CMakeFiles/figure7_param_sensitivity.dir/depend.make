# Empty dependencies file for figure7_param_sensitivity.
# This may be replaced when dependencies are built.

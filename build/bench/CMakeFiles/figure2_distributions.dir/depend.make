# Empty dependencies file for figure2_distributions.
# This may be replaced when dependencies are built.

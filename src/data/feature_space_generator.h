#ifndef TRANSER_DATA_FEATURE_SPACE_GENERATOR_H_
#define TRANSER_DATA_FEATURE_SPACE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "features/feature_matrix.h"

namespace transer {

/// \brief Structure shared by the two domains of one transfer pair: the
/// feature space itself and the pool of *ambiguous prototypes* — distinct
/// mid-similarity feature vectors that occur with both labels (the
/// Ambiguous columns of Table 1) and are common to both domains, creating
/// the class-conditional-distribution differences TransER targets.
struct FeatureSpaceSharedSpec {
  size_t num_features = 4;
  size_t num_ambiguous_prototypes = 60;
  uint64_t prototype_seed = 1234;
  /// Range prototypes are drawn from (mid-similarity region between the
  /// two modes, where true matches and non-matches collide).
  double prototype_low = 0.35;
  double prototype_high = 0.80;
};

/// \brief One domain's generation parameters. The bi-modal shape of ER
/// similarity data (Figure 2) comes from two Gaussian modes — a low
/// non-match mode holding most of the mass and a high match mode — with
/// values rounded to `round_decimals` like the paper's feature vectors.
struct FeatureDomainSpec {
  std::string name = "domain";
  size_t num_instances = 1000;
  double match_fraction = 0.30;       ///< unambiguous match instances
  double ambiguous_fraction = 0.04;   ///< instances drawn from prototypes
  double match_mean = 0.80;           ///< centre of the match mode
  double match_stddev = 0.10;
  double nonmatch_mean = 0.25;        ///< centre of the non-match mode
  double nonmatch_stddev = 0.12;
  /// Additive shift of both mode centres: the marginal-probability-
  /// distribution difference P(X^S) != P(X^T) between paired domains.
  double mode_shift = 0.0;
  /// P(label = match) inside the shared ambiguous region: differing values
  /// across paired domains realise P(Y|X)^S != P(Y|X)^T (Diff-class
  /// vectors of Table 1). Used when ambiguous_gain == 0.
  double ambiguous_match_prob = 0.5;
  /// When > 0, the ambiguous region's conditional follows a logistic curve
  /// along the similarity axis instead of the flat probability above:
  ///   P(match | prototype) = sigmoid(gain * (mean(prototype) - center)).
  /// `gain` models the data set's curation quality — crisp curation (high
  /// gain) makes ambiguous vectors resolvable by their position, blurry
  /// curation (low gain) leaves near-coin-flip labels that poison any
  /// classifier trained on them. Differing centers/gains across a pair
  /// realise the conditional shift.
  double ambiguous_gain = 0.0;
  double ambiguous_center = 0.55;
  /// Split of each mode's noise between a per-instance *shared* component
  /// (the record pair's overall data quality, moving all similarities
  /// together — what makes real ER feature vectors lie on a quality axis)
  /// and per-feature independent jitter. 1.0 = fully correlated features,
  /// 0.0 = fully independent. The shared component has stddev
  /// fraction * stddev; the independent part sqrt(1-fraction^2) * stddev,
  /// so the per-feature marginal variance is unchanged.
  double shared_noise_fraction = 0.9;
  /// Fraction of unambiguous instances whose label is flipped.
  double label_noise = 0.0;
  int round_decimals = 2;
  uint64_t seed = 1;
};

/// \brief Generates labelled feature matrices with paper-matched
/// statistics. One generator instance represents a *pair* of homogeneous
/// domains: both Generate() calls share prototypes and per-feature
/// offsets, so their feature spaces align exactly.
class FeatureSpaceGenerator {
 public:
  explicit FeatureSpaceGenerator(FeatureSpaceSharedSpec shared);

  /// Generates one domain's feature matrix (rows shuffled).
  FeatureMatrix Generate(const FeatureDomainSpec& spec) const;

  /// The shared ambiguous prototype vectors.
  const std::vector<std::vector<double>>& prototypes() const {
    return prototypes_;
  }

  const FeatureSpaceSharedSpec& shared() const { return shared_; }

 private:
  FeatureSpaceSharedSpec shared_;
  std::vector<double> feature_offsets_;  ///< shared per-feature mean offsets
  std::vector<std::vector<double>> prototypes_;
};

}  // namespace transer

#endif  // TRANSER_DATA_FEATURE_SPACE_GENERATOR_H_

#ifndef TRANSER_UTIL_JOURNAL_IO_H_
#define TRANSER_UTIL_JOURNAL_IO_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace transer {
namespace journal {

/// \file
/// The one torn-tail recovery discipline every append-only journal in
/// the library shares (DESIGN.md §11). A journal on disk is always a
/// well-formed prefix of what was written: a crash mid-append can at
/// worst leave a damaged *trailing* entry, which recovery drops and
/// truncates away. Damage anywhere *before* the tail is not consistent
/// with the append protocol — it means the file was edited or belongs
/// to someone else — and is an error rather than silent data loss.
/// Both the line-based sweep checkpoint (core/sweep_checkpoint) and the
/// binary CRC-framed ingest WAL (stream/ingest_journal) recover through
/// the helpers here, so the policy cannot drift between them.

// ---------------------------------------------------------------------
// Line journals (one entry per text line; the entry format supplies its
// own malformation check).

/// \brief What line recovery found at `path`.
struct LineRecovery {
  std::vector<std::string> lines;  ///< well-formed entries, file order
  size_t total_lines = 0;          ///< non-blank lines present pre-drop
  bool tail_dropped = false;       ///< trailing corrupt line was dropped
};

/// Reads the line journal at `path` and validates every non-blank line
/// with `validate` (non-OK = malformed). A missing file is an empty
/// journal. Only the final line may be malformed (dropped and reported
/// via `tail_dropped`); a malformed line with well-formed lines after
/// it fails with FailedPrecondition. The file itself is not modified —
/// callers persist the truncation by rewriting their journal.
Result<LineRecovery> RecoverJournalLines(
    const std::string& path,
    const std::function<Status(const std::string&)>& validate);

// ---------------------------------------------------------------------
// Binary CRC-framed journals.

/// \brief Frame-journal tuning knobs.
struct FrameJournalOptions {
  /// Frames larger than this are rejected on write and treated as
  /// corruption on read (a flipped length field can claim anything).
  uint32_t max_frame_bytes = 16u << 20;
};

/// \brief What FrameJournal::Open recovered from an existing file.
struct FrameRecovery {
  std::vector<std::vector<uint8_t>> frames;  ///< payloads, append order
  bool tail_dropped = false;  ///< torn/corrupt tail truncated away
  size_t dropped_bytes = 0;   ///< bytes removed by the truncation
};

/// \brief Append-only write-ahead journal of CRC-framed binary records.
///
/// Layout: a 12-byte header — 4-byte flavour magic, u32 format version,
/// u32 CRC-32 of the first 8 bytes — then zero or more frames, each
/// `u32 payload length | payload | u32 CRC-32(payload)`. All integers
/// little-endian (the artifact_io Encoder discipline).
///
/// Durability contract: Append returns OK only after the frame is
/// written *and* fsync'd, so an acknowledged record survives SIGKILL
/// and power loss. A crash mid-append leaves a torn tail that the next
/// Open truncates back to the last durable frame; a complete-but-CRC-
/// corrupt frame *before* the end of the file fails Open instead (see
/// the file comment). A fresh journal is created via write-temp-fsync-
/// rename, so a crash during creation never leaves a half header.
///
/// Not thread-safe: one writer owns a journal (the ingest loop is
/// single-writer by design; determinism comes from journal order).
class FrameJournal {
 public:
  FrameJournal() = default;
  ~FrameJournal();
  FrameJournal(FrameJournal&& other) noexcept;
  FrameJournal& operator=(FrameJournal&& other) noexcept;
  FrameJournal(const FrameJournal&) = delete;
  FrameJournal& operator=(const FrameJournal&) = delete;

  /// Opens (creating if absent) the journal at `path` with the given
  /// 4-byte flavour magic. Existing frames are recovered into
  /// `recovery` (optional); a torn tail is truncated on disk before
  /// returning. Wrong magic -> InvalidArgument; future format version
  /// -> FailedPrecondition; mid-file corruption -> FailedPrecondition.
  static Result<FrameJournal> Open(const std::string& path,
                                   const char magic[4],
                                   FrameRecovery* recovery = nullptr,
                                   const FrameJournalOptions& options = {});

  /// Appends one frame durably (write + fsync) before returning. On
  /// any failure the file is truncated back to the previous durable
  /// prefix (best effort) and the journal remains usable.
  Status Append(std::span<const uint8_t> payload);

  /// Atomically replaces the journal at `path` with a fresh header plus
  /// `frames` (write-temp-fsync-rename). The compaction primitive: the
  /// caller re-Opens afterwards. Any open FrameJournal on `path` must
  /// be closed first.
  static Status Rewrite(const std::string& path, const char magic[4],
                        const std::vector<std::vector<uint8_t>>& frames,
                        const FrameJournalOptions& options = {});

  /// Closes the file descriptor (idempotent; the destructor closes too).
  void Close();

  bool is_open() const { return fd_ >= 0; }
  size_t frame_count() const { return frame_count_; }
  size_t size_bytes() const { return write_offset_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  FrameJournalOptions options_;
  int fd_ = -1;
  size_t write_offset_ = 0;  ///< end of the durable well-formed prefix
  size_t frame_count_ = 0;
};

/// Read-only frame scan of the journal at `path`: validates the header
/// and recovers every intact frame into `recovery` without truncating
/// anything or keeping a descriptor. Sealed (non-active) segments of a
/// SegmentedJournal are read this way — a torn tail there is *reported*
/// (`tail_dropped`), never repaired, because mid-chain damage is the
/// caller's FailedPrecondition to raise, not a tail to silently drop.
Status ScanFrames(const std::string& path, const char magic[4],
                  FrameRecovery* recovery,
                  const FrameJournalOptions& options = {});

// ---------------------------------------------------------------------
// Segmented journals: a chain of fixed-size FrameJournal segments under
// one directory, with an atomically-published manifest naming the live
// id range. Rotation seals the active segment and opens the next;
// retention drops whole sealed segments from the front. Both are
// crash-ordered so recovery can always reconcile the manifest with the
// files actually present (DESIGN.md §13).

/// \brief Segmented-journal tuning knobs.
struct SegmentedJournalOptions {
  /// The active segment rotates once its size reaches this many bytes
  /// (checked before each append, so a segment may exceed it by at most
  /// one frame).
  size_t max_segment_bytes = 8u << 20;
  /// Per-segment frame cap, forwarded to FrameJournal.
  FrameJournalOptions frame_options;
};

/// \brief One recovered segment: its id and the frames it held.
struct SegmentRecovery {
  uint64_t id = 0;
  std::vector<std::vector<uint8_t>> frames;  ///< payloads, append order
};

/// \brief What SegmentedJournal::Open recovered.
struct SegmentedRecovery {
  std::vector<SegmentRecovery> segments;  ///< ascending id order
  bool tail_dropped = false;   ///< last segment had a torn tail truncated
  size_t dropped_bytes = 0;    ///< bytes removed from the last segment
  size_t orphans_removed = 0;  ///< stale .tmp / out-of-range files deleted
};

/// \brief A disk-budgetable WAL made of rotating FrameJournal segments.
///
/// Layout under `directory`: segment files `<stem>.NNNNNN.wal` (zero-
/// padded decimal id, ids never reused) plus a manifest `<stem>.manifest`
/// — 4-byte magic "TSJM", u32 version, u64 first live id, u64 last live
/// id, u32 CRC-32 of the preceding bytes — published with write-temp-
/// fsync-rename so it is always either the old or the new range, never
/// torn.
///
/// Crash ordering:
///  - Rotation creates the new segment file *before* publishing the
///    manifest that includes it; a crash between leaves an orphan file
///    past `last`, deleted on recovery.
///  - Retention publishes the manifest that excludes dropped segments
///    *before* unlinking them; a crash between leaves stale files below
///    `first`, deleted on recovery.
/// Recovery therefore trusts the manifest range, scans segments
/// first..last-1 read-only (any torn tail there is mid-chain damage ->
/// FailedPrecondition), and opens the last segment writable with the
/// usual torn-tail truncation.
///
/// Not thread-safe — same single-writer contract as FrameJournal.
class SegmentedJournal {
 public:
  SegmentedJournal() = default;
  SegmentedJournal(SegmentedJournal&&) noexcept = default;
  SegmentedJournal& operator=(SegmentedJournal&&) noexcept = default;
  SegmentedJournal(const SegmentedJournal&) = delete;
  SegmentedJournal& operator=(const SegmentedJournal&) = delete;

  /// Opens (creating if needed) the segmented journal `<stem>.*` in
  /// `directory`. Existing frames are recovered into `recovery`
  /// (optional). A directory with segments but no manifest fails with
  /// FailedPrecondition (the manifest is published at creation, so its
  /// absence means tampering); a corrupt manifest is InvalidArgument.
  static Result<SegmentedJournal> Open(const std::string& directory,
                                       const std::string& stem,
                                       const char magic[4],
                                       SegmentedRecovery* recovery = nullptr,
                                       const SegmentedJournalOptions& options = {});

  /// Appends one frame durably, rotating to a fresh segment first when
  /// the active one is at its size cap. On an append failure the active
  /// segment is sealed as-is (quarantined from further writes) so a
  /// caller-level retry lands on a fresh segment; the failed frame is
  /// never acknowledged.
  Status Append(std::span<const uint8_t> payload);

  /// Seals the active segment and starts a new one, regardless of size.
  /// A no-op-sized active segment still rotates (ids are cheap; callers
  /// use this to make "everything before now" droppable).
  Status Rotate();

  /// Drops every *sealed* segment with id < `keep_from_id` — manifest
  /// first, then unlink, per the crash ordering above. The active
  /// segment is never dropped. Returns the number of segments removed.
  Result<size_t> DropSegmentsBefore(uint64_t keep_from_id);

  /// Closes the active segment descriptor (idempotent).
  void Close() { active_.Close(); }

  bool is_open() const { return active_.is_open(); }
  uint64_t first_segment_id() const { return first_id_; }
  uint64_t active_segment_id() const { return last_id_; }
  size_t segment_count() const { return sealed_bytes_.size() + 1; }
  /// Frames in the *active* segment (sealed frames already reported via
  /// recovery are not re-counted here).
  size_t active_frame_count() const { return active_.frame_count(); }
  /// Total live bytes on disk: sealed segment sizes + active segment.
  size_t total_bytes() const;
  const std::string& directory() const { return directory_; }

  /// Path of segment `id` under this journal's directory/stem.
  std::string SegmentPath(uint64_t id) const;

 private:
  Status PublishManifest(uint64_t first_id, uint64_t last_id);
  Status OpenFreshSegment(uint64_t id);

  std::string directory_;
  std::string stem_;
  char magic_[4] = {0, 0, 0, 0};
  SegmentedJournalOptions options_;
  uint64_t first_id_ = 0;  ///< oldest live segment id
  uint64_t last_id_ = 0;   ///< active segment id
  /// Set when an append on the active segment failed: the next append
  /// rotates away from it first (the segment itself is clean — failed
  /// appends are truncated — but the descriptor saw an I/O error).
  bool quarantine_pending_ = false;
  /// Size in bytes of each sealed live segment, keyed by id.
  std::vector<std::pair<uint64_t, size_t>> sealed_bytes_;
  FrameJournal active_;
};

}  // namespace journal
}  // namespace transer

#endif  // TRANSER_UTIL_JOURNAL_IO_H_

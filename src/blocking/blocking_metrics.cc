#include "blocking/blocking_metrics.h"

namespace transer {

BlockingQuality EvaluateBlocking(const LinkageProblem& problem,
                                 const std::vector<PairRef>& pairs) {
  BlockingQuality quality;
  quality.candidate_pairs = pairs.size();
  quality.true_matches_total = problem.CountTrueMatches();
  quality.comparison_space = problem.left.size() * problem.right.size();
  for (const PairRef& pair : pairs) {
    const Record& l = problem.left.record(pair.left_index);
    const Record& r = problem.right.record(pair.right_index);
    if (l.entity_id >= 0 && l.entity_id == r.entity_id) {
      ++quality.true_matches_in_candidates;
    }
  }
  return quality;
}

}  // namespace transer

#ifndef TRANSER_CORE_ACTIVE_TRANSER_H_
#define TRANSER_CORE_ACTIVE_TRANSER_H_

#include <functional>
#include <vector>

#include "core/transer.h"

namespace transer {

/// An oracle that returns the true label (kMatch / kNonMatch) of target
/// instance `index` — a human reviewer in practice.
using LabelOracle = std::function<int(size_t index)>;

/// \brief Options for the active-learning extension.
struct ActiveTransEROptions {
  TransEROptions transer;
  /// Number of oracle queries allowed.
  size_t budget = 50;
};

/// \brief Outcome of an active TransER run.
struct ActiveTransERResult {
  std::vector<int> predicted;           ///< final target labels
  std::vector<size_t> queried_indices;  ///< instances sent to the oracle
};

/// \brief TransER + uncertainty-sampling active learning: after the GEN
/// phase, the `budget` target instances with the *least confident* pseudo
/// labels are sent to the oracle; their true labels join the confident
/// pseudo-labelled set that trains the final target classifier.
/// Implements the paper's future-work item "integrate our framework with
/// active learning techniques" (Section 6) in the spirit of DTAL's active
/// component [Kasai et al. 2019].
class ActiveTransER {
 public:
  explicit ActiveTransER(ActiveTransEROptions options = {})
      : options_(options) {}

  /// Runs the three phases with the oracle in the loop. The target's own
  /// labels are ignored; only the oracle provides target supervision.
  Result<ActiveTransERResult> Run(const FeatureMatrix& source,
                                  const FeatureMatrix& target,
                                  const ClassifierFactory& make_classifier,
                                  const LabelOracle& oracle,
                                  const TransferRunOptions& run_options) const;

 private:
  ActiveTransEROptions options_;
};

}  // namespace transer

#endif  // TRANSER_CORE_ACTIVE_TRANSER_H_

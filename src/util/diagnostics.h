#ifndef TRANSER_UTIL_DIAGNOSTICS_H_
#define TRANSER_UTIL_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace transer {

/// \brief The ways a run may deviate from the nominal algorithm while
/// still producing a usable answer. Every deviation is recorded as a
/// DegradationEvent so callers can distinguish "clean run" from
/// "degraded but sane" without parsing logs.
enum class DegradationKind {
  kRowsDropped = 0,       ///< ingestion/validation discarded bad rows
  kValuesRepaired,        ///< non-finite/out-of-range values clamped
  kSelThresholdRelaxed,   ///< t_c / t_l lowered to keep enough instances
  kSelFallbackNaive,      ///< SEL abandoned; full source used instead
  kGenThresholdLowered,   ///< t_p lowered to obtain pseudo-label candidates
  kTclSkipped,            ///< TCL untrainable; pseudo labels returned as-is
  kTimeLimitExceeded,     ///< wall-clock budget expired (the paper's 'TE')
  kMemoryLimitExceeded,   ///< memory budget exceeded (the paper's 'ME')
  kRunCancelled,          ///< cancellation token fired mid-run
  kCheckpointTailDropped, ///< corrupt trailing journal line(s) truncated
  kCheckpointCellRetried, ///< transiently failed sweep cell re-run on resume
  kModelWarmStarted,      ///< phases skipped by restoring a model snapshot
  kModelArtifactRejected, ///< saved model unusable (corrupt/incompatible)
  kModelSaveFailed,       ///< snapshot write failed; run continued unsaved
  kServeRequestShed,      ///< serving: request shed (queue full / draining)
  kServeClassifyOnly,     ///< serving: resolve degraded to classify-only
  kServeRequestRejected,  ///< serving: request rejected with structured error
  kServeArtifactRetried,  ///< serving: transient artifact load retried
  kStreamRecordQuarantined,  ///< ingest: poison record isolated, stream went on
  kStreamSnapshotFallback,   ///< ingest: snapshot unusable; full journal replay
  kStreamRefreshSkipped,     ///< ingest: classifier refresh due but untrainable
  kSparseCenteringRefused,   ///< sparse scaler asked to center; scaled only
  kSparseRowsDropped,        ///< sparse validation discarded malformed rows
  kSparseFitUnsupported,     ///< classifier lacks a sparse fit; dense used
  kJournalRetentionStalled,  ///< ingest: disk budget hit, no snapshot covers
                             ///< the backlog; journal grew past the budget
  kAnnExactFallback,         ///< knn: recall_target 1.0 served by an exact
                             ///< backend instead of the approximate graph
};

/// Short identifier, e.g. "sel_threshold_relaxed".
const char* DegradationKindName(DegradationKind kind);

/// \brief One structured record of a graceful-degradation step.
struct DegradationEvent {
  DegradationKind kind = DegradationKind::kRowsDropped;
  std::string phase;   ///< "ingest", "validate", "sel", "gen", "tcl"
  std::string detail;  ///< human-readable explanation
  /// Parameter value before/after the step (thresholds) or a count
  /// (rows dropped, values repaired) in `adjusted_value`.
  double original_value = 0.0;
  double adjusted_value = 0.0;

  std::string ToString() const;
};

/// \brief Ordered collection of the degradation steps of one run,
/// attached to TransERReport / EndToEndResult. An empty event list means
/// the run executed the nominal algorithm on clean inputs.
struct RunDiagnostics {
  std::vector<DegradationEvent> events;

  bool degraded() const { return !events.empty(); }
  size_t CountKind(DegradationKind kind) const;
  bool HasKind(DegradationKind kind) const { return CountKind(kind) > 0; }

  /// Records one event (also logged at Warning level).
  void Add(DegradationEvent event);
  /// Convenience: builds and records an event.
  void Add(DegradationKind kind, std::string phase, std::string detail,
           double original_value = 0.0, double adjusted_value = 0.0);
  /// Appends all events of `other`.
  void Merge(const RunDiagnostics& other);

  /// Multi-line human-readable rendering ("no degradation" when clean).
  std::string Summary() const;
};

}  // namespace transer

#endif  // TRANSER_UTIL_DIAGNOSTICS_H_

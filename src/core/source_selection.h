#ifndef TRANSER_CORE_SOURCE_SELECTION_H_
#define TRANSER_CORE_SOURCE_SELECTION_H_

#include <vector>

#include "core/transer.h"
#include "features/feature_matrix.h"
#include "util/status.h"

namespace transer {

/// \brief Transferability profile of one candidate source domain against
/// a target domain.
struct SourceScore {
  size_t source_index = 0;
  /// Fraction of (sampled) source instances passing SEL's filters — the
  /// share of the source TransER could actually use.
  double transferable_fraction = 0.0;
  /// Mean structural similarity (Eq. 2) over the sampled instances,
  /// independent of the thresholds.
  double mean_structural_similarity = 0.0;

  /// Combined ranking score.
  double Score() const {
    return 0.5 * transferable_fraction + 0.5 * mean_structural_similarity;
  }
};

/// \brief Options for multi-source selection.
struct SourceSelectionOptions {
  TransEROptions transer;      ///< thresholds used for the SEL probe
  size_t sample_size = 500;    ///< source instances sampled per domain
  uint64_t seed = 77;
};

/// Scores one candidate source domain against the target: how much of it
/// is transferable under TransER's SEL criteria, and how similar its
/// local structures are. Implements the paper's future-work item
/// "choose the best source domain when multiple semantically related
/// labelled data sets are available" (Section 6).
Result<SourceScore> ScoreSourceDomain(const FeatureMatrix& source,
                                      const FeatureMatrix& target,
                                      const SourceSelectionOptions& options);

/// Scores every candidate and returns them sorted by descending Score().
/// All candidates must share the target's feature space.
Result<std::vector<SourceScore>> RankSourceDomains(
    const std::vector<const FeatureMatrix*>& sources,
    const FeatureMatrix& target, const SourceSelectionOptions& options = {});

}  // namespace transer

#endif  // TRANSER_CORE_SOURCE_SELECTION_H_

#include "linalg/kernels.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "knn/brute_force.h"
#include "knn/kd_tree.h"
#include "util/random.h"

namespace transer {
namespace {

// The kernel layer's contract is bit-identity against the scalar
// references (kernels.h): every EXPECT here compares exact bit
// patterns, never tolerances.
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

std::vector<double> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  // Mixed-sign, mixed-magnitude values so accumulation order matters.
  for (double& x : v) x = (rng.NextDouble() - 0.5) * (1.0 + rng.NextDouble() * 1e3);
  return v;
}

// Sizes 0..67 cover every remainder of the 4-lane unroll and both tile
// edges; offsets 1..3 exercise misaligned span starts.
constexpr size_t kMaxSize = 67;
constexpr size_t kMaxOffset = 4;

TEST(KernelsTest, DotMatchesReferenceExhaustively) {
  for (size_t n = 0; n <= kMaxSize; ++n) {
    for (size_t offset = 0; offset < kMaxOffset; ++offset) {
      const std::vector<double> a = RandomVec(n + offset, 100 + n);
      const std::vector<double> b = RandomVec(n + offset, 200 + n);
      const std::span<const double> sa(a.data() + offset, n);
      const std::span<const double> sb(b.data() + offset, n);
      EXPECT_TRUE(SameBits(kernels::Dot(sa, sb), kernels::ref::Dot(sa, sb)))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(KernelsTest, SquaredL2MatchesReferenceExhaustively) {
  for (size_t n = 0; n <= kMaxSize; ++n) {
    for (size_t offset = 0; offset < kMaxOffset; ++offset) {
      const std::vector<double> a = RandomVec(n + offset, 300 + n);
      const std::vector<double> b = RandomVec(n + offset, 400 + n);
      const std::span<const double> sa(a.data() + offset, n);
      const std::span<const double> sb(b.data() + offset, n);
      EXPECT_TRUE(SameBits(kernels::SquaredL2(sa, sb),
                           kernels::ref::SquaredL2(sa, sb)))
          << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(KernelsTest, SquaredNormMatchesDotWithSelf) {
  for (size_t n = 0; n <= kMaxSize; ++n) {
    const std::vector<double> v = RandomVec(n, 500 + n);
    EXPECT_TRUE(SameBits(kernels::SquaredNorm(v), kernels::Dot(v, v)));
    EXPECT_TRUE(SameBits(kernels::SquaredNorm(v), kernels::ref::SquaredNorm(v)));
  }
}

TEST(KernelsTest, ElementwiseKernelsMatchReferenceExhaustively) {
  for (size_t n = 0; n <= kMaxSize; ++n) {
    for (size_t offset = 0; offset < kMaxOffset; ++offset) {
      const std::vector<double> x = RandomVec(n + offset, 600 + n);
      const std::vector<double> base = RandomVec(n + offset, 700 + n);
      const std::span<const double> sx(x.data() + offset, n);

      std::vector<double> got = base, want = base;
      kernels::Axpy(-1.75, sx, std::span<double>(got.data() + offset, n));
      kernels::ref::Axpy(-1.75, sx, std::span<double>(want.data() + offset, n));
      EXPECT_EQ(got, want) << "Axpy n=" << n << " offset=" << offset;

      got = base;
      want = base;
      const std::vector<double> y = RandomVec(n + offset, 800 + n);
      const std::span<const double> sy(y.data() + offset, n);
      kernels::Fma(sx, sy, std::span<double>(got.data() + offset, n));
      kernels::ref::Fma(sx, sy, std::span<double>(want.data() + offset, n));
      EXPECT_EQ(got, want) << "Fma n=" << n << " offset=" << offset;

      got = base;
      want = base;
      kernels::ScaleInPlace(std::span<double>(got.data() + offset, n), 0.37);
      kernels::ref::ScaleInPlace(std::span<double>(want.data() + offset, n),
                                 0.37);
      EXPECT_EQ(got, want) << "ScaleInPlace n=" << n << " offset=" << offset;

      got = base;
      want = base;
      kernels::AddInPlace(std::span<double>(got.data() + offset, n), sx);
      kernels::ref::AddInPlace(std::span<double>(want.data() + offset, n), sx);
      EXPECT_EQ(got, want) << "AddInPlace n=" << n << " offset=" << offset;
    }
  }
}

TEST(KernelsTest, NanAndInfPropagate) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (size_t n : {1u, 5u, 19u}) {
    for (size_t poison = 0; poison < n; ++poison) {
      std::vector<double> a = RandomVec(n, 900 + n);
      const std::vector<double> b = RandomVec(n, 950 + n);
      a[poison] = nan;
      EXPECT_TRUE(std::isnan(kernels::Dot(a, b)));
      EXPECT_TRUE(std::isnan(kernels::SquaredL2(a, b)));
      a[poison] = inf;
      EXPECT_TRUE(std::isinf(kernels::Dot(a, b)) ||
                  std::isnan(kernels::Dot(a, b)));
      EXPECT_EQ(kernels::SquaredL2(a, b), inf);
    }
  }
  // The pair-distance clamp maps negative residue to 0 but must not
  // swallow NaN.
  const std::vector<double> v = {nan, 1.0};
  const double norm = kernels::SquaredNorm(v);
  EXPECT_TRUE(std::isnan(kernels::PairSquaredL2(v, norm, v, norm)));
}

TEST(KernelsTest, PairwiseTiledMatchesNaiveBitForBit) {
  struct Shape {
    size_t a_rows, b_rows, dims;
  };
  // Shapes straddle the internal 8x64 tiling in both dimensions.
  for (const Shape shape : {Shape{1, 1, 3}, Shape{7, 9, 5}, Shape{8, 64, 16},
                            Shape{9, 65, 7}, Shape{23, 200, 12},
                            Shape{64, 33, 1}}) {
    const std::vector<double> a =
        RandomVec(shape.a_rows * shape.dims, 1000 + shape.a_rows);
    const std::vector<double> b =
        RandomVec(shape.b_rows * shape.dims, 2000 + shape.b_rows);
    std::vector<double> a_norms(shape.a_rows), b_norms(shape.b_rows);
    kernels::SquaredNorms(a.data(), shape.a_rows, shape.dims, a_norms.data());
    kernels::SquaredNorms(b.data(), shape.b_rows, shape.dims, b_norms.data());
    std::vector<double> tiled(shape.a_rows * shape.b_rows);
    std::vector<double> naive(shape.a_rows * shape.b_rows);
    kernels::PairwiseSquaredL2(a.data(), shape.a_rows, a_norms.data(),
                               b.data(), shape.b_rows, b_norms.data(),
                               shape.dims, tiled.data());
    kernels::ref::PairwiseSquaredL2(a.data(), shape.a_rows, a_norms.data(),
                                    b.data(), shape.b_rows, b_norms.data(),
                                    shape.dims, naive.data());
    EXPECT_EQ(tiled, naive) << shape.a_rows << "x" << shape.b_rows << " d="
                            << shape.dims;
    // Every tile entry must also equal the single-pair kernel.
    for (size_t i = 0; i < shape.a_rows; ++i) {
      for (size_t j = 0; j < shape.b_rows; ++j) {
        const std::span<const double> row_a(a.data() + i * shape.dims,
                                            shape.dims);
        const std::span<const double> row_b(b.data() + j * shape.dims,
                                            shape.dims);
        EXPECT_TRUE(SameBits(tiled[i * shape.b_rows + j],
                             kernels::PairSquaredL2(row_a, a_norms[i], row_b,
                                                    b_norms[j])));
      }
    }
  }
}

TEST(KernelsTest, IdenticalRowsAreExactlyZero) {
  // The decomposed distance of a row to itself must clamp to exactly 0
  // even for far-from-origin rows — the k-NN duplicate-point contract.
  for (size_t dims : {1u, 4u, 13u}) {
    std::vector<double> row = RandomVec(dims, 3000 + dims);
    for (double& x : row) x = x * 1e6 + 1e7;
    const double norm = kernels::SquaredNorm(row);
    EXPECT_TRUE(SameBits(kernels::PairSquaredL2(row, norm, row, norm), 0.0));
  }
}

TEST(KernelsTest, SelfCheckPasses) {
  const Status status = kernels::SelfCheck();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

Matrix RandomMatrix(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) m(i, d) = rng.NextDouble();
  }
  return m;
}

TEST(KernelsTest, BatchKnnBitIdenticalAcrossThreadCounts) {
  const Matrix points = RandomMatrix(700, 6, 77);
  const Matrix queries = RandomMatrix(333, 6, 78);
  const BruteForceKnn brute(points);
  const KdTree tree(points);
  const ExecutionContext& context = ExecutionContext::Unlimited();

  ParallelOptions serial;
  serial.num_threads = 1;
  ParallelOptions eight;
  eight.num_threads = 8;
  const auto brute_1 =
      brute.QueryBatch(queries, 9, context, "test", serial);
  const auto brute_8 = brute.QueryBatch(queries, 9, context, "test", eight);
  const auto tree_1 = tree.QueryBatch(queries, 9, context, "test", serial);
  const auto tree_8 = tree.QueryBatch(queries, 9, context, "test", eight);
  ASSERT_TRUE(brute_1.ok() && brute_8.ok() && tree_1.ok() && tree_8.ok());

  for (size_t q = 0; q < queries.rows(); ++q) {
    ASSERT_EQ(brute_1.value()[q].size(), 9u);
    for (size_t i = 0; i < 9u; ++i) {
      // One shared per-pair kernel means all four paths agree bitwise.
      EXPECT_EQ(brute_1.value()[q][i].index, brute_8.value()[q][i].index);
      EXPECT_TRUE(SameBits(brute_1.value()[q][i].distance,
                           brute_8.value()[q][i].distance));
      EXPECT_EQ(brute_1.value()[q][i].index, tree_1.value()[q][i].index);
      EXPECT_TRUE(SameBits(brute_1.value()[q][i].distance,
                           tree_1.value()[q][i].distance));
      EXPECT_EQ(tree_1.value()[q][i].index, tree_8.value()[q][i].index);
      EXPECT_TRUE(SameBits(tree_1.value()[q][i].distance,
                           tree_8.value()[q][i].distance));
    }
  }
}

}  // namespace
}  // namespace transer

#include "eval/aggregate.h"

#include <cmath>

#include "util/string_util.h"

namespace transer {

std::string MeanStd::ToString(double scale) const {
  return StrFormat("%6.2f ± %5.2f", mean * scale, stddev * scale);
}

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double total = 0.0;
  for (double v : values) total += v;
  out.mean = total / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    const double d = v - out.mean;
    var += d * d;
  }
  out.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

QualityAggregate AggregateQuality(
    const std::vector<LinkageQuality>& results) {
  std::vector<double> p, r, fs, f1;
  p.reserve(results.size());
  r.reserve(results.size());
  fs.reserve(results.size());
  f1.reserve(results.size());
  for (const auto& q : results) {
    p.push_back(q.precision);
    r.push_back(q.recall);
    fs.push_back(q.f_star);
    f1.push_back(q.f1);
  }
  QualityAggregate out;
  out.precision = Aggregate(p);
  out.recall = Aggregate(r);
  out.f_star = Aggregate(fs);
  out.f1 = Aggregate(f1);
  return out;
}

}  // namespace transer

#ifndef TRANSER_ML_SAMPLING_H_
#define TRANSER_ML_SAMPLING_H_

#include <vector>

#include "util/random.h"

namespace transer {

/// \brief Returns the indices of a class-rebalanced subset of instances:
/// all matches are kept and non-matches are randomly under-sampled so the
/// non-match:match ratio is at most `ratio` (the paper's b, default 1:3 —
/// Section 4.3). With too few non-matches, everything is kept. Order of
/// the returned indices follows the original order.
std::vector<size_t> UndersampleNonMatches(const std::vector<int>& labels,
                                          double ratio, Rng* rng);

/// \brief Stratified train/test split: returns (train_indices,
/// test_indices) preserving the class mix. `test_fraction` in (0, 1).
std::pair<std::vector<size_t>, std::vector<size_t>> StratifiedSplit(
    const std::vector<int>& labels, double test_fraction, Rng* rng);

/// \brief Random subset of `fraction` of all indices (used for the
/// label-fraction sensitivity experiment, Figure 6).
std::vector<size_t> RandomSubset(size_t n, double fraction, Rng* rng);

}  // namespace transer

#endif  // TRANSER_ML_SAMPLING_H_

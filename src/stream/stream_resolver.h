#ifndef TRANSER_STREAM_STREAM_RESOLVER_H_
#define TRANSER_STREAM_STREAM_RESOLVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/record.h"
#include "features/comparator.h"
#include "ml/classifier.h"
#include "ml/model_store.h"
#include "stream/dynamic_knn.h"
#include "stream/incremental_blocking.h"
#include "stream/ingest_journal.h"
#include "text/char_ngram_embedder.h"
#include "util/diagnostics.h"
#include "util/status.h"

namespace transer {
namespace stream {

/// Artifact kind of a streaming-resolution snapshot.
inline constexpr char kStreamSnapshotKind[] = "stream_snapshot";

/// \brief One resolved match between two streamed records, by their
/// insert-order indices (left < right).
struct StreamMatch {
  uint64_t left = 0;
  uint64_t right = 0;
  double score = 0.0;  ///< classifier match probability at decision time
};

/// \brief Configuration of the incremental resolution state. Recovery
/// refuses to load a snapshot taken under different options (they would
/// replay a *different* stream), so the whole struct is fingerprinted
/// into every snapshot.
struct StreamResolverOptions {
  Schema schema;
  IncrementalBlockingOptions blocking;
  DynamicKnnOptions knn;
  CharNgramEmbedderOptions embedding;
  /// Candidate pairs at or above this match probability become matches.
  double match_threshold = 0.5;
  /// Refit the classifier on the accumulated pseudo-labelled pairs after
  /// every `refresh_interval` applied records (0 = never refresh). Like
  /// the k-NN rebuild, the trigger is a pure function of the applied
  /// count, so replay refreshes at identical points.
  size_t refresh_interval = 128;
  /// A due refresh is skipped (kStreamRefreshSkipped) below this many
  /// accumulated pairs, or when they are all one class.
  size_t min_refresh_pairs = 8;
  /// Optional TransER pipeline artifact to warm-start the classifier
  /// from (ml/model_store). Empty = start from the threshold family.
  std::string warm_start_path;
};

/// \brief The deterministic incremental ER state machine the ingest
/// journal replays into: per record, embed -> block -> compare -> score
/// -> match, with periodic classifier refreshes from the accumulated
/// pseudo-labelled pairs (the GEN/TCL loop of the paper, run streaming).
///
/// Determinism contract (DESIGN.md §11): the entire state is a pure
/// function of the applied entry sequence. Apply is serial; the only
/// parallelism (KD-tree rebuilds) is the bit-identical deterministic
/// build, and every periodic trigger counts applied records rather than
/// clocks. StateDigest() is the check: equal digests <=> equal state.
///
/// Poison records (wrong arity, empty id) are quarantined — recorded by
/// sequence, excluded from all state, reported as
/// kStreamRecordQuarantined — and replay quarantines the exact same
/// set, so a poison record can neither kill the stream nor fork it.
class StreamResolver {
 public:
  /// Builds an empty resolver. Fails if the schema references unknown
  /// similarity functions or the warm-start artifact is incompatible.
  /// A usable warm start is reported as kModelWarmStarted; a missing or
  /// corrupt warm-start artifact fails (a silently cold-started replica
  /// would diverge from its peers).
  static Result<StreamResolver> Create(const StreamResolverOptions& options,
                                       RunDiagnostics* diagnostics = nullptr);

  /// Applies one journaled entry. `entry.sequence` must be exactly
  /// applied_sequence() + 1 — the journal is dense and ordered — and a
  /// gap fails with FailedPrecondition. Poison records are quarantined
  /// and still advance the sequence.
  Status Apply(const IngestEntry& entry,
               RunDiagnostics* diagnostics = nullptr);

  // --- Observable state -----------------------------------------------

  uint64_t applied_sequence() const { return applied_sequence_; }
  /// Records applied into the state (excludes quarantined).
  const std::vector<Record>& records() const { return records_; }
  const std::vector<StreamMatch>& matches() const { return matches_; }
  /// Sequences of quarantined entries, ascending.
  const std::vector<uint64_t>& quarantined() const { return quarantined_; }
  size_t refresh_count() const { return refresh_count_; }
  size_t comparison_count() const { return comparisons_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const DynamicKnn& knn() const { return knn_; }
  const IncrementalBlockingIndex& blocking() const { return blocking_; }
  const Classifier& classifier() const { return *classifier_; }

  /// FNV-1a digest over the canonical encoding of the full state:
  /// records, blocking index, matches, pseudo-label buffers, classifier
  /// parameters, counters, and probe k-NN answers for the most recent
  /// records. Two runs are bit-identical iff their digests agree; the
  /// crash-replay matrix is built on this.
  uint64_t StateDigest() const;

  // --- Snapshots (journal retention anchor) ---------------------------

  /// Writes the full state as a TERA artifact, atomically.
  Status SaveSnapshot(const std::string& path) const;

  /// Restores a snapshot written by SaveSnapshot under the same options
  /// (fingerprint-checked; a mismatch is FailedPrecondition). The
  /// blocking index and k-NN index are reconstructed by re-inserting the
  /// snapshot's records in order — bit-identical by construction, and
  /// the snapshot stays small.
  static Result<StreamResolver> LoadSnapshot(
      const std::string& path, const StreamResolverOptions& options,
      RunDiagnostics* diagnostics = nullptr);

  // --- Serving hand-off -----------------------------------------------

  /// Packages the current classifier and pseudo-label state as a TransER
  /// pipeline snapshot the serving repository can index (the live-serve
  /// continuity path: ingest refreshes, serving hot-swaps).
  Result<TransERPipelineState> ExportPipelineState() const;

  /// ExportPipelineState + atomic SaveTransERPipelineState to `path`.
  Status PublishTo(const std::string& path) const;

 private:
  StreamResolver(StreamResolverOptions options, PairComparator comparator,
                 std::vector<std::string> feature_names);

  /// Embeds, blocks, compares and scores one accepted record.
  Status ApplyRecord(const Record& record, RunDiagnostics* diagnostics);

  /// Refits the classifier on the accumulated pair buffer when due.
  void MaybeRefresh(RunDiagnostics* diagnostics);

  /// Non-empty when the record cannot enter the state (the quarantine
  /// reason), empty when it is clean.
  std::string PoisonReason(const Record& record) const;

  uint64_t OptionsFingerprint() const;

  StreamResolverOptions options_;
  PairComparator comparator_;
  std::vector<std::string> feature_names_;
  CharNgramEmbedder embedder_;
  IncrementalBlockingIndex blocking_;
  DynamicKnn knn_;

  std::vector<Record> records_;
  std::vector<StreamMatch> matches_;
  std::vector<uint64_t> quarantined_;

  /// Pseudo-labelled pair buffer feeding the periodic refresh: one row
  /// of feature values + label + confidence per compared candidate pair.
  std::vector<double> pair_features_;  ///< row-major, width = features
  std::vector<int> pair_labels_;
  std::vector<double> pair_confidences_;

  std::string classifier_family_;
  std::unique_ptr<Classifier> classifier_;

  uint64_t applied_sequence_ = 0;
  uint64_t applied_records_ = 0;  ///< accepted (non-quarantined) records
  size_t refresh_count_ = 0;
  size_t comparisons_ = 0;
};

}  // namespace stream
}  // namespace transer

#endif  // TRANSER_STREAM_STREAM_RESOLVER_H_

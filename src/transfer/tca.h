#ifndef TRANSER_TRANSFER_TCA_H_
#define TRANSER_TRANSFER_TCA_H_

#include <string>
#include <vector>

#include "transfer/transfer_method.h"

namespace transer {

/// \brief Options for Transfer Component Analysis.
struct TcaOptions {
  size_t num_components = 8;  ///< dimensionality of the shared subspace
  double mu = 1.0;            ///< trade-off regulariser
  int power_iterations = 60;  ///< subspace-iteration steps
};

/// \brief Transfer Component Analysis [Pan et al. 2011]: finds transfer
/// components that minimise the Maximum Mean Discrepancy between source
/// and target in a kernel-induced subspace, by the leading eigenvectors of
/// (KLK + mu I)^{-1} K H K. This implementation uses a linear kernel and
/// exploits the rank-one structure of L (L = v v^T) so the resolvent is a
/// Sherman-Morrison update, but the n x n kernel is still materialised —
/// the quadratic memory that produced the paper's 'ME' cells on mid-sized
/// data (Table 2).
class TcaTransfer : public TransferMethod {
 public:
  explicit TcaTransfer(TcaOptions options = {}) : options_(options) {}

  std::string name() const override { return "tca"; }

  Result<std::vector<int>> Run(
      const FeatureMatrix& source, const FeatureMatrix& target,
      const ClassifierFactory& make_classifier,
      const TransferRunOptions& run_options) const override;

  /// Computes the shared-subspace embedding of [source; target]: the
  /// first source.rows() rows embed the source. Exposed for tests of the
  /// MMD-reduction property.
  Result<Matrix> Embed(const Matrix& x_source, const Matrix& x_target,
                       const TransferRunOptions& run_options) const;

 private:
  TcaOptions options_;
};

}  // namespace transer

#endif  // TRANSER_TRANSFER_TCA_H_

#ifndef TRANSER_TRANSFER_DR_TRANSFER_H_
#define TRANSER_TRANSFER_DR_TRANSFER_H_

#include <string>
#include <vector>

#include "transfer/embedding_lift.h"
#include "transfer/transfer_method.h"

namespace transer {

/// \brief Options for the DR baseline.
struct DrOptions {
  EmbeddingLiftOptions embedding;
  /// Importance weights p(target)/p(source) are clipped to this range.
  double max_weight = 10.0;
};

/// \brief DR [Thirumuruganathan et al. 2018]: distributed (FastText-like)
/// feature representations plus *instance re-weighting* transfer — a
/// logistic domain discriminator estimates p(target|x)/p(source|x) and the
/// ER classifier is trained on source embeddings weighted accordingly.
/// On structured data with out-of-vocabulary values the representations
/// carry little signal, producing the negative transfer of Section 5.2.1.
class DrTransfer : public TransferMethod {
 public:
  explicit DrTransfer(DrOptions options = {}) : options_(options) {}

  std::string name() const override { return "dr"; }

  Result<std::vector<int>> Run(
      const FeatureMatrix& source, const FeatureMatrix& target,
      const ClassifierFactory& make_classifier,
      const TransferRunOptions& run_options) const override;

  /// The importance weights assigned to source instances (for tests).
  Result<std::vector<double>> ComputeWeights(
      const Matrix& e_source, const Matrix& e_target, uint64_t seed) const;

 private:
  DrOptions options_;
};

}  // namespace transer

#endif  // TRANSER_TRANSFER_DR_TRANSFER_H_

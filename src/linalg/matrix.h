#ifndef TRANSER_LINALG_MATRIX_H_
#define TRANSER_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace transer {

/// \brief Dense row-major matrix of doubles.
///
/// This is the numeric workhorse for the feature-based transfer baselines
/// (TCA, CORAL) and the neighbourhood statistics used by TransER and LocIT.
/// It intentionally stays small: sizes in this library are either
/// n_pairs x m_features (tall, thin) or m x m / kernel-sized squares.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists (row major). All rows
  /// must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Builds a matrix that wraps `data` (row major, rows*cols entries).
  static Matrix FromRowMajor(size_t rows, size_t cols,
                             std::vector<double> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Raw pointer to the start of row r.
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a std::vector.
  std::vector<double> RowVector(size_t r) const;

  /// Copies column c into a std::vector.
  std::vector<double> ColVector(size_t c) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Matrix product this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Transpose.
  Matrix Transpose() const;

  /// Element-wise sum; dimensions must match.
  Matrix Add(const Matrix& other) const;

  /// Element-wise difference; dimensions must match.
  Matrix Subtract(const Matrix& other) const;

  /// Scalar multiple.
  Matrix Scale(double factor) const;

  /// this * v for a vector of length cols().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Adds `value` to each diagonal entry in place (ridge regularisation).
  void AddDiagonal(double value);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute difference to `other`; dimensions must match.
  double MaxAbsDiff(const Matrix& other) const;

  /// Returns the submatrix of the given rows (in order).
  Matrix SelectRows(const std::vector<size_t>& row_indices) const;

  /// Vertical concatenation; column counts must match.
  static Matrix VStack(const Matrix& top, const Matrix& bottom);

  /// Debug rendering with fixed precision.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace transer

#endif  // TRANSER_LINALG_MATRIX_H_

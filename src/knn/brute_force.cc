#include "knn/brute_force.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace transer {

namespace {

/// Per-thread scan buffer reused across queries: the O(n) candidate
/// list dominated Query's allocation profile (see micro_primitives).
thread_local std::vector<Neighbour> tls_scan_scratch;

/// Rows scanned between context polls in the budgeted Query.
constexpr size_t kScanStride = 4096;

void ScanRows(const Matrix& points, std::span<const double> query,
              size_t begin, size_t end, ptrdiff_t skip_index,
              std::vector<Neighbour>* all) {
  for (size_t row = begin; row < end; ++row) {
    if (static_cast<ptrdiff_t>(row) == skip_index) continue;
    double dist_sq = 0.0;
    const double* p = points.Row(row);
    for (size_t d = 0; d < query.size(); ++d) {
      const double diff = p[d] - query[d];
      dist_sq += diff * diff;
    }
    all->push_back(Neighbour{row, std::sqrt(dist_sq)});
  }
}

std::vector<Neighbour> TopK(std::vector<Neighbour>* all, size_t k) {
  const size_t keep = std::min(k, all->size());
  std::partial_sort(all->begin(),
                    all->begin() + static_cast<ptrdiff_t>(keep), all->end(),
                    NeighbourBefore);
  return std::vector<Neighbour>(all->begin(),
                                all->begin() + static_cast<ptrdiff_t>(keep));
}

}  // namespace

std::vector<Neighbour> BruteForceKnn::Query(std::span<const double> query,
                                            size_t k,
                                            ptrdiff_t skip_index) const {
  TRANSER_CHECK_EQ(query.size(), points_.cols());
  std::vector<Neighbour>& all = tls_scan_scratch;
  all.clear();
  all.reserve(points_.rows());
  ScanRows(points_, query, 0, points_.rows(), skip_index, &all);
  return TopK(&all, k);
}

Result<BruteForceKnn> BruteForceKnn::Create(const Matrix& points,
                                            const ExecutionContext& context,
                                            const std::string& scope,
                                            RunDiagnostics* diagnostics) {
  TRANSER_RETURN_IF_ERROR(context.Check(scope, diagnostics));
  ScopedReservation reservation;
  TRANSER_RETURN_IF_ERROR(reservation.Acquire(
      context, scope, points.rows() * points.cols() * sizeof(double),
      diagnostics));
  BruteForceKnn knn(points);
  knn.memory_ = std::move(reservation);
  return knn;
}

Result<std::vector<Neighbour>> BruteForceKnn::Query(
    std::span<const double> query, size_t k, ptrdiff_t skip_index,
    const ExecutionContext& context, const std::string& scope) const {
  TRANSER_CHECK_EQ(query.size(), points_.cols());
  std::vector<Neighbour>& all = tls_scan_scratch;
  all.clear();
  all.reserve(points_.rows());
  for (size_t begin = 0; begin < points_.rows(); begin += kScanStride) {
    TRANSER_RETURN_IF_ERROR(context.Check(scope));
    const size_t end = std::min(points_.rows(), begin + kScanStride);
    ScanRows(points_, query, begin, end, skip_index, &all);
  }
  return TopK(&all, k);
}

Result<std::vector<std::vector<Neighbour>>> BruteForceKnn::QueryBatch(
    const Matrix& queries, size_t k, const ExecutionContext& context,
    const std::string& scope, const ParallelOptions& options) const {
  std::vector<std::vector<Neighbour>> results(queries.rows());
  ParallelOptions chunk_options = options;
  chunk_options.min_items_per_chunk =
      std::max<size_t>(chunk_options.min_items_per_chunk, 4);
  TRANSER_RETURN_IF_ERROR(ParallelFor(
      context, scope, queries.rows(),
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) {
          results[i] = Query(
              std::span<const double>(queries.Row(i), queries.cols()), k);
        }
        return Status::OK();
      },
      chunk_options));
  return results;
}

}  // namespace transer

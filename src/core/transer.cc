#include "core/transer.h"

#include <cmath>

#include "knn/kd_tree.h"
#include "linalg/covariance.h"
#include "linalg/vector_ops.h"
#include "ml/sampling.h"
#include "util/logging.h"
#include "util/random.h"

namespace transer {

namespace {

/// Mean of the neighbour rows of `points`.
std::vector<double> NeighbourhoodCentroid(
    const Matrix& points, const std::vector<Neighbour>& neighbours) {
  std::vector<double> centroid(points.cols(), 0.0);
  if (neighbours.empty()) return centroid;
  for (const auto& nb : neighbours) {
    const double* row = points.Row(nb.index);
    for (size_t c = 0; c < centroid.size(); ++c) centroid[c] += row[c];
  }
  const double inv = 1.0 / static_cast<double>(neighbours.size());
  for (double& v : centroid) v *= inv;
  return centroid;
}

/// Sample covariance of the neighbour rows (for the sim_v ablation).
Matrix NeighbourhoodCovariance(const Matrix& points,
                               const std::vector<Neighbour>& neighbours) {
  std::vector<size_t> rows;
  rows.reserve(neighbours.size());
  for (const auto& nb : neighbours) rows.push_back(nb.index);
  return SampleCovarianceOfRows(points, rows);
}

}  // namespace

TransER::TransER(TransEROptions options) : options_(options) {
  TRANSER_CHECK_GT(options_.k, 0u);
  TRANSER_CHECK_GT(options_.b, 0.0);
}

double TransER::StructuralSimilarityFromDistance(double distance,
                                                 size_t num_features) {
  TRANSER_CHECK_GT(num_features, 0u);
  // Normalise by the maximum possible distance sqrt(m) (features in
  // [0, 1]), then apply the e^{-5x} decay chosen in Figure 5.
  const double normalized =
      distance / std::sqrt(static_cast<double>(num_features));
  return std::exp(-5.0 * normalized);
}

Result<std::vector<size_t>> TransER::SelectInstances(
    const FeatureMatrix& source, const FeatureMatrix& target,
    const TransferRunOptions& run_options) const {
  transfer_internal::Deadline deadline(run_options.time_limit_seconds);

  const Matrix x_source = source.ToMatrix();
  const Matrix x_target = target.ToMatrix();
  const size_t m = source.num_features();

  // k is clamped so the self-excluded source query stays satisfiable.
  const size_t k_source =
      std::min(options_.k, source.size() > 1 ? source.size() - 1 : size_t{1});
  const size_t k_target = std::min(options_.k, target.size());
  if (k_target == 0) {
    return Status::InvalidArgument("target domain is empty");
  }

  const KdTree source_tree(x_source);
  const KdTree target_tree(x_target);

  std::vector<size_t> selected;
  selected.reserve(source.size());
  for (size_t s = 0; s < source.size(); ++s) {
    if (deadline.Expired()) {
      return transfer_internal::Deadline::Exceeded("transer");
    }
    const std::span<const double> row(x_source.Row(s), m);
    const auto n_s =
        source_tree.Query(row, k_source, static_cast<ptrdiff_t>(s));
    const auto n_t = target_tree.Query(row, k_target);

    // Equation (1): fraction of source neighbours sharing the label.
    if (options_.use_sim_c) {
      size_t same_label = 0;
      for (const auto& nb : n_s) {
        if (source.label(nb.index) == source.label(s)) ++same_label;
      }
      const double sim_c = n_s.empty()
                               ? 0.0
                               : static_cast<double>(same_label) /
                                     static_cast<double>(n_s.size());
      if (sim_c < options_.t_c) continue;
    }

    // Equation (2): decayed distance between neighbourhood centroids.
    if (options_.use_sim_l) {
      const std::vector<double> centroid_s =
          NeighbourhoodCentroid(x_source, n_s);
      const std::vector<double> centroid_t =
          NeighbourhoodCentroid(x_target, n_t);
      const double sim_l = StructuralSimilarityFromDistance(
          L2Distance(centroid_s, centroid_t), m);
      if (sim_l < options_.t_l) continue;
    }

    // Optional covariance filter (the "+ sim_v" ablation).
    if (options_.use_sim_v) {
      const Matrix cov_s = NeighbourhoodCovariance(x_source, n_s);
      const Matrix cov_t = NeighbourhoodCovariance(x_target, n_t);
      const double sim_v =
          std::exp(-5.0 * cov_s.Subtract(cov_t).FrobeniusNorm() /
                   static_cast<double>(m));
      if (sim_v < options_.t_v) continue;
    }

    selected.push_back(s);
  }
  return selected;
}

Result<std::vector<int>> TransER::RunWithReport(
    const FeatureMatrix& source, const FeatureMatrix& target,
    const ClassifierFactory& make_classifier,
    const TransferRunOptions& run_options, TransERReport* report) const {
  if (source.num_features() != target.num_features()) {
    return Status::InvalidArgument(
        "source and target feature spaces differ");
  }
  if (source.empty()) {
    return Status::InvalidArgument("source domain is empty");
  }
  TransERReport local_report;
  local_report.source_instances = source.size();

  // --- Phase (i): instance selector (SEL) ---
  FeatureMatrix transferred;  // X^U with labels Y^U
  if (options_.use_sel) {
    auto selected = SelectInstances(source, target, run_options);
    if (!selected.ok()) return selected.status();
    transferred = source.Select(selected.value());
  } else {
    transferred = source;
  }
  // Degenerate selections cannot train a two-class model; fall back to
  // the full source (equivalent to disabling SEL for this run).
  if (transferred.CountMatches() == 0 || transferred.CountNonMatches() == 0) {
    TRANSER_LOG(Warning) << "TransER SEL kept " << transferred.size()
                         << " instances with a single class; falling back "
                            "to the full source";
    transferred = source;
  }
  local_report.selected_instances = transferred.size();

  // --- Phase (ii): pseudo-label generator (GEN) ---
  auto classifier_u = make_classifier();
  classifier_u->Fit(transferred.ToMatrix(),
                    transfer_internal::RequireLabels(transferred));

  const Matrix x_target = target.ToMatrix();
  const std::vector<double> proba = classifier_u->PredictProbaAll(x_target);
  std::vector<int> pseudo_labels(proba.size());
  std::vector<double> confidence(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    pseudo_labels[i] = proba[i] >= 0.5 ? kMatch : kNonMatch;
    confidence[i] = proba[i] >= 0.5 ? proba[i] : 1.0 - proba[i];
  }

  if (!options_.use_gen_tcl) {
    // Ablation "without GEN & TCL": classify the target directly with the
    // classifier trained on the transferred instances.
    if (report != nullptr) *report = local_report;
    return pseudo_labels;
  }

  // --- Phase (iii): target domain classifier (TCL) ---
  std::vector<size_t> candidates;
  for (size_t i = 0; i < confidence.size(); ++i) {
    if (confidence[i] >= options_.t_p) candidates.push_back(i);
  }
  local_report.candidate_instances = candidates.size();

  FeatureMatrix x_v = target.Select(candidates).WithLabels([&] {
    std::vector<int> labels;
    labels.reserve(candidates.size());
    for (size_t index : candidates) labels.push_back(pseudo_labels[index]);
    return labels;
  }());
  for (int label : x_v.labels()) {
    if (label == kMatch) ++local_report.pseudo_matches;
  }

  // Balance classes to 1 : b by under-sampling non-matches.
  Rng rng(run_options.seed + 71);
  const std::vector<size_t> balanced_rows =
      UndersampleNonMatches(x_v.labels(), options_.b, &rng);
  const FeatureMatrix x_vb = x_v.Select(balanced_rows);
  local_report.balanced_instances = x_vb.size();

  // Degenerate candidate sets cannot train C^V; the pseudo labels are the
  // best available answer.
  if (x_vb.CountMatches() == 0 || x_vb.CountNonMatches() == 0 ||
      x_vb.size() < 4) {
    TRANSER_LOG(Warning)
        << "TransER TCL skipped: confident pseudo-label set degenerate ("
        << x_vb.size() << " instances)";
    if (report != nullptr) *report = local_report;
    return pseudo_labels;
  }

  auto classifier_v = make_classifier();
  classifier_v->Fit(x_vb.ToMatrix(), x_vb.labels());
  local_report.tcl_trained = true;
  if (report != nullptr) *report = local_report;
  return classifier_v->PredictAll(x_target);
}

Result<std::vector<int>> TransER::Run(
    const FeatureMatrix& source, const FeatureMatrix& target,
    const ClassifierFactory& make_classifier,
    const TransferRunOptions& run_options) const {
  return RunWithReport(source, target, make_classifier, run_options,
                       nullptr);
}

}  // namespace transer

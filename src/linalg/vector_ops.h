#ifndef TRANSER_LINALG_VECTOR_OPS_H_
#define TRANSER_LINALG_VECTOR_OPS_H_

#include <vector>

namespace transer {

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double L2Norm(const std::vector<double>& v);

/// Euclidean distance between equal-length vectors.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Squared Euclidean distance (avoids the sqrt for k-NN comparisons).
double SquaredL2Distance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// a + b, element-wise.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b, element-wise.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// v * s, element-wise.
std::vector<double> Scale(const std::vector<double>& v, double s);

/// Arithmetic mean of `vectors` (all equal length; at least one vector).
std::vector<double> Mean(const std::vector<std::vector<double>>& vectors);

/// In-place a += s * b.
void Axpy(double s, const std::vector<double>& b, std::vector<double>* a);

/// Normalises v to unit L2 norm; leaves zero vectors untouched.
void NormalizeInPlace(std::vector<double>* v);

}  // namespace transer

#endif  // TRANSER_LINALG_VECTOR_OPS_H_

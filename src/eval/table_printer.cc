#include "eval/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace transer {

namespace {

// Column width in display characters; the UTF-8 "±" is 2 bytes, 1 column.
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;  // count non-continuation bytes
  }
  return width;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = DisplayWidth(header_[c]);
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - DisplayWidth(row[c]) + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace transer

#include "transfer/dtal.h"

#include "ml/scaler.h"

namespace transer {

Result<std::vector<int>> DtalTransfer::Run(
    const FeatureMatrix& source, const FeatureMatrix& target,
    const ClassifierFactory& make_classifier,
    const TransferRunOptions& run_options) const {
  (void)make_classifier;  // DTAL* is a deep model; the suite is unused.
  if (source.num_features() != target.num_features()) {
    return Status::InvalidArgument(
        "source and target feature spaces differ");
  }
  std::optional<ExecutionContext> local_context;
  const ExecutionContext& context =
      ResolveExecutionContext(run_options, &local_context);
  TRANSER_RETURN_IF_ERROR(context.Check("dtal", run_options.diagnostics));
  ScopedReservation working_set;
  TRANSER_RETURN_IF_ERROR(working_set.Acquire(
      context, "dtal",
      transfer_internal::DomainWorkingSetBytes(source, target),
      run_options.diagnostics));

  const Matrix e_source_raw = LiftToEmbedding(source.ToMatrix(),
                                              options_.embedding);
  const Matrix e_target_raw = LiftToEmbedding(target.ToMatrix(),
                                              options_.embedding);

  StandardScaler scaler;
  scaler.Fit(Matrix::VStack(e_source_raw, e_target_raw));
  const Matrix e_source = scaler.Transform(e_source_raw);
  const Matrix e_target = scaler.Transform(e_target_raw);

  DannOptions network = options_.network;
  network.seed = run_options.seed + 53;
  DomainAdversarialMlp dann(network);
  dann.Fit(e_source, transfer_internal::RequireLabels(source), e_target,
           [&context]() { return context.Interrupted(); });
  // The paper's 72 h cap kills the run outright ('TE'); we do the same —
  // an interrupted Fit stopped early with a partial model.
  TRANSER_RETURN_IF_ERROR(context.Check("dtal", run_options.diagnostics));

  const std::vector<double> probabilities = dann.PredictProbaAll(e_target);
  std::vector<int> predicted(probabilities.size());
  for (size_t i = 0; i < probabilities.size(); ++i) {
    predicted[i] = probabilities[i] >= 0.5 ? 1 : 0;
  }
  return predicted;
}

}  // namespace transer

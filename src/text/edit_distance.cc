#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace transer {

namespace {

/// Shared DP rows reused across calls (comparator sweeps run millions of
/// pairwise distances; two allocations per thread, not per call).
thread_local std::vector<size_t> tls_prev_row;
thread_local std::vector<size_t> tls_cur_row;

/// Drops the common prefix and suffix of (a, b) — neither changes the
/// edit distance — so the DP runs only over the differing core.
void StripCommonAffixes(std::string_view* a, std::string_view* b) {
  size_t prefix = 0;
  const size_t max_prefix = std::min(a->size(), b->size());
  while (prefix < max_prefix && (*a)[prefix] == (*b)[prefix]) ++prefix;
  a->remove_prefix(prefix);
  b->remove_prefix(prefix);
  size_t suffix = 0;
  const size_t max_suffix = std::min(a->size(), b->size());
  while (suffix < max_suffix &&
         (*a)[a->size() - 1 - suffix] == (*b)[b->size() - 1 - suffix]) {
    ++suffix;
  }
  a->remove_suffix(suffix);
  b->remove_suffix(suffix);
}

/// One banded two-row DP pass over the cells with j - i in
/// [len_diff - band, band] (a is the shorter string; i indexes a,
/// j indexes b). Any alignment of cost <= band stays inside that band
/// (cost-so-far >= |j - i| and cost-to-go >= |len_diff - (j - i)|), so a
/// result <= band is the exact distance; a larger result only means "no
/// path of cost <= band" and the caller widens the band.
///
/// The rows are full-width but only window cells are computed; the cells
/// just outside the window are poisoned with `inf` after each row so the
/// next row (whose window shifts by one) never reads a stale value.
size_t BandedPass(std::string_view a, std::string_view b, size_t band) {
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t len_diff = m - n;
  const size_t inf = n + m + 1;

  std::vector<size_t>& prev = tls_prev_row;
  std::vector<size_t>& cur = tls_cur_row;
  prev.resize(m + 1);
  cur.resize(m + 1);

  const size_t row0_hi = std::min(band, m);
  for (size_t j = 0; j <= row0_hi; ++j) prev[j] = j;
  if (row0_hi + 1 <= m) prev[row0_hi + 1] = inf;

  for (size_t i = 1; i <= n; ++i) {
    const size_t lo =
        i + len_diff > band ? i + len_diff - band : size_t{0};
    const size_t hi = std::min(i + band, m);
    if (lo > 0) cur[lo - 1] = inf;
    for (size_t j = lo; j <= hi; ++j) {
      if (j == 0) {
        cur[0] = i;
        continue;
      }
      const size_t del = prev[j] + 1;
      const size_t ins = cur[j - 1] + 1;
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({del, ins, sub});
    }
    if (hi + 1 <= m) cur[hi + 1] = inf;
    std::swap(prev, cur);
  }
  return prev[m];
}

/// Band-doubling driver: start at the length-difference lower bound and
/// widen until the pass proves its answer exact (result <= band) or the
/// band covers the whole table.
size_t BandedDistance(std::string_view a, std::string_view b,
                      size_t band_cap) {
  const size_t n = a.size();
  const size_t m = b.size();
  size_t band = std::max(m - n, size_t{1});
  band = std::min(band, band_cap);
  for (;;) {
    const size_t d = BandedPass(a, b, band);
    if (d <= band || band >= band_cap) return d;
    band = std::min(band * 2, band_cap);
  }
}

}  // namespace

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  StripCommonAffixes(&a, &b);
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return b.size();
  // A band of |b| covers every cell, so the final pass is always exact.
  return BandedDistance(a, b, b.size());
}

size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t max_distance) {
  StripCommonAffixes(&a, &b);
  if (a.size() > b.size()) std::swap(a, b);
  const size_t len_diff = b.size() - a.size();
  // The length difference is a lower bound on the distance: callers that
  // only threshold (blocking, similarity cut-offs) exit here in O(1).
  if (len_diff > max_distance) return max_distance + 1;
  if (a.empty()) return b.size();
  const size_t cap = std::min(std::max(max_distance, size_t{1}), b.size());
  const size_t d = BandedDistance(a, b, cap);
  return d <= max_distance ? d : max_distance + 1;
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;

  // Three-row dynamic program (optimal string alignment).
  std::vector<size_t> two_back(m + 1), prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      size_t best = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        best = std::min(best, two_back[j - 2] + 1);
      }
      cur[j] = best;
    }
    std::swap(two_back, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const size_t dist = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

size_t LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1, 0), cur(a.size() + 1, 0);
  size_t best = 0;
  for (size_t j = 1; j <= b.size(); ++j) {
    for (size_t i = 1; i <= a.size(); ++i) {
      if (a[i - 1] == b[j - 1]) {
        cur[i] = prev[i - 1] + 1;
        best = std::max(best, cur[i]);
      } else {
        cur[i] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

double LongestCommonSubstringSimilarity(std::string_view a,
                                        std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t lcs = LongestCommonSubstring(a, b);
  return 2.0 * static_cast<double>(lcs) /
         static_cast<double>(a.size() + b.size());
}

}  // namespace transer

#ifndef TRANSER_BENCH_KERNEL_PROBE_H_
#define TRANSER_BENCH_KERNEL_PROBE_H_

#include <algorithm>
#include <cstddef>
#include <ctime>
#include <thread>
#include <vector>

#include "knn/brute_force.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "util/execution_context.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace transer {
namespace bench {

/// Keeps `value` observable so the measured expression is not folded
/// away. Same contract as google-benchmark's helper, local so the bench
/// binaries carry no external dependency.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Forces pending writes to be considered visible before the timer
/// stops.
inline void ClobberMemory() { asm volatile("" ::: "memory"); }

/// \brief Times `fn` and returns nanoseconds per operation, where one
/// call to `fn` performs `ops_per_call` operations. Repetitions are
/// calibrated until a sample runs at least `min_seconds`, then the best
/// of `samples` samples is taken — minimum, not mean, because
/// scheduling noise only ever adds time.
template <typename F>
inline double MeasureNsPerOp(F&& fn, double ops_per_call,
                             double min_seconds, int samples = 3) {
  fn();  // warm caches and thread pools outside the timed region
  size_t reps = 1;
  for (;;) {
    Stopwatch watch;
    for (size_t i = 0; i < reps; ++i) fn();
    ClobberMemory();
    const double seconds = watch.ElapsedSeconds();
    if (seconds >= min_seconds) {
      double best = seconds;
      for (int sample = 0; sample + 1 < samples; ++sample) {
        Stopwatch again;
        for (size_t i = 0; i < reps; ++i) fn();
        ClobberMemory();
        best = std::min(best, again.ElapsedSeconds());
      }
      return best * 1e9 / (static_cast<double>(reps) * ops_per_call);
    }
    // Aim 25% past the floor; growth is clamped to 16x so one noisy
    // fast sample cannot balloon the next round.
    const double target = min_seconds * 1.25;
    const size_t next =
        seconds > 0.0
            ? static_cast<size_t>(static_cast<double>(reps) * target /
                                  seconds) +
                  1
            : reps * 16;
    reps = std::clamp(next, reps + 1, reps * 16);
  }
}

/// Process CPU seconds (all threads summed). The worker pool parks on
/// condition variables between regions, so idle workers accrue nothing
/// and the reading is the cost of the dispatched work alone.
inline double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// One measurement in both clocks: wall nanoseconds per op and process
/// CPU nanoseconds per op (the latter sums over every worker thread).
struct WallCpuNs {
  double wall = 0.0;
  double cpu = 0.0;
};

/// \brief MeasureNsPerOp in both clocks. Each sample records wall and
/// CPU time over the same rep loop; the minima are taken independently
/// (noise only ever adds to either clock).
template <typename F>
inline WallCpuNs MeasureWallCpuNsPerOp(F&& fn, double ops_per_call,
                                       double min_seconds, int samples = 3) {
  fn();  // warm caches and thread pools outside the timed region
  size_t reps = 1;
  for (;;) {
    const double cpu_start = ProcessCpuSeconds();
    Stopwatch watch;
    for (size_t i = 0; i < reps; ++i) fn();
    ClobberMemory();
    const double seconds = watch.ElapsedSeconds();
    const double cpu_seconds = ProcessCpuSeconds() - cpu_start;
    if (seconds >= min_seconds) {
      double best_wall = seconds;
      double best_cpu = cpu_seconds;
      for (int sample = 0; sample + 1 < samples; ++sample) {
        const double again_cpu_start = ProcessCpuSeconds();
        Stopwatch again;
        for (size_t i = 0; i < reps; ++i) fn();
        ClobberMemory();
        best_wall = std::min(best_wall, again.ElapsedSeconds());
        best_cpu =
            std::min(best_cpu, ProcessCpuSeconds() - again_cpu_start);
      }
      const double per_op = static_cast<double>(reps) * ops_per_call;
      return WallCpuNs{best_wall * 1e9 / per_op, best_cpu * 1e9 / per_op};
    }
    const double target = min_seconds * 1.25;
    const size_t next =
        seconds > 0.0
            ? static_cast<size_t>(static_cast<double>(reps) * target /
                                  seconds) +
                  1
            : reps * 16;
    reps = std::clamp(next, reps + 1, reps * 16);
  }
}

/// \brief The N-lane speedup a workload earns over its 1-thread run.
///
/// On a machine at least `lanes` wide this is the plain wall-clock
/// ratio. On a narrower machine (notably 1-core CI boxes) wall clock
/// cannot exceed 1x no matter how well the parallel path is written, so
/// the probe measures *scaling capacity* instead: the lanes-fold ideal,
/// discounted by how much extra CPU the parallel run burned per
/// operation. A dispatch layer that adds no synchronisation or
/// contention overhead keeps cpu_nt == cpu_1t and projects to `lanes`;
/// lock convoys, false sharing and oversized per-chunk overheads all
/// inflate cpu_nt and divide the projection. The result is capped at
/// `lanes` — work conservation can prove overhead absent, never invent
/// super-linear scaling.
inline double ThreadScalingSpeedup(const WallCpuNs& one_thread,
                                   const WallCpuNs& n_lanes, int lanes) {
  const unsigned width = std::thread::hardware_concurrency();
  if (width >= static_cast<unsigned>(lanes)) {
    return n_lanes.wall > 0.0 ? one_thread.wall / n_lanes.wall : 1.0;
  }
  if (n_lanes.cpu <= 0.0) return 1.0;
  return std::min(static_cast<double>(lanes),
                  static_cast<double>(lanes) * one_thread.cpu / n_lanes.cpu);
}

/// Lanes for the multi-thread leg of the probe. An explicit
/// --threads > 1 is honoured; when the resolved value is 1 (the
/// hardware default on a single-core box) the probe oversubscribes four
/// worker lanes instead of silently repeating the 1-thread measurement.
/// The parallel dispatch path is then exercised and measured
/// everywhere; ThreadScalingSpeedup turns the readings into a
/// meaningful ratio on narrow and wide machines alike.
inline int ResolveProbeLanes(int threads) {
  return threads > 1 ? threads : 4;
}

/// \brief Thread-aware kernel measurements shared by micro_primitives
/// and the Table 3 sidecar: the dot kernel and the tiled batch k-NN at
/// one thread and at ResolveProbeLanes(threads) lanes.
struct KernelProbeResult {
  double dot_ns_per_op = 0.0;
  double knn_batch_ns_per_query_1t = 0.0;
  double knn_batch_ns_per_query_nt = 0.0;
  /// Process-CPU ns/query of the two legs (sums over worker threads).
  double knn_batch_cpu_ns_per_query_1t = 0.0;
  double knn_batch_cpu_ns_per_query_nt = 0.0;
  /// ThreadScalingSpeedup of the two legs: wall-clock ratio on machines
  /// at least probe_lanes wide, the CPU-time scaling projection on
  /// narrower ones (see the ThreadScalingSpeedup contract).
  double knn_batch_speedup_vs_1_thread = 1.0;
  int probe_lanes = 1;  ///< lanes the _nt leg actually ran with
};

/// Runs the probe on synthetic data (fixed seed; the workload is the
/// measurement, not the values). `threads` is the resolved --threads
/// value; the multi-thread leg runs with ResolveProbeLanes(threads)
/// worker lanes.
inline KernelProbeResult ProbeKernelPerf(int threads, double min_seconds) {
  KernelProbeResult result;
  result.probe_lanes = ResolveProbeLanes(threads);

  Rng rng(12021);
  std::vector<double> a(64), b(64);
  for (double& x : a) x = rng.NextDouble() - 0.5;
  for (double& x : b) x = rng.NextDouble() - 0.5;
  result.dot_ns_per_op = MeasureNsPerOp(
      [&] { DoNotOptimize(kernels::Dot(a, b)); }, 1.0, min_seconds);

  const size_t points_n = 2000;
  const size_t queries_n = 256;
  const size_t dims = 12;
  const size_t k = 10;
  Matrix points(points_n, dims);
  Matrix queries(queries_n, dims);
  for (size_t i = 0; i < points_n; ++i) {
    for (size_t d = 0; d < dims; ++d) points(i, d) = rng.NextDouble();
  }
  for (size_t i = 0; i < queries_n; ++i) {
    for (size_t d = 0; d < dims; ++d) queries(i, d) = rng.NextDouble();
  }
  const BruteForceKnn index(points);
  const ExecutionContext& context = ExecutionContext::Unlimited();
  ParallelOptions serial;
  serial.num_threads = 1;
  const WallCpuNs one = MeasureWallCpuNsPerOp(
      [&] {
        DoNotOptimize(
            index.QueryBatch(queries, k, context, "probe", serial));
      },
      static_cast<double>(queries_n), min_seconds);
  ParallelOptions wide;
  wide.num_threads = result.probe_lanes;
  const WallCpuNs many = MeasureWallCpuNsPerOp(
      [&] {
        DoNotOptimize(
            index.QueryBatch(queries, k, context, "probe", wide));
      },
      static_cast<double>(queries_n), min_seconds);
  result.knn_batch_ns_per_query_1t = one.wall;
  result.knn_batch_ns_per_query_nt = many.wall;
  result.knn_batch_cpu_ns_per_query_1t = one.cpu;
  result.knn_batch_cpu_ns_per_query_nt = many.cpu;
  result.knn_batch_speedup_vs_1_thread =
      ThreadScalingSpeedup(one, many, result.probe_lanes);
  return result;
}

}  // namespace bench
}  // namespace transer

#endif  // TRANSER_BENCH_KERNEL_PROBE_H_

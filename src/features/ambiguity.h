#ifndef TRANSER_FEATURES_AMBIGUITY_H_
#define TRANSER_FEATURES_AMBIGUITY_H_

#include <string>
#include <vector>

#include "features/feature_matrix.h"

namespace transer {

/// \brief Statistics over the *distinct* (rounded) feature vectors of one
/// domain — the quantities of Table 1 of the paper. A distinct vector is
/// "ambiguous" when it carries both match and non-match labels.
struct AmbiguityStats {
  size_t total_instances = 0;
  size_t distinct_vectors = 0;
  double match_fraction = 0.0;      ///< instances whose vector is match-only
  double nonmatch_fraction = 0.0;   ///< instances whose vector is non-match-only
  double ambiguous_fraction = 0.0;  ///< instances whose vector has both labels
};

/// \brief Cross-domain statistics over the feature vectors common to both
/// domains (Common Feature Vectors columns of Table 1).
struct CommonVectorStats {
  size_t common_distinct_vectors = 0;
  /// Fractions over the common vectors:
  double same_class_fraction = 0.0;  ///< unambiguous in both, same label
  double diff_class_fraction = 0.0;  ///< unambiguous in both, labels differ
  double ambiguous_fraction = 0.0;   ///< ambiguous in at least one domain
};

/// \brief Groups feature vectors after rounding to `decimals` decimal
/// places (the paper rounds to 2) and derives the Table-1 statistics.
class AmbiguityAnalyzer {
 public:
  explicit AmbiguityAnalyzer(int decimals = 2);

  /// Per-domain statistics.
  AmbiguityStats Analyze(const FeatureMatrix& x) const;

  /// Cross-domain statistics over the common rounded vectors.
  CommonVectorStats AnalyzeCommon(const FeatureMatrix& a,
                                  const FeatureMatrix& b) const;

  /// Rounded-key rendering of one feature vector (exposed for tests).
  std::string Key(std::span<const double> row) const;

 private:
  int decimals_;
};

}  // namespace transer

#endif  // TRANSER_FEATURES_AMBIGUITY_H_

#ifndef TRANSER_TRANSFER_EMBEDDING_LIFT_H_
#define TRANSER_TRANSFER_EMBEDDING_LIFT_H_

#include <cstdint>

#include "linalg/matrix.h"

namespace transer {

/// \brief Options for the distributed-representation lift.
struct EmbeddingLiftOptions {
  size_t dimension = 48;  ///< width of the lifted representation
  /// Per-coordinate Gaussian noise: models the imprecision of pre-trained
  /// word embeddings on short, typo-ridden, out-of-vocabulary structured
  /// values (person names, addresses) that Section 5.2.1 identifies as the
  /// reason DR/DTAL* underperform on structured data.
  double noise_stddev = 0.35;
  uint64_t seed = 0xfeedULL;
};

/// \brief Maps similarity feature vectors into a fixed random nonlinear
/// high-dimensional representation — the stand-in for the FastText /
/// deep-encoder pair representations consumed by the DR and DTAL*
/// baselines when the benchmark operates on feature matrices rather than
/// raw records. (Record-level pipelines use CharNgramEmbedder instead.)
///
/// The projection (random ReLU features) is deterministic in the seed and
/// identical for source and target, preserving homogeneity; the additive
/// noise deterministically depends on (seed, row content), so the same
/// instance lifts identically across calls.
Matrix LiftToEmbedding(const Matrix& x, const EmbeddingLiftOptions& options);

}  // namespace transer

#endif  // TRANSER_TRANSFER_EMBEDDING_LIFT_H_

#ifndef TRANSER_TRANSFER_DTAL_H_
#define TRANSER_TRANSFER_DTAL_H_

#include <string>
#include <vector>

#include "ml/mlp.h"
#include "transfer/embedding_lift.h"
#include "transfer/transfer_method.h"

namespace transer {

/// \brief Options for DTAL*.
struct DtalOptions {
  EmbeddingLiftOptions embedding;
  DannOptions network;
};

/// \brief DTAL* (Section 5.1.3): the deep-transfer part of Kasai et al.'s
/// low-resource ER model, without its active-learning loop. Record pairs
/// are embedded into distributed representations; a shared extractor with
/// a gradient-reversal domain head adapts source to target; the label head
/// classifies target pairs. Training is by far the slowest of the
/// baselines (the paper's 'TE' cells and Table 3 runtimes), so the epoch
/// loop honours the cooperative time limit.
class DtalTransfer : public TransferMethod {
 public:
  explicit DtalTransfer(DtalOptions options = {}) : options_(options) {}

  std::string name() const override { return "dtal"; }

  Result<std::vector<int>> Run(
      const FeatureMatrix& source, const FeatureMatrix& target,
      const ClassifierFactory& make_classifier,
      const TransferRunOptions& run_options) const override;

 private:
  DtalOptions options_;
};

}  // namespace transer

#endif  // TRANSER_TRANSFER_DTAL_H_

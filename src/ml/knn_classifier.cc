#include "ml/knn_classifier.h"

#include "util/logging.h"

namespace transer {

void KnnClassifier::Fit(const Matrix& x, const std::vector<int>& y,
                        const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  TRANSER_CHECK(weights.empty() || weights.size() == y.size());
  TRANSER_CHECK_GT(options_.k, 0u);
  if (FitInterrupted()) return;  // caller surfaces the status via Check
  tree_ = std::make_unique<KdTree>(x);
  labels_ = y;
  weights_ = weights;
}

double KnnClassifier::PredictProba(std::span<const double> features) const {
  if (tree_ == nullptr || tree_->size() == 0) return 0.5;
  const auto neighbours = tree_->Query(features, options_.k);
  double match_w = 0.0;
  double total_w = 0.0;
  for (const auto& nb : neighbours) {
    double w = weights_.empty() ? 1.0 : weights_[nb.index];
    if (options_.distance_weighted) {
      w /= nb.distance + 1e-6;  // epsilon keeps exact hits finite
    }
    total_w += w;
    if (labels_[nb.index] == 1) match_w += w;
  }
  return total_w > 0.0 ? match_w / total_w : 0.5;
}

}  // namespace transer

#include "util/journal_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/artifact_io.h"
#include "util/string_util.h"

namespace transer {
namespace journal {

namespace {

constexpr uint32_t kFrameFormatVersion = 1;
constexpr size_t kHeaderBytes = 12;  // magic(4) + version(4) + crc(4)

uint32_t ReadLe32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

void PutLe32(uint32_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

std::vector<uint8_t> EncodeHeader(const char magic[4]) {
  std::vector<uint8_t> header(magic, magic + 4);
  PutLe32(kFrameFormatVersion, &header);
  PutLe32(artifact::Crc32(header.data(), header.size()), &header);
  return header;
}

/// Writes `bytes` to `path` via temp + fsync + rename + dir fsync. The
/// same publish discipline as artifact::WriteArtifact, reused for the
/// journal header (creation) and full rewrites (compaction).
Status WriteFileAtomically(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  const std::string temp_path = path + ".tmp";
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + temp_path + " for writing");
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(temp_path.c_str());
      return Status::IoError("failed writing " + temp_path);
    }
    written += static_cast<size_t>(n);
  }
  if (artifact::FsyncFd(fd) != 0) {
    ::close(fd);
    ::unlink(temp_path.c_str());
    return Status::IoError("failed fsyncing " + temp_path);
  }
  if (::close(fd) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IoError("failed closing " + temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IoError("failed renaming " + temp_path + " over " + path);
  }
  return artifact::SyncParentDir(path);
}

std::vector<uint8_t> EncodeFrame(std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 8);
  PutLe32(static_cast<uint32_t>(payload.size()), &frame);
  frame.insert(frame.end(), payload.begin(), payload.end());
  PutLe32(artifact::Crc32(payload.data(), payload.size()), &frame);
  return frame;
}

}  // namespace

Result<LineRecovery> RecoverJournalLines(
    const std::string& path,
    const std::function<Status(const std::string&)>& validate) {
  LineRecovery recovery;
  std::ifstream in(path);
  if (!in.is_open()) return recovery;  // fresh journal

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) lines.push_back(line);
  }
  recovery.total_lines = lines.size();

  for (size_t i = 0; i < lines.size(); ++i) {
    const Status parsed = validate(lines[i]);
    if (parsed.ok()) {
      recovery.lines.push_back(std::move(lines[i]));
      continue;
    }
    // Only a torn *tail* is consistent with an append-only journal;
    // damage earlier in the file means it is not ours (or was edited),
    // and silently dropping completed entries would corrupt whatever
    // the journal protects.
    if (i + 1 != lines.size()) {
      return Status::FailedPrecondition(StrFormat(
          "journal %s: line %zu of %zu is corrupt (not just a torn "
          "tail): %s",
          path.c_str(), i + 1, lines.size(), parsed.message().c_str()));
    }
    recovery.tail_dropped = true;
  }
  return recovery;
}

FrameJournal::~FrameJournal() { Close(); }

FrameJournal::FrameJournal(FrameJournal&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      fd_(other.fd_),
      write_offset_(other.write_offset_),
      frame_count_(other.frame_count_) {
  other.fd_ = -1;
}

FrameJournal& FrameJournal::operator=(FrameJournal&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    options_ = other.options_;
    fd_ = other.fd_;
    write_offset_ = other.write_offset_;
    frame_count_ = other.frame_count_;
    other.fd_ = -1;
  }
  return *this;
}

void FrameJournal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<FrameJournal> FrameJournal::Open(const std::string& path,
                                        const char magic[4],
                                        FrameRecovery* recovery,
                                        const FrameJournalOptions& options) {
  if (path.empty()) {
    return Status::InvalidArgument("frame journal path is empty");
  }
  FrameRecovery local;
  if (recovery == nullptr) recovery = &local;
  *recovery = FrameRecovery{};

  // Create a fresh journal atomically so a crash during creation never
  // leaves a torn header behind.
  if (::access(path.c_str(), F_OK) != 0) {
    TRANSER_RETURN_IF_ERROR(WriteFileAtomically(path, EncodeHeader(magic)));
  }

  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("cannot open journal " + path);
  }
  FrameJournal out;
  out.path_ = path;
  out.options_ = options;
  out.fd_ = fd;

  // Read the whole file (journals the recovery path handles are the
  // compacted tail, not unbounded history).
  std::vector<uint8_t> file;
  uint8_t buffer[1 << 16];
  ssize_t n = 0;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    file.insert(file.end(), buffer, buffer + n);
  }
  if (n < 0) {
    return Status::IoError("failed reading journal " + path);
  }

  if (file.size() < kHeaderBytes) {
    return Status::InvalidArgument(
        path + " is too short to be a frame journal");
  }
  if (std::memcmp(file.data(), magic, 4) != 0) {
    return Status::InvalidArgument(
        StrFormat("%s is not a '%.4s' journal", path.c_str(), magic));
  }
  if (artifact::Crc32(file.data(), 8) != ReadLe32(file.data() + 8)) {
    return Status::InvalidArgument(path + ": journal header is corrupt");
  }
  const uint32_t version = ReadLe32(file.data() + 4);
  if (version != kFrameFormatVersion) {
    return Status::FailedPrecondition(StrFormat(
        "%s: journal format version %u is not supported (this build "
        "reads version %u)",
        path.c_str(), version, kFrameFormatVersion));
  }

  // Frame scan. `good_end` advances over every intact frame; the first
  // damaged frame ends the scan — as a truncatable tail if nothing
  // follows it, as an error otherwise.
  size_t offset = kHeaderBytes;
  size_t good_end = kHeaderBytes;
  while (offset < file.size()) {
    bool torn = false;
    if (file.size() - offset < 4) {
      torn = true;  // not even a length field
    } else {
      const uint32_t length = ReadLe32(file.data() + offset);
      if (length > options.max_frame_bytes ||
          file.size() - offset - 4 < static_cast<size_t>(length) + 4) {
        // The frame claims more bytes than exist (a mid-append crash,
        // or a flipped length field — indistinguishable, and either way
        // nothing after this point can be delimited).
        torn = true;
      } else {
        const uint8_t* payload = file.data() + offset + 4;
        const uint32_t stored_crc = ReadLe32(payload + length);
        if (artifact::Crc32(payload, length) != stored_crc) {
          // A complete frame whose CRC fails: torn only if it is the
          // final frame (the fsync may not have covered its last
          // bytes); with more data after it this is mid-file damage.
          if (offset + 8 + length == file.size()) {
            torn = true;
          } else {
            return Status::FailedPrecondition(StrFormat(
                "%s: frame %zu is corrupt mid-journal (not just a torn "
                "tail)",
                path.c_str(), recovery->frames.size() + 1));
          }
        } else {
          recovery->frames.emplace_back(payload, payload + length);
          offset += 8 + static_cast<size_t>(length);
          good_end = offset;
          continue;
        }
      }
    }
    if (torn) {
      recovery->tail_dropped = true;
      recovery->dropped_bytes = file.size() - good_end;
      break;
    }
  }

  if (recovery->tail_dropped) {
    // Persist the truncation so the torn bytes cannot shadow a later
    // append, then make it durable before acknowledging recovery.
    if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
      return Status::IoError("failed truncating torn tail of " + path);
    }
    if (artifact::FsyncFd(fd) != 0) {
      return Status::IoError("failed fsyncing truncated journal " + path);
    }
  }
  if (::lseek(fd, static_cast<off_t>(good_end), SEEK_SET) < 0) {
    return Status::IoError("failed seeking journal " + path);
  }
  out.write_offset_ = good_end;
  out.frame_count_ = recovery->frames.size();
  return out;
}

Status FrameJournal::Append(std::span<const uint8_t> payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal is not open");
  }
  if (payload.size() > options_.max_frame_bytes) {
    return Status::InvalidArgument(
        StrFormat("journal frame of %zu bytes exceeds the %u-byte cap",
                  payload.size(), options_.max_frame_bytes));
  }
  const std::vector<uint8_t> frame = EncodeFrame(payload);

  // On any failure, truncate back to the previous durable prefix so the
  // on-disk journal never acknowledges a frame the caller was told
  // failed. ftruncate is best effort — if even that fails the next
  // Open's torn-tail recovery removes the partial frame.
  auto fail = [&](const std::string& what) {
    (void)::ftruncate(fd_, static_cast<off_t>(write_offset_));
    (void)::lseek(fd_, static_cast<off_t>(write_offset_), SEEK_SET);
    return Status::IoError(what + " " + path_);
  };

  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n <= 0) return fail("failed appending to journal");
    written += static_cast<size_t>(n);
  }
  if (artifact::FsyncFd(fd_) != 0) {
    return fail("failed fsyncing journal");
  }
  write_offset_ += frame.size();
  ++frame_count_;
  return Status::OK();
}

Status FrameJournal::Rewrite(const std::string& path, const char magic[4],
                             const std::vector<std::vector<uint8_t>>& frames,
                             const FrameJournalOptions& options) {
  std::vector<uint8_t> file = EncodeHeader(magic);
  for (const std::vector<uint8_t>& payload : frames) {
    if (payload.size() > options.max_frame_bytes) {
      return Status::InvalidArgument(
          StrFormat("journal frame of %zu bytes exceeds the %u-byte cap",
                    payload.size(), options.max_frame_bytes));
    }
    const std::vector<uint8_t> frame = EncodeFrame(payload);
    file.insert(file.end(), frame.begin(), frame.end());
  }
  return WriteFileAtomically(path, file);
}

}  // namespace journal
}  // namespace transer

#include "text/phonetic.h"

#include <cctype>

namespace transer {

namespace {

// Soundex digit classes; 0 marks vowels and ignored letters.
char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

std::string LettersOnlyLower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

}  // namespace

std::string Soundex(std::string_view name) {
  const std::string letters = LettersOnlyLower(name);
  if (letters.empty()) return std::string();

  std::string code;
  code.push_back(
      static_cast<char>(std::toupper(static_cast<unsigned char>(letters[0]))));
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char c = letters[i];
    // 'h' and 'w' are transparent: they do not break runs of equal digits.
    if (c == 'h' || c == 'w') continue;
    const char digit = SoundexDigit(c);
    if (digit != '0' && digit != prev_digit) {
      code.push_back(digit);
    }
    prev_digit = digit;
  }
  code.resize(4, '0');
  return code;
}

std::string Nysiis(std::string_view name, size_t max_length) {
  std::string word = LettersOnlyLower(name);
  if (word.empty()) return std::string();

  auto starts = [&word](std::string_view prefix) {
    return word.size() >= prefix.size() &&
           std::string_view(word).substr(0, prefix.size()) == prefix;
  };
  auto ends = [&word](std::string_view suffix) {
    return word.size() >= suffix.size() &&
           std::string_view(word).substr(word.size() - suffix.size()) ==
               suffix;
  };

  // Prefix transformations.
  if (starts("mac")) {
    word.replace(0, 3, "mcc");
  } else if (starts("kn")) {
    word.replace(0, 2, "nn");
  } else if (starts("k")) {
    word.replace(0, 1, "c");
  } else if (starts("ph") || starts("pf")) {
    word.replace(0, 2, "ff");
  } else if (starts("sch")) {
    word.replace(0, 3, "sss");
  }
  // Suffix transformations.
  if (ends("ee") || ends("ie")) {
    word.replace(word.size() - 2, 2, "y");
  } else if (ends("dt") || ends("rt") || ends("rd") || ends("nt") ||
             ends("nd")) {
    word.replace(word.size() - 2, 2, "d");
  }

  std::string code;
  code.push_back(word[0]);
  for (size_t i = 1; i < word.size(); ++i) {
    char c = word[i];
    // Letter-group substitutions.
    if (c == 'e' && i + 1 < word.size() && word[i + 1] == 'v') {
      word[i + 1] = 'f';  // "ev" -> "af"
      c = 'a';
    } else if (IsVowel(c)) {
      c = 'a';
    } else if (c == 'q') {
      c = 'g';
    } else if (c == 'z') {
      c = 's';
    } else if (c == 'm') {
      c = 'n';
    } else if (c == 'k') {
      c = (i + 1 < word.size() && word[i + 1] == 'n') ? 'n' : 'c';
    } else if (c == 's' && i + 2 < word.size() && word[i + 1] == 'c' &&
               word[i + 2] == 'h') {
      word[i + 1] = 's';
      word[i + 2] = 's';
      c = 's';
    } else if (c == 'p' && i + 1 < word.size() && word[i + 1] == 'h') {
      word[i + 1] = 'f';
      c = 'f';
    } else if (c == 'h' &&
               (!IsVowel(word[i - 1]) ||
                (i + 1 < word.size() && !IsVowel(word[i + 1])))) {
      c = word[i - 1];
    } else if (c == 'w' && IsVowel(word[i - 1])) {
      c = word[i - 1];
    }
    word[i] = c;
    if (code.back() != c) code.push_back(c);
  }

  // Terminal cleanup: drop trailing 's' / 'a', map trailing "ay" to "y".
  while (code.size() > 1 && (code.back() == 's' || code.back() == 'a')) {
    code.pop_back();
  }
  if (code.size() >= 2 && code.substr(code.size() - 2) == "ay") {
    code = code.substr(0, code.size() - 2) + "y";
  }
  if (max_length > 0 && code.size() > max_length) code.resize(max_length);
  for (char& c : code) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return code;
}

double SoundexSimilarity(std::string_view a, std::string_view b) {
  const std::string code_a = Soundex(a);
  if (code_a.empty()) return 0.0;
  return code_a == Soundex(b) ? 1.0 : 0.0;
}

}  // namespace transer

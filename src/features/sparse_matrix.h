#ifndef TRANSER_FEATURES_SPARSE_MATRIX_H_
#define TRANSER_FEATURES_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "features/feature_matrix.h"
#include "util/diagnostics.h"
#include "util/status.h"
#include "util/validation.h"

namespace transer {

/// \brief CSR instance store for the high-dimensional hashed feature
/// path: row offsets + column indices + values, plus the same label /
/// pair-ref sidecars as FeatureMatrix.
///
/// The row contract — enforced by Validate, assumed by every sparse
/// kernel — is *strictly increasing* column indices below
/// num_features() and finite values. Column indices are u32 (the hashed
/// n-gram space is capped at ~2^20, far below the u32 ceiling) and the
/// feature-name list may be empty: a hashed space identifies itself
/// through a compact schema descriptor (see
/// CharNgramEmbedder::SparseSchemaNames) instead of 2^20 column names.
class SparseFeatureMatrix {
 public:
  SparseFeatureMatrix() = default;
  explicit SparseFeatureMatrix(size_t num_features,
                               std::vector<std::string> feature_names = {});

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  size_t num_features() const { return num_features_; }
  /// Stored nonzeros across all rows.
  size_t nnz() const { return values_.size(); }
  /// Column names when the space is small enough to enumerate (e.g. a
  /// CSR view of a dense matrix); empty for hashed spaces.
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// One row of the matrix (non-owning views into the CSR arrays).
  struct RowView {
    std::span<const uint32_t> indices;
    std::span<const double> values;
  };
  RowView Row(size_t i) const {
    const size_t begin = row_offsets_[i];
    const size_t end = row_offsets_[i + 1];
    return RowView{
        std::span<const uint32_t>(indices_.data() + begin, end - begin),
        std::span<const double>(values_.data() + begin, end - begin)};
  }

  /// Writable view of row i's stored values (the column pattern stays
  /// fixed) — what in-place transforms like SparseScaler mutate.
  std::span<double> MutableRowValues(size_t i) {
    const size_t begin = row_offsets_[i];
    return std::span<double>(values_.data() + begin,
                             row_offsets_[i + 1] - begin);
  }

  int label(size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }
  void set_label(size_t i, int label) { labels_[i] = label; }
  const PairRef& pair(size_t i) const { return pairs_[i]; }

  /// Appends one instance. `indices` and `values` must agree in length;
  /// the CSR row contract (sorted, in-range, finite) is *not* verified
  /// here — Validate is the gate for untrusted input.
  void AppendRow(std::span<const uint32_t> indices,
                 std::span<const double> values, int label, PairRef ref = {});

  void Reserve(size_t rows, size_t nnz);

  /// Subset by row indices (features, labels and pair refs).
  SparseFeatureMatrix Select(const std::vector<size_t>& rows) const;

  /// Actual CSR footprint in bytes (offsets + indices + values +
  /// sidecars) — what the sparse path holds in memory.
  size_t MemoryBytes() const;
  /// What the same instances would occupy as a dense row-major matrix.
  static size_t DenseEquivalentBytes(size_t rows, size_t cols) {
    return rows * cols * sizeof(double);
  }

  /// CSR view of a dense matrix with exact zeros dropped — the bridge
  /// the sparse↔dense equivalence tests and the --sparse transfer path
  /// are built on. Keeps names, labels and pair refs.
  static SparseFeatureMatrix FromDense(const FeatureMatrix& dense);

  /// Densifies (zero-filled gaps). Intended for tests and small spaces;
  /// synthesises "f<i>" column names when the space is unnamed.
  FeatureMatrix ToDense() const;

  /// Scans every row against the CSR contract: finite values (and,
  /// optionally, the [0, 1] range), strictly increasing in-range column
  /// indices, and in-domain labels. kStrict rejects the matrix on the
  /// first violation class; kDropRows drops offending rows; kClampValues
  /// repairs value-level faults in place (NaN -> 0, clamp into range)
  /// but still drops structurally broken rows — an out-of-range or
  /// unsorted index has no meaningful repair, and letting it through
  /// would be UB in the kernels. `report` and `diagnostics` receive the
  /// findings (kSparseRowsDropped / kValuesRepaired events).
  Result<SparseFeatureMatrix> Validate(
      const ValidationOptions& options, ValidationReport* report = nullptr,
      RunDiagnostics* diagnostics = nullptr) const;

 private:
  size_t num_features_ = 0;
  std::vector<std::string> feature_names_;
  std::vector<size_t> row_offsets_ = {0};
  std::vector<uint32_t> indices_;
  std::vector<double> values_;
  std::vector<int> labels_;
  std::vector<PairRef> pairs_;
};

}  // namespace transer

#endif  // TRANSER_FEATURES_SPARSE_MATRIX_H_

file(REMOVE_RECURSE
  "CMakeFiles/figure7_param_sensitivity.dir/figure7_param_sensitivity.cc.o"
  "CMakeFiles/figure7_param_sensitivity.dir/figure7_param_sensitivity.cc.o.d"
  "figure7_param_sensitivity"
  "figure7_param_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_param_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef TRANSER_SERVE_MODEL_REPOSITORY_H_
#define TRANSER_SERVE_MODEL_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "knn/knn_backend.h"
#include "ml/model_store.h"
#include "serve/retry.h"
#include "util/diagnostics.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace transer {
namespace serve {

/// \brief One indexed TERA pipeline artifact: its identity, the schema
/// it serves, its optional domain profile, and the loaded state. The
/// state is shared immutably, so a hot-reload swaps the index entry
/// while in-flight requests keep serving from the snapshot they
/// selected.
struct RepositoryModel {
  std::string path;
  std::string id;  ///< file name within the repository directory
  uint64_t schema_fingerprint = 0;
  std::string classifier_kind;  ///< classifier family, e.g. "random_forest"
  bool has_classifier_v = false;
  std::vector<std::string> feature_names;
  std::vector<double> centroid;  ///< domain profile; empty when absent
  int64_t mtime_ticks = 0;       ///< filesystem mtime (ordering only)
  uint64_t file_size = 0;
  std::shared_ptr<const TransERPipelineState> state;
};

/// \brief Repository configuration.
struct RepositoryOptions {
  std::string directory;
  /// Artifact file suffix the scan indexes; other files are ignored.
  std::string extension = ".tera";
  /// MaybeRefresh() rescans at most this often (seconds; 0 = every call,
  /// subject to the debounce floor below).
  double refresh_interval_seconds = 2.0;
  /// Hard floor between MaybeRefresh() scans. The per-request freshness
  /// check stat()s every artifact in the directory; without a floor a
  /// request storm amplifies into a filesystem-metadata storm. Tests and
  /// hot-swap paths that need an immediate scan call ForceRescan(),
  /// which ignores both intervals.
  double min_rescan_interval_seconds = 0.25;
  /// Bounded retry for transient load failures (see retry.h).
  RetryPolicy retry;
  /// Index rebuilt behind every "knn"-family classifier as its artifact
  /// loads: exact KD-tree by default, the approximate graph
  /// (kind = kAnnGraph) when serving favours lookup latency over the
  /// last few percent of neighbour recall. A host runtime choice —
  /// artifacts never record a backend (ml/knn_classifier.h).
  KnnBackendOptions knn;
  /// Floor for the SEL-style similarity probe: a fallback candidate
  /// below this is no better than no model at all.
  double min_probe_similarity = 0.5;
  /// Test-only: invoked with the artifact path right before each load
  /// attempt, so tests can race the scan deterministically (e.g. delete
  /// the file between directory enumeration and open).
  std::function<void(const std::string&)> before_load_hook;
};

/// \brief Outcome of one repository scan.
struct RefreshReport {
  size_t files_seen = 0;
  size_t loaded = 0;       ///< new artifacts indexed
  size_t reloaded = 0;     ///< changed artifacts re-indexed (hot swap)
  size_t unchanged = 0;    ///< same (mtime, size); load skipped
  size_t removed = 0;      ///< index entries whose file vanished
  size_t quarantined = 0;  ///< artifacts that failed their retry budget
  size_t still_quarantined = 0;  ///< unchanged since they were quarantined
  /// kServeArtifactRetried / kModelArtifactRejected events of the scan.
  RunDiagnostics diagnostics;
};

/// \brief Directory-backed repository of TransER pipeline artifacts
/// with hot reload and schema-aware selection (the construct-search-
/// integrate loop of the model-repository line of work, PAPERS.md).
///
/// Scanning indexes every `*.tera` file by (mtime, size): unchanged
/// files are never re-read, changed files are re-loaded through the
/// bounded retry/backoff path, and files that exhaust the budget are
/// quarantined — remembered by their exact (mtime, size) so a corrupt
/// artifact costs one retry burst, not one per scan, and is re-probed
/// the moment it changes on disk. All methods are thread-safe.
class ModelRepository {
 public:
  explicit ModelRepository(RepositoryOptions options, SleepFn sleep = {});

  /// Scans the directory now, ignoring the rescan intervals. Never
  /// fails: unreadable directories or artifacts degrade (recorded in the
  /// report) rather than erroring, because a serving daemon must outlive
  /// its filesystem's bad days.
  RefreshReport ForceRescan();

  /// ForceRescan() if both the refresh interval and the debounce floor
  /// (min_rescan_interval_seconds) have elapsed; otherwise a no-op. The
  /// first call always scans. Returns true when a scan ran.
  bool MaybeRefresh();

  /// \brief A selection answer: the model plus how it was chosen.
  struct Selection {
    std::shared_ptr<const RepositoryModel> model;
    bool by_fingerprint = false;  ///< exact schema match
    double probe_similarity = 0.0;  ///< set when probed
  };

  /// Picks the best artifact for a request schema. Exact fingerprint
  /// match wins (preferring artifacts with a trained C^V, then the
  /// newest, then lexicographically smallest id — deterministic).
  /// Otherwise, when `request_centroid` is non-empty, falls back to the
  /// SEL-style structural-similarity probe over same-width candidates
  /// that carry a domain profile, requiring min_probe_similarity.
  /// NotFound when nothing qualifies.
  Result<Selection> Select(const std::vector<std::string>& feature_names,
                           std::span<const double> request_centroid) const;

  /// Snapshot of the current index (for stats/tests).
  std::vector<std::shared_ptr<const RepositoryModel>> Models() const;

  size_t size() const;
  size_t quarantined_count() const;
  uint64_t refresh_count() const;
  /// Total transient-load retries across all scans.
  uint64_t load_retry_count() const;

  const RepositoryOptions& options() const { return options_; }

 private:
  struct FileSignature {
    int64_t mtime_ticks = 0;
    uint64_t file_size = 0;
    bool operator==(const FileSignature&) const = default;
  };

  RepositoryOptions options_;
  SleepFn sleep_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const RepositoryModel>> models_;
  std::map<std::string, FileSignature> quarantine_;
  Stopwatch since_refresh_;
  bool ever_refreshed_ = false;
  uint64_t refresh_count_ = 0;
  uint64_t load_retry_count_ = 0;
};

}  // namespace serve
}  // namespace transer

#endif  // TRANSER_SERVE_MODEL_REPOSITORY_H_

// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt): the kernels' arithmetic must not be fused into
// FMAs under TRANSER_NATIVE_ARCH, or their results would depend on the
// build flags and break the determinism contract in kernels.h.
#include "linalg/kernels.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

#if defined(__clang__)
#pragma STDC FP_CONTRACT OFF
#endif

// Explicit-SIMD paths light up when the TU is compiled for a target
// with AVX2 (the TRANSER_NATIVE_ARCH build on any modern x86). The
// mapping to the determinism contract is exact: one __m256d accumulator
// IS the four scalar lanes — vector lane l accumulates the elements
// with i mod 4 == l — and the mul/add stay separate instructions (the
// intrinsics never contract to FMA), so every SIMD kernel returns the
// same bits as the scalar fixed-order path, which remains the reference
// that SelfCheck() compares against at runtime.
#if defined(__AVX2__)
#define TRANSER_KERNELS_AVX2 1
#include <immintrin.h>
#else
#define TRANSER_KERNELS_AVX2 0
#endif

// 8-wide element-wise bodies (no reductions cross this guard: the
// 4-lane accumulation convention is pinned to 256-bit vectors).
#if defined(__AVX512F__)
#define TRANSER_KERNELS_AVX512 1
#else
#define TRANSER_KERNELS_AVX512 0
#endif

namespace transer {
namespace kernels {

namespace {

/// The canonical lane combine: (acc0+acc1)+(acc2+acc3).
inline double Combine4(double a0, double a1, double a2, double a3) {
  return (a0 + a1) + (a2 + a3);
}

#if TRANSER_KERNELS_AVX2

/// Drains one 4-lane vector accumulator: adds the scalar tail
/// (elements [i, n), which land on lanes 0..2 because i is a multiple
/// of 4) onto the matching lanes, then applies the canonical combine.
inline double FinishDot(__m256d acc, const double* a, const double* b,
                        size_t i, size_t n) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  if (i < n) lane[0] += a[i] * b[i];
  if (i + 1 < n) lane[1] += a[i + 1] * b[i + 1];
  if (i + 2 < n) lane[2] += a[i + 2] * b[i + 2];
  return Combine4(lane[0], lane[1], lane[2], lane[3]);
}

inline double DotImpl(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  return FinishDot(acc, a, b, i, n);
}

inline double SquaredL2Impl(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  if (i < n) {
    const double d = a[i] - b[i];
    lane[0] += d * d;
  }
  if (i + 1 < n) {
    const double d = a[i + 1] - b[i + 1];
    lane[1] += d * d;
  }
  if (i + 2 < n) {
    const double d = a[i + 2] - b[i + 2];
    lane[2] += d * d;
  }
  return Combine4(lane[0], lane[1], lane[2], lane[3]);
}

#else  // !TRANSER_KERNELS_AVX2

/// Four-lane dot product: element i feeds accumulator i mod 4. Every
/// public reduction funnels through this one inline so all call sites —
/// Dot, SquaredNorm, the pairwise tiles, the gather kernel — produce the
/// same bits for the same rows.
inline double DotImpl(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  // i is a multiple of 4, so element i+j still lands on lane j.
  if (i < n) acc0 += a[i] * b[i];
  if (i + 1 < n) acc1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) acc2 += a[i + 2] * b[i + 2];
  return Combine4(acc0, acc1, acc2, acc3);
}

inline double SquaredL2Impl(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  if (i < n) {
    const double d = a[i] - b[i];
    acc0 += d * d;
  }
  if (i + 1 < n) {
    const double d = a[i + 1] - b[i + 1];
    acc1 += d * d;
  }
  if (i + 2 < n) {
    const double d = a[i + 2] - b[i + 2];
    acc2 += d * d;
  }
  return Combine4(acc0, acc1, acc2, acc3);
}

#endif  // TRANSER_KERNELS_AVX2

/// The decomposed pair distance. (a_norm + b_norm) - 2*dot is evaluated
/// in exactly this order so that identical rows — whose norms and dot
/// are the same double — give exactly 0. The clamp absorbs small
/// negative cancellation residues; NaN < 0.0 is false, so NaN inputs
/// propagate.
inline double PairDistSq(double a_norm, double b_norm, double dot) {
  const double d = (a_norm + b_norm) - 2.0 * dot;
  return d < 0.0 ? 0.0 : d;
}

/// Cache tile shape of the pairwise kernel: kTileA query rows are swept
/// against kTileB point rows while both stay resident in L1. Tile
/// boundaries never affect values — each entry is a full-width DotImpl.
constexpr size_t kTileA = 8;
constexpr size_t kTileB = 64;

#if TRANSER_KERNELS_AVX2

/// Transpose-reduce of four 4-lane accumulators into one vector of
/// Combine4 results. unpacklo/unpackhi add lane pairs (l0+l1, l2+l3)
/// per accumulator, the cross-128 permutes line the four accumulators
/// up one per lane, and the final add applies (l0+l1)+(l2+l3) — the
/// canonical combine, association preserved exactly, with no scalar
/// stores. Only valid when every accumulator is fully drained (no
/// scalar tail), i.e. dims % 4 == 0.
inline __m256d Combine4x4(__m256d a, __m256d b, __m256d c, __m256d d) {
  const __m256d s_ab =
      _mm256_add_pd(_mm256_unpacklo_pd(a, b), _mm256_unpackhi_pd(a, b));
  const __m256d s_cd =
      _mm256_add_pd(_mm256_unpacklo_pd(c, d), _mm256_unpackhi_pd(c, d));
  const __m256d lo = _mm256_permute2f128_pd(s_ab, s_cd, 0x20);
  const __m256d hi = _mm256_permute2f128_pd(s_ab, s_cd, 0x31);
  return _mm256_add_pd(lo, hi);
}

/// Four PairDistSq at once: (na + nb) - (dot + dot), clamped to zero
/// exactly like the scalar form (dot+dot == 2.0*dot bit-for-bit; the
/// compare-mask clamp keeps NaN and -0.0 behaviour identical).
inline __m256d PairDistSq4(__m256d a_norm, __m256d b_norms, __m256d dots) {
  const __m256d d = _mm256_sub_pd(_mm256_add_pd(a_norm, b_norms),
                                  _mm256_add_pd(dots, dots));
  const __m256d negative = _mm256_cmp_pd(d, _mm256_setzero_pd(), _CMP_LT_OQ);
  return _mm256_andnot_pd(negative, d);
}

/// Register-blocked pairwise inner tile: 2 query rows × 4 point rows in
/// flight, each of the 8 (i, j) pairs owning one 4-lane vector
/// accumulator. The 8 independent add chains are what beat the
/// latency-bound single chain of a plain dot loop — every accumulator
/// is drained exactly like DotImpl's, so each output entry is
/// bit-identical to the one-pair-at-a-time path.
inline void PairwiseTileAvx2(const double* a, size_t i0, size_t i1,
                             const double* b, size_t j0, size_t j1,
                             const double* a_norms, const double* b_norms,
                             size_t dims, size_t b_rows, double* out) {
  size_t i = i0;
  for (; i + 2 <= i1; i += 2) {
    const double* ai0 = a + i * dims;
    const double* ai1 = a + (i + 1) * dims;
    double* out0 = out + i * b_rows;
    double* out1 = out + (i + 1) * b_rows;
    size_t j = j0;
    for (; j + 4 <= j1; j += 4) {
      const double* bj0 = b + j * dims;
      const double* bj1 = b + (j + 1) * dims;
      const double* bj2 = b + (j + 2) * dims;
      const double* bj3 = b + (j + 3) * dims;
      __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
      __m256d c02 = _mm256_setzero_pd(), c03 = _mm256_setzero_pd();
      __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
      __m256d c12 = _mm256_setzero_pd(), c13 = _mm256_setzero_pd();
      size_t t = 0;
      const size_t t4 = dims & ~size_t{3};
      // Two 4-element steps per iteration: both feed the same
      // accumulators in element order (t before t+4), so the chains are
      // exactly DotImpl's — the unroll only widens the load window.
      const size_t t8 = dims & ~size_t{7};
      for (; t < t8; t += 8) {
        const __m256d va0 = _mm256_loadu_pd(ai0 + t);
        const __m256d va1 = _mm256_loadu_pd(ai1 + t);
        const __m256d vb0 = _mm256_loadu_pd(bj0 + t);
        const __m256d vb1 = _mm256_loadu_pd(bj1 + t);
        const __m256d vb2 = _mm256_loadu_pd(bj2 + t);
        const __m256d vb3 = _mm256_loadu_pd(bj3 + t);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(va0, vb0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(va0, vb1));
        c02 = _mm256_add_pd(c02, _mm256_mul_pd(va0, vb2));
        c03 = _mm256_add_pd(c03, _mm256_mul_pd(va0, vb3));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(va1, vb0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(va1, vb1));
        c12 = _mm256_add_pd(c12, _mm256_mul_pd(va1, vb2));
        c13 = _mm256_add_pd(c13, _mm256_mul_pd(va1, vb3));
        const __m256d wa0 = _mm256_loadu_pd(ai0 + t + 4);
        const __m256d wa1 = _mm256_loadu_pd(ai1 + t + 4);
        const __m256d wb0 = _mm256_loadu_pd(bj0 + t + 4);
        const __m256d wb1 = _mm256_loadu_pd(bj1 + t + 4);
        const __m256d wb2 = _mm256_loadu_pd(bj2 + t + 4);
        const __m256d wb3 = _mm256_loadu_pd(bj3 + t + 4);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(wa0, wb0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(wa0, wb1));
        c02 = _mm256_add_pd(c02, _mm256_mul_pd(wa0, wb2));
        c03 = _mm256_add_pd(c03, _mm256_mul_pd(wa0, wb3));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(wa1, wb0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(wa1, wb1));
        c12 = _mm256_add_pd(c12, _mm256_mul_pd(wa1, wb2));
        c13 = _mm256_add_pd(c13, _mm256_mul_pd(wa1, wb3));
      }
      for (; t < t4; t += 4) {
        const __m256d va0 = _mm256_loadu_pd(ai0 + t);
        const __m256d va1 = _mm256_loadu_pd(ai1 + t);
        const __m256d vb0 = _mm256_loadu_pd(bj0 + t);
        const __m256d vb1 = _mm256_loadu_pd(bj1 + t);
        const __m256d vb2 = _mm256_loadu_pd(bj2 + t);
        const __m256d vb3 = _mm256_loadu_pd(bj3 + t);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(va0, vb0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(va0, vb1));
        c02 = _mm256_add_pd(c02, _mm256_mul_pd(va0, vb2));
        c03 = _mm256_add_pd(c03, _mm256_mul_pd(va0, vb3));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(va1, vb0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(va1, vb1));
        c12 = _mm256_add_pd(c12, _mm256_mul_pd(va1, vb2));
        c13 = _mm256_add_pd(c13, _mm256_mul_pd(va1, vb3));
      }
      if (t == dims) {
        // Fully drained accumulators: all-vector finish, no stores.
        const __m256d nb = _mm256_loadu_pd(b_norms + j);
        _mm256_storeu_pd(
            out0 + j,
            PairDistSq4(_mm256_set1_pd(a_norms[i]), nb,
                        Combine4x4(c00, c01, c02, c03)));
        _mm256_storeu_pd(
            out1 + j,
            PairDistSq4(_mm256_set1_pd(a_norms[i + 1]), nb,
                        Combine4x4(c10, c11, c12, c13)));
      } else {
        out0[j] = PairDistSq(a_norms[i], b_norms[j],
                             FinishDot(c00, ai0, bj0, t, dims));
        out0[j + 1] = PairDistSq(a_norms[i], b_norms[j + 1],
                                 FinishDot(c01, ai0, bj1, t, dims));
        out0[j + 2] = PairDistSq(a_norms[i], b_norms[j + 2],
                                 FinishDot(c02, ai0, bj2, t, dims));
        out0[j + 3] = PairDistSq(a_norms[i], b_norms[j + 3],
                                 FinishDot(c03, ai0, bj3, t, dims));
        out1[j] = PairDistSq(a_norms[i + 1], b_norms[j],
                             FinishDot(c10, ai1, bj0, t, dims));
        out1[j + 1] = PairDistSq(a_norms[i + 1], b_norms[j + 1],
                                 FinishDot(c11, ai1, bj1, t, dims));
        out1[j + 2] = PairDistSq(a_norms[i + 1], b_norms[j + 2],
                                 FinishDot(c12, ai1, bj2, t, dims));
        out1[j + 3] = PairDistSq(a_norms[i + 1], b_norms[j + 3],
                                 FinishDot(c13, ai1, bj3, t, dims));
      }
    }
    for (; j < j1; ++j) {
      const double* bj = b + j * dims;
      out0[j] = PairDistSq(a_norms[i], b_norms[j], DotImpl(ai0, bj, dims));
      out1[j] =
          PairDistSq(a_norms[i + 1], b_norms[j], DotImpl(ai1, bj, dims));
    }
  }
  for (; i < i1; ++i) {
    const double* ai = a + i * dims;
    double* out_row = out + i * b_rows;
    for (size_t j = j0; j < j1; ++j) {
      out_row[j] =
          PairDistSq(a_norms[i], b_norms[j], DotImpl(ai, b + j * dims, dims));
    }
  }
}

#endif  // TRANSER_KERNELS_AVX2

}  // namespace

double Dot(std::span<const double> a, std::span<const double> b) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  return DotImpl(a.data(), b.data(), a.size());
}

double SquaredL2(std::span<const double> a, std::span<const double> b) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  return SquaredL2Impl(a.data(), b.data(), a.size());
}

double SquaredNorm(std::span<const double> v) {
  return DotImpl(v.data(), v.data(), v.size());
}

// The element-wise kernels below are plain loops in the portable build
// (each output element is an independent expression — no accumulation,
// so no ordering contract to preserve; a hand-unrolled scalar loop was
// measurably *slower* than the naive one: 33.3 vs 28.7 ns/op for
// axpy.d128). Under AVX2 they get explicit 4-wide bodies: this TU
// builds with contraction off, so without intrinsics the loops stay
// scalar mul+add and lose to FMA-contracted caller code; the vector
// form computes each element with the same separate mul and add and
// remains bit-identical to the scalar path.

void Axpy(double s, std::span<const double> x, std::span<double> y) {
  TRANSER_CHECK_EQ(x.size(), y.size());
  const double* xp = x.data();
  double* yp = y.data();
  const size_t n = x.size();
  size_t i = 0;
#if TRANSER_KERNELS_AVX512
  const __m512d ws = _mm512_set1_pd(s);
  for (; i + 8 <= n; i += 8) {
    const __m512d prod = _mm512_mul_pd(ws, _mm512_loadu_pd(xp + i));
    _mm512_storeu_pd(yp + i, _mm512_add_pd(_mm512_loadu_pd(yp + i), prod));
  }
#endif
#if TRANSER_KERNELS_AVX2
  const __m256d vs = _mm256_set1_pd(s);
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(vs, _mm256_loadu_pd(xp + i));
    _mm256_storeu_pd(yp + i, _mm256_add_pd(_mm256_loadu_pd(yp + i), prod));
  }
#endif
  for (; i < n; ++i) yp[i] += s * xp[i];
}

void Fma(std::span<const double> a, std::span<const double> b,
         std::span<double> out) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  TRANSER_CHECK_EQ(a.size(), out.size());
  const double* ap = a.data();
  const double* bp = b.data();
  double* op = out.data();
  const size_t n = a.size();
  size_t i = 0;
#if TRANSER_KERNELS_AVX512
  for (; i + 8 <= n; i += 8) {
    const __m512d prod =
        _mm512_mul_pd(_mm512_loadu_pd(ap + i), _mm512_loadu_pd(bp + i));
    _mm512_storeu_pd(op + i, _mm512_add_pd(_mm512_loadu_pd(op + i), prod));
  }
#endif
#if TRANSER_KERNELS_AVX2
  for (; i + 4 <= n; i += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(ap + i), _mm256_loadu_pd(bp + i));
    _mm256_storeu_pd(op + i, _mm256_add_pd(_mm256_loadu_pd(op + i), prod));
  }
#endif
  for (; i < n; ++i) op[i] += ap[i] * bp[i];
}

void ScaleInPlace(std::span<double> v, double s) {
  double* p = v.data();
  const size_t n = v.size();
  size_t i = 0;
#if TRANSER_KERNELS_AVX512
  const __m512d ws = _mm512_set1_pd(s);
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(p + i, _mm512_mul_pd(_mm512_loadu_pd(p + i), ws));
  }
#endif
#if TRANSER_KERNELS_AVX2
  const __m256d vs = _mm256_set1_pd(s);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(p + i, _mm256_mul_pd(_mm256_loadu_pd(p + i), vs));
  }
#endif
  for (; i < n; ++i) p[i] *= s;
}

void AddInPlace(std::span<double> a, std::span<const double> b) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  double* ap = a.data();
  const double* bp = b.data();
  const size_t n = a.size();
  size_t i = 0;
#if TRANSER_KERNELS_AVX512
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        ap + i, _mm512_add_pd(_mm512_loadu_pd(ap + i),
                              _mm512_loadu_pd(bp + i)));
  }
#endif
#if TRANSER_KERNELS_AVX2
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        ap + i, _mm256_add_pd(_mm256_loadu_pd(ap + i),
                              _mm256_loadu_pd(bp + i)));
  }
#endif
  for (; i < n; ++i) ap[i] += bp[i];
}

void SquaredNorms(const double* rows, size_t n, size_t dims, double* out) {
  for (size_t r = 0; r < n; ++r) {
    const double* row = rows + r * dims;
    out[r] = DotImpl(row, row, dims);
  }
}

double PairSquaredL2(std::span<const double> a, double a_norm,
                     std::span<const double> b, double b_norm) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  return PairDistSq(a_norm, b_norm, DotImpl(a.data(), b.data(), a.size()));
}

void PairwiseSquaredL2(const double* a, size_t a_rows, const double* a_norms,
                       const double* b, size_t b_rows, const double* b_norms,
                       size_t dims, double* out) {
  for (size_t i0 = 0; i0 < a_rows; i0 += kTileA) {
    const size_t i1 = i0 + kTileA < a_rows ? i0 + kTileA : a_rows;
    for (size_t j0 = 0; j0 < b_rows; j0 += kTileB) {
      const size_t j1 = j0 + kTileB < b_rows ? j0 + kTileB : b_rows;
#if TRANSER_KERNELS_AVX2
      PairwiseTileAvx2(a, i0, i1, b, j0, j1, a_norms, b_norms, dims, b_rows,
                       out);
#else
      for (size_t i = i0; i < i1; ++i) {
        const double* ai = a + i * dims;
        const double ni = a_norms[i];
        double* out_row = out + i * b_rows;
        for (size_t j = j0; j < j1; ++j) {
          out_row[j] =
              PairDistSq(ni, b_norms[j], DotImpl(ai, b + j * dims, dims));
        }
      }
#endif
    }
  }
}

void SquaredL2Gather(std::span<const double> query, double query_norm,
                     const double* base, size_t dims,
                     std::span<const size_t> rows, const double* norms,
                     double* out) {
  TRANSER_CHECK_EQ(query.size(), dims);
  const double* q = query.data();
  size_t r = 0;
#if TRANSER_KERNELS_AVX2
  // Four gathered rows in flight, sharing each query load: four
  // independent accumulator chains (drained exactly like DotImpl's)
  // instead of one latency-bound chain per row.
  for (; r + 4 <= rows.size(); r += 4) {
    const double* p0 = base + rows[r] * dims;
    const double* p1 = base + rows[r + 1] * dims;
    const double* p2 = base + rows[r + 2] * dims;
    const double* p3 = base + rows[r + 3] * dims;
    __m256d c0 = _mm256_setzero_pd(), c1 = _mm256_setzero_pd();
    __m256d c2 = _mm256_setzero_pd(), c3 = _mm256_setzero_pd();
    size_t t = 0;
    const size_t t4 = dims & ~size_t{3};
    for (; t < t4; t += 4) {
      const __m256d vq = _mm256_loadu_pd(q + t);
      c0 = _mm256_add_pd(c0, _mm256_mul_pd(vq, _mm256_loadu_pd(p0 + t)));
      c1 = _mm256_add_pd(c1, _mm256_mul_pd(vq, _mm256_loadu_pd(p1 + t)));
      c2 = _mm256_add_pd(c2, _mm256_mul_pd(vq, _mm256_loadu_pd(p2 + t)));
      c3 = _mm256_add_pd(c3, _mm256_mul_pd(vq, _mm256_loadu_pd(p3 + t)));
    }
    out[r] = PairDistSq(query_norm, norms[rows[r]],
                        FinishDot(c0, q, p0, t, dims));
    out[r + 1] = PairDistSq(query_norm, norms[rows[r + 1]],
                            FinishDot(c1, q, p1, t, dims));
    out[r + 2] = PairDistSq(query_norm, norms[rows[r + 2]],
                            FinishDot(c2, q, p2, t, dims));
    out[r + 3] = PairDistSq(query_norm, norms[rows[r + 3]],
                            FinishDot(c3, q, p3, t, dims));
  }
#endif
  for (; r < rows.size(); ++r) {
    const size_t row = rows[r];
    out[r] = PairDistSq(query_norm, norms[row],
                        DotImpl(q, base + row * dims, dims));
  }
}

double SparseDenseDot(std::span<const uint32_t> indices,
                      std::span<const double> values,
                      std::span<const double> dense) {
  TRANSER_CHECK_EQ(indices.size(), values.size());
  const uint32_t* ip = indices.data();
  const double* vp = values.data();
  const double* dp = dense.data();
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t k = 0;
  const size_t n = indices.size();
  const size_t n4 = n & ~size_t{3};
  for (; k < n4; k += 4) {
    acc0 += vp[k] * dp[ip[k]];
    acc1 += vp[k + 1] * dp[ip[k + 1]];
    acc2 += vp[k + 2] * dp[ip[k + 2]];
    acc3 += vp[k + 3] * dp[ip[k + 3]];
  }
  if (k < n) acc0 += vp[k] * dp[ip[k]];
  if (k + 1 < n) acc1 += vp[k + 1] * dp[ip[k + 1]];
  if (k + 2 < n) acc2 += vp[k + 2] * dp[ip[k + 2]];
  return Combine4(acc0, acc1, acc2, acc3);
}

double SparseDot(std::span<const uint32_t> a_indices,
                 std::span<const double> a_values,
                 std::span<const uint32_t> b_indices,
                 std::span<const double> b_values) {
  TRANSER_CHECK_EQ(a_indices.size(), a_values.size());
  TRANSER_CHECK_EQ(b_indices.size(), b_values.size());
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t ia = 0, ib = 0, t = 0;
  while (ia < a_indices.size() && ib < b_indices.size()) {
    const uint32_t ca = a_indices[ia];
    const uint32_t cb = b_indices[ib];
    if (ca < cb) {
      ++ia;
    } else if (cb < ca) {
      ++ib;
    } else {
      const double term = a_values[ia] * b_values[ib];
      switch (t & 3) {
        case 0: acc0 += term; break;
        case 1: acc1 += term; break;
        case 2: acc2 += term; break;
        default: acc3 += term; break;
      }
      ++t;
      ++ia;
      ++ib;
    }
  }
  return Combine4(acc0, acc1, acc2, acc3);
}

void SparseAxpy(double s, std::span<const uint32_t> indices,
                std::span<const double> values, std::span<double> y) {
  TRANSER_CHECK_EQ(indices.size(), values.size());
  const uint32_t* ip = indices.data();
  const double* vp = values.data();
  double* yp = y.data();
  size_t k = 0;
  const size_t n = indices.size();
  const size_t n4 = n & ~size_t{3};
  for (; k < n4; k += 4) {
    yp[ip[k]] += s * vp[k];
    yp[ip[k + 1]] += s * vp[k + 1];
    yp[ip[k + 2]] += s * vp[k + 2];
    yp[ip[k + 3]] += s * vp[k + 3];
  }
  for (; k < n; ++k) yp[ip[k]] += s * vp[k];
}

double SparseSquaredL2(std::span<const uint32_t> a_indices,
                       std::span<const double> a_values,
                       std::span<const uint32_t> b_indices,
                       std::span<const double> b_values) {
  TRANSER_CHECK_EQ(a_indices.size(), a_values.size());
  TRANSER_CHECK_EQ(b_indices.size(), b_values.size());
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t ia = 0, ib = 0, t = 0;
  const auto emit = [&](double d) {
    const double term = d * d;
    switch (t & 3) {
      case 0: acc0 += term; break;
      case 1: acc1 += term; break;
      case 2: acc2 += term; break;
      default: acc3 += term; break;
    }
    ++t;
  };
  while (ia < a_indices.size() || ib < b_indices.size()) {
    if (ib >= b_indices.size() ||
        (ia < a_indices.size() && a_indices[ia] < b_indices[ib])) {
      emit(a_values[ia]);
      ++ia;
    } else if (ia >= a_indices.size() || b_indices[ib] < a_indices[ia]) {
      emit(-b_values[ib]);
      ++ib;
    } else {
      emit(a_values[ia] - b_values[ib]);
      ++ia;
      ++ib;
    }
  }
  return Combine4(acc0, acc1, acc2, acc3);
}

namespace ref {

double Dot(std::span<const double> a, std::span<const double> b) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < a.size(); ++i) acc[i % 4] += a[i] * b[i];
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

double SquaredL2(std::span<const double> a, std::span<const double> b) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc[i % 4] += d * d;
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

double SquaredNorm(std::span<const double> v) { return Dot(v, v); }

void Axpy(double s, std::span<const double> x, std::span<double> y) {
  TRANSER_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += s * x[i];
}

void Fma(std::span<const double> a, std::span<const double> b,
         std::span<double> out) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  TRANSER_CHECK_EQ(a.size(), out.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] += a[i] * b[i];
}

void ScaleInPlace(std::span<double> v, double s) {
  for (size_t i = 0; i < v.size(); ++i) v[i] *= s;
}

void AddInPlace(std::span<double> a, std::span<const double> b) {
  TRANSER_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void PairwiseSquaredL2(const double* a, size_t a_rows, const double* a_norms,
                       const double* b, size_t b_rows, const double* b_norms,
                       size_t dims, double* out) {
  for (size_t i = 0; i < a_rows; ++i) {
    for (size_t j = 0; j < b_rows; ++j) {
      const double dot = Dot(std::span<const double>(a + i * dims, dims),
                             std::span<const double>(b + j * dims, dims));
      const double d = (a_norms[i] + b_norms[j]) - 2.0 * dot;
      out[i * b_rows + j] = d < 0.0 ? 0.0 : d;
    }
  }
}

double SparseDenseDot(std::span<const uint32_t> indices,
                      std::span<const double> values,
                      std::span<const double> dense) {
  TRANSER_CHECK_EQ(indices.size(), values.size());
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t k = 0; k < indices.size(); ++k) {
    acc[k % 4] += values[k] * dense[indices[k]];
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

double SparseDot(std::span<const uint32_t> a_indices,
                 std::span<const double> a_values,
                 std::span<const uint32_t> b_indices,
                 std::span<const double> b_values) {
  TRANSER_CHECK_EQ(a_indices.size(), a_values.size());
  TRANSER_CHECK_EQ(b_indices.size(), b_values.size());
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t ia = 0, ib = 0, t = 0;
  while (ia < a_indices.size() && ib < b_indices.size()) {
    if (a_indices[ia] < b_indices[ib]) {
      ++ia;
    } else if (b_indices[ib] < a_indices[ia]) {
      ++ib;
    } else {
      acc[t % 4] += a_values[ia] * b_values[ib];
      ++t;
      ++ia;
      ++ib;
    }
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void SparseAxpy(double s, std::span<const uint32_t> indices,
                std::span<const double> values, std::span<double> y) {
  TRANSER_CHECK_EQ(indices.size(), values.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    y[indices[k]] += s * values[k];
  }
}

double SparseSquaredL2(std::span<const uint32_t> a_indices,
                       std::span<const double> a_values,
                       std::span<const uint32_t> b_indices,
                       std::span<const double> b_values) {
  TRANSER_CHECK_EQ(a_indices.size(), a_values.size());
  TRANSER_CHECK_EQ(b_indices.size(), b_values.size());
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t ia = 0, ib = 0, t = 0;
  while (ia < a_indices.size() || ib < b_indices.size()) {
    double d = 0.0;
    if (ib >= b_indices.size() ||
        (ia < a_indices.size() && a_indices[ia] < b_indices[ib])) {
      d = a_values[ia];
      ++ia;
    } else if (ia >= a_indices.size() || b_indices[ib] < a_indices[ia]) {
      d = -b_values[ib];
      ++ib;
    } else {
      d = a_values[ia] - b_values[ib];
      ++ia;
      ++ib;
    }
    acc[t % 4] += d * d;
    ++t;
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

}  // namespace ref

namespace {

/// xorshift-based deterministic fill for the self-check battery (no
/// dependency on util/random, which may itself evolve).
void FillDeterministic(double* p, size_t n, uint64_t seed) {
  uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    // Values in roughly [-1, 1] with full mantissa entropy.
    p[i] = static_cast<double>(static_cast<int64_t>(s >> 11)) / (1ull << 52);
  }
}

bool BitsEqual(double a, double b) {
  // Bit comparison, so NaN == NaN and -0.0 != +0.0 are judged exactly.
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

Status SelfCheck() {
  // Sizes 0..67 cover every remainder of the 4-lane unroll plus the tile
  // edges of the pairwise kernel; the +1/+2/+3 sub-span offsets exercise
  // misaligned starts.
  std::vector<double> xs(96), ys(96), scratch_a(96), scratch_b(96);
  for (size_t n = 0; n <= 67; ++n) {
    for (size_t offset = 0; offset < 4; ++offset) {
      FillDeterministic(xs.data(), n + offset, 1000 + n);
      FillDeterministic(ys.data(), n + offset, 2000 + n);
      const std::span<const double> a(xs.data() + offset, n);
      const std::span<const double> b(ys.data() + offset, n);
      if (!BitsEqual(Dot(a, b), ref::Dot(a, b))) {
        return Status::InvalidArgument(
            StrFormat("kernel Dot diverges from reference at n=%zu off=%zu",
                      n, offset));
      }
      if (!BitsEqual(SquaredL2(a, b), ref::SquaredL2(a, b))) {
        return Status::InvalidArgument(StrFormat(
            "kernel SquaredL2 diverges from reference at n=%zu off=%zu", n,
            offset));
      }
      if (!BitsEqual(SquaredNorm(a), ref::SquaredNorm(a))) {
        return Status::InvalidArgument(StrFormat(
            "kernel SquaredNorm diverges from reference at n=%zu off=%zu", n,
            offset));
      }
      scratch_a.assign(xs.begin(), xs.end());
      scratch_b.assign(xs.begin(), xs.end());
      Axpy(0.37, b, std::span<double>(scratch_a.data() + offset, n));
      ref::Axpy(0.37, b, std::span<double>(scratch_b.data() + offset, n));
      for (size_t i = 0; i < n + offset; ++i) {
        if (!BitsEqual(scratch_a[i], scratch_b[i])) {
          return Status::InvalidArgument(StrFormat(
              "kernel Axpy diverges from reference at n=%zu off=%zu", n,
              offset));
        }
      }
      scratch_a.assign(ys.begin(), ys.end());
      scratch_b.assign(ys.begin(), ys.end());
      Fma(a, b, std::span<double>(scratch_a.data() + offset, n));
      ref::Fma(a, b, std::span<double>(scratch_b.data() + offset, n));
      for (size_t i = 0; i < n + offset; ++i) {
        if (!BitsEqual(scratch_a[i], scratch_b[i])) {
          return Status::InvalidArgument(StrFormat(
              "kernel Fma diverges from reference at n=%zu off=%zu", n,
              offset));
        }
      }
    }
  }

  // Pairwise tile shapes straddling both tile dimensions.
  for (const auto [a_rows, b_rows, dims] :
       {std::array<size_t, 3>{1, 1, 1}, std::array<size_t, 3>{3, 5, 7},
        std::array<size_t, 3>{9, 65, 4}, std::array<size_t, 3>{17, 130, 11}}) {
    std::vector<double> a(a_rows * dims), b(b_rows * dims);
    FillDeterministic(a.data(), a.size(), 31 * a_rows + dims);
    FillDeterministic(b.data(), b.size(), 57 * b_rows + dims);
    std::vector<double> a_norms(a_rows), b_norms(b_rows);
    SquaredNorms(a.data(), a_rows, dims, a_norms.data());
    SquaredNorms(b.data(), b_rows, dims, b_norms.data());
    std::vector<double> tiled(a_rows * b_rows), naive(a_rows * b_rows);
    PairwiseSquaredL2(a.data(), a_rows, a_norms.data(), b.data(), b_rows,
                      b_norms.data(), dims, tiled.data());
    ref::PairwiseSquaredL2(a.data(), a_rows, a_norms.data(), b.data(), b_rows,
                           b_norms.data(), dims, naive.data());
    for (size_t i = 0; i < tiled.size(); ++i) {
      if (!BitsEqual(tiled[i], naive[i])) {
        return Status::InvalidArgument(StrFormat(
            "tiled PairwiseSquaredL2 diverges from reference at "
            "%zux%zu d=%zu entry %zu",
            a_rows, b_rows, dims, i));
      }
    }
  }

  // Sparse battery. For each size: a *full* CSR row (every column
  // stored) must reproduce the dense kernels bit for bit — the
  // cross-representation contract — and deterministically culled rows
  // must match the scalar references over the merge walks.
  for (size_t n = 0; n <= 67; ++n) {
    FillDeterministic(xs.data(), n, 3000 + n);
    FillDeterministic(ys.data(), n, 4000 + n);
    const std::span<const double> a(xs.data(), n);
    const std::span<const double> b(ys.data(), n);
    std::vector<uint32_t> full_idx(n);
    for (size_t i = 0; i < n; ++i) full_idx[i] = static_cast<uint32_t>(i);
    std::vector<uint32_t> a_idx, b_idx;
    std::vector<double> a_val, b_val;
    for (size_t i = 0; i < n; ++i) {
      // Keep ~2/3 of the entries of each side, on disjoint-ish patterns.
      if ((i * 2654435761u + n) % 3 != 0) {
        a_idx.push_back(static_cast<uint32_t>(i));
        a_val.push_back(xs[i]);
      }
      if ((i * 40503u + n) % 3 != 1) {
        b_idx.push_back(static_cast<uint32_t>(i));
        b_val.push_back(ys[i]);
      }
    }

    if (!BitsEqual(SparseDenseDot(full_idx, a, b), Dot(a, b)) ||
        !BitsEqual(SparseDenseDot(a_idx, a_val, b),
                   ref::SparseDenseDot(a_idx, a_val, b))) {
      return Status::InvalidArgument(StrFormat(
          "kernel SparseDenseDot diverges from reference at n=%zu", n));
    }
    if (!BitsEqual(SparseDot(full_idx, a, full_idx, b),
                   ref::SparseDot(full_idx, a, full_idx, b)) ||
        !BitsEqual(SparseDot(a_idx, a_val, b_idx, b_val),
                   ref::SparseDot(a_idx, a_val, b_idx, b_val))) {
      return Status::InvalidArgument(
          StrFormat("kernel SparseDot diverges from reference at n=%zu", n));
    }
    if (!BitsEqual(SparseSquaredL2(full_idx, a, full_idx, b),
                   SquaredL2(a, b)) ||
        !BitsEqual(SparseSquaredL2(a_idx, a_val, b_idx, b_val),
                   ref::SparseSquaredL2(a_idx, a_val, b_idx, b_val))) {
      return Status::InvalidArgument(StrFormat(
          "kernel SparseSquaredL2 diverges from reference at n=%zu", n));
    }
    scratch_a.assign(ys.begin(), ys.end());
    scratch_b.assign(ys.begin(), ys.end());
    SparseAxpy(0.37, a_idx, a_val, std::span<double>(scratch_a.data(), n));
    ref::SparseAxpy(0.37, a_idx, a_val,
                    std::span<double>(scratch_b.data(), n));
    for (size_t i = 0; i < n; ++i) {
      if (!BitsEqual(scratch_a[i], scratch_b[i])) {
        return Status::InvalidArgument(StrFormat(
            "kernel SparseAxpy diverges from reference at n=%zu", n));
      }
    }
  }
  return Status::OK();
}

}  // namespace kernels
}  // namespace transer

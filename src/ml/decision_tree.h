#ifndef TRANSER_ML_DECISION_TREE_H_
#define TRANSER_ML_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace transer {

/// \brief Hyper-parameters for the CART decision tree.
struct DecisionTreeOptions {
  int max_depth = 12;
  size_t min_samples_split = 4;
  double min_impurity_decrease = 1e-7;
  /// Features considered per split: 0 = all; otherwise a random subset of
  /// this size (used by the random forest).
  size_t max_features = 0;
  uint64_t seed = 3;
};

/// \brief CART binary decision tree with weighted Gini impurity splits.
/// Leaf probabilities are the raw (weighted) match fraction, so pure
/// leaves report exactly 0 or 1 — matching sklearn's behaviour, which the
/// paper's t_p = 0.99 pseudo-label confidence threshold presumes.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {})
      : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<double>& weights) override;
  using Classifier::Fit;

  double PredictProba(std::span<const double> features) const override;

  std::string name() const override { return "decision_tree"; }

  Status SaveState(artifact::Encoder* out) const override;
  Status LoadState(artifact::Decoder* in) override;

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t node_count() const { return nodes_.size(); }

  /// Depth of the fitted tree.
  size_t Depth() const;

 private:
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;
    ptrdiff_t left = -1;
    ptrdiff_t right = -1;
    double match_probability = 0.5;
  };

  /// Recursively grows the subtree over indices[begin, end); returns the
  /// new node's index. Uses rng_ to draw per-node feature subsets.
  ptrdiff_t Grow(const Matrix& x, const std::vector<int>& y,
                 const std::vector<double>& w, std::vector<size_t>* indices,
                 size_t begin, size_t end, int depth);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  ptrdiff_t root_ = -1;
  size_t num_features_ = 0;
  uint64_t rng_state_ = 0;  ///< per-Fit stream for feature subsets
};

}  // namespace transer

#endif  // TRANSER_ML_DECISION_TREE_H_

#include "knn/neighbourhood.h"

#include <span>

#include "linalg/kernels.h"

namespace transer {

void NeighbourhoodCentroidInto(const Matrix& points,
                               const std::vector<Neighbour>& neighbours,
                               std::vector<double>* centroid) {
  centroid->assign(points.cols(), 0.0);
  if (neighbours.empty()) return;
  for (const auto& nb : neighbours) {
    kernels::AddInPlace(
        *centroid,
        std::span<const double>(points.Row(nb.index), points.cols()));
  }
  kernels::ScaleInPlace(
      *centroid, 1.0 / static_cast<double>(neighbours.size()));
}

}  // namespace transer

#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace transer {

namespace {

// Parses raw CSV text into rows of fields, honouring quoting.
Result<std::vector<std::vector<std::string>>> ParseRows(
    const std::string& content) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "quote appearing mid-field at offset " + std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

}  // namespace

Result<CsvTable> Csv::Parse(const std::string& content, bool has_header) {
  auto rows = ParseRows(content);
  if (!rows.ok()) return rows.status();
  CsvTable table;
  auto& parsed = rows.value();
  size_t start = 0;
  if (has_header && !parsed.empty()) {
    table.header = std::move(parsed[0]);
    start = 1;
  }
  for (size_t i = start; i < parsed.size(); ++i) {
    table.rows.push_back(std::move(parsed[i]));
  }
  return table;
}

Result<CsvTable> Csv::ReadFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), has_header);
}

std::string Csv::EscapeField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string Csv::Serialize(const CsvTable& table) {
  std::ostringstream out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeField(row[i]);
    }
    out << '\n';
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out.str();
}

Status Csv::WriteFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << Serialize(table);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace transer

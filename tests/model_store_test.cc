// Tests for the crash-safe model artifact store: bit-identical
// round-trips for every classifier family, integrity rejection of
// truncated / bit-flipped / re-stamped files, and the TransER
// warm-start / serve / fall-back-to-retraining semantics.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/transer.h"
#include "data/feature_space_generator.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/knn_classifier.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/model_store.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/scaler.h"
#include "ml/threshold_classifier.h"
#include "testing/fault_injection.h"
#include "util/artifact_io.h"
#include "util/random.h"

namespace transer {
namespace {

const std::vector<std::string> kSchema = {"jaro", "jaccard", "trigram",
                                          "exact"};

/// Two-Gaussian binary problem (same shape as ml_test's blobs).
struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs MakeBlobs(size_t n_per_class, size_t dims, double separation,
                uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.x = Matrix(2 * n_per_class, dims);
  blobs.y.resize(2 * n_per_class);
  for (size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    blobs.y[i] = label;
    const double center = label == 0 ? 0.0 : separation;
    for (size_t d = 0; d < dims; ++d) {
      blobs.x(i, d) = rng.Gaussian(center, 1.0);
    }
  }
  return blobs;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------- Round trips: every shipped classifier family ----------

using MakeFn = std::unique_ptr<Classifier> (*)();

std::unique_ptr<Classifier> MakeDt() {
  return std::make_unique<DecisionTree>();
}
std::unique_ptr<Classifier> MakeRf() {
  RandomForestOptions options;
  options.num_trees = 8;
  return std::make_unique<RandomForest>(options);
}
std::unique_ptr<Classifier> MakeGb() {
  return std::make_unique<GradientBoosting>();
}
std::unique_ptr<Classifier> MakeLr() {
  return std::make_unique<LogisticRegression>();
}
std::unique_ptr<Classifier> MakeSvm() {
  return std::make_unique<LinearSvm>();
}
std::unique_ptr<Classifier> MakeNb() {
  return std::make_unique<GaussianNaiveBayes>();
}
std::unique_ptr<Classifier> MakeKnn() {
  return std::make_unique<KnnClassifier>();
}
std::unique_ptr<Classifier> MakeMlp() { return std::make_unique<Mlp>(); }
std::unique_ptr<Classifier> MakeThreshold() {
  return std::make_unique<ThresholdClassifier>();
}

class ModelRoundTripTest : public ::testing::TestWithParam<MakeFn> {};

TEST_P(ModelRoundTripTest, SaveLoadPredictBitIdentical) {
  const Blobs train = MakeBlobs(80, kSchema.size(), 3.0, 71);
  const Blobs test = MakeBlobs(40, kSchema.size(), 3.0, 72);
  auto original = GetParam()();
  original->Fit(train.x, train.y);

  const std::string path =
      TempPath("roundtrip_" + original->name() + ".tera");
  ASSERT_TRUE(SaveClassifierArtifact(*original, kSchema, path).ok());

  auto loaded = LoadClassifierArtifact(path, kSchema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().name, original->name());
  EXPECT_EQ(loaded.value().feature_names, kSchema);

  // Bit-identical probabilities, at serial and at 8-lane scoring: the
  // loaded model must be indistinguishable from the one that was saved.
  const std::vector<double> want = original->PredictProbaAll(test.x, 1);
  const std::vector<double> got_1 =
      loaded.value().classifier->PredictProbaAll(test.x, 1);
  const std::vector<double> got_8 =
      loaded.value().classifier->PredictProbaAll(test.x, 8);
  ASSERT_EQ(want.size(), got_1.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got_1[i]) << original->name() << " row " << i;
    EXPECT_EQ(want[i], got_8[i]) << original->name() << " row " << i;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelRoundTripTest,
                         ::testing::Values(MakeDt, MakeRf, MakeGb, MakeLr,
                                           MakeSvm, MakeNb, MakeKnn,
                                           MakeMlp, MakeThreshold));

TEST(ModelStoreTest, ScalerRoundTripIsExact) {
  const Blobs train = MakeBlobs(60, kSchema.size(), 2.0, 73);
  StandardScaler scaler;
  scaler.Fit(train.x);

  const std::string path = TempPath("scaler_roundtrip.tera");
  ASSERT_TRUE(SaveScalerArtifact(scaler, kSchema, path).ok());
  auto loaded = LoadScalerArtifact(path, kSchema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().means(), scaler.means());
  EXPECT_EQ(loaded.value().stddevs(), scaler.stddevs());
  std::remove(path.c_str());
}

TEST(ModelStoreTest, UnsaveableClassifierRefusesCleanly) {
  // A user subclass without SaveState must be refused, not written as an
  // empty artifact.
  class Custom : public Classifier {
   public:
    void Fit(const Matrix&, const std::vector<int>&,
             const std::vector<double>&) override {}
    double PredictProba(std::span<const double>) const override {
      return 0.5;
    }
    std::string name() const override { return "custom"; }
  };
  Custom custom;
  const std::string path = TempPath("custom.tera");
  const Status status = SaveClassifierArtifact(custom, kSchema, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::vector<uint8_t> bytes;
  EXPECT_FALSE(fault::ReadFileBytes(path, &bytes).ok());
}

// ---------- Rejection: missing, mismatched, tampered ----------

TEST(ModelStoreTest, MissingFileIsNotFound) {
  auto loaded = LoadClassifierArtifact(TempPath("nonexistent.tera"), {});
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ModelStoreTest, SchemaMismatchIsFailedPrecondition) {
  const Blobs train = MakeBlobs(40, kSchema.size(), 3.0, 74);
  LogisticRegression model;
  model.Fit(train.x, train.y);
  const std::string path = TempPath("schema_mismatch.tera");
  ASSERT_TRUE(SaveClassifierArtifact(model, kSchema, path).ok());

  auto mismatched =
      LoadClassifierArtifact(path, {"different", "schema", "here", "now"});
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);

  // An empty expected schema skips the check (caller takes the artifact's
  // own binding).
  EXPECT_TRUE(LoadClassifierArtifact(path, {}).ok());
  std::remove(path.c_str());
}

TEST(ModelStoreTest, KindMismatchIsFailedPrecondition) {
  const Blobs train = MakeBlobs(40, kSchema.size(), 2.0, 75);
  StandardScaler scaler;
  scaler.Fit(train.x);
  const std::string path = TempPath("kind_mismatch.tera");
  ASSERT_TRUE(SaveScalerArtifact(scaler, kSchema, path).ok());
  auto loaded = LoadClassifierArtifact(path, kSchema);
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ModelStoreTest, FutureFormatVersionIsFailedPrecondition) {
  const Blobs train = MakeBlobs(40, kSchema.size(), 3.0, 76);
  LogisticRegression model;
  model.Fit(train.x, train.y);
  const std::string path = TempPath("future_version.tera");
  ASSERT_TRUE(SaveClassifierArtifact(model, kSchema, path).ok());

  // Bump the version field (right after the 4-byte magic) and re-stamp
  // the whole-file trailer CRC so only the version check can object.
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(fault::ReadFileBytes(path, &bytes).ok());
  ASSERT_GT(bytes.size(), 8u);
  bytes[4] = static_cast<uint8_t>(artifact::kFormatVersion + 1);
  const uint32_t crc = artifact::Crc32(bytes.data(), bytes.size() - 4);
  for (int b = 0; b < 4; ++b) {
    bytes[bytes.size() - 4 + b] =
        static_cast<uint8_t>((crc >> (8 * b)) & 0xFF);
  }
  ASSERT_TRUE(fault::WriteFileBytes(path, bytes).ok());

  auto loaded = LoadClassifierArtifact(path, kSchema);
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ModelStoreTest, EveryTruncationIsRejectedCleanly) {
  const Blobs train = MakeBlobs(30, kSchema.size(), 3.0, 77);
  ThresholdClassifier model;  // smallest artifact -> every prefix testable
  model.Fit(train.x, train.y);
  const std::string path = TempPath("truncation.tera");
  ASSERT_TRUE(SaveClassifierArtifact(model, kSchema, path).ok());
  std::vector<uint8_t> pristine;
  ASSERT_TRUE(fault::ReadFileBytes(path, &pristine).ok());

  const std::string torn = TempPath("truncation_torn.tera");
  for (size_t keep = 0; keep < pristine.size(); ++keep) {
    std::vector<uint8_t> prefix(pristine.begin(), pristine.begin() + keep);
    ASSERT_TRUE(fault::WriteFileBytes(torn, prefix).ok());
    auto loaded = LoadClassifierArtifact(torn, kSchema);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes accepted";
  }
  std::remove(path.c_str());
  std::remove(torn.c_str());
}

TEST(ModelStoreTest, EveryByteFlipIsRejectedCleanly) {
  const Blobs train = MakeBlobs(30, kSchema.size(), 3.0, 78);
  ThresholdClassifier model;
  model.Fit(train.x, train.y);
  const std::string path = TempPath("byteflip.tera");
  ASSERT_TRUE(SaveClassifierArtifact(model, kSchema, path).ok());
  std::vector<uint8_t> pristine;
  ASSERT_TRUE(fault::ReadFileBytes(path, &pristine).ok());

  // A flipped byte anywhere — magic, header, payload, CRC trailer —
  // must yield a clean non-OK load: CRC-32 catches any 8-bit burst.
  const std::string mutated = TempPath("byteflip_mut.tera");
  for (size_t offset = 0; offset < pristine.size(); ++offset) {
    ASSERT_TRUE(fault::WriteFileBytes(mutated, pristine).ok());
    ASSERT_TRUE(fault::FlipFileByte(mutated, offset).ok());
    auto loaded = LoadClassifierArtifact(mutated, kSchema);
    EXPECT_FALSE(loaded.ok()) << "flip at offset " << offset << " accepted";
  }
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

// ---------- TransER pipeline snapshots ----------

TransERPipelineState MakePipelineState(uint64_t seed) {
  const Blobs train = MakeBlobs(50, kSchema.size(), 3.0, seed);
  TransERPipelineState state;
  state.feature_names = kSchema;
  state.seed = seed;
  state.source_rows = 100;
  state.target_rows = 6;
  state.selected_indices = {0, 7, 42, 99};
  state.pseudo_labels = {0, 1, 1, 0, 1, 0};
  state.pseudo_confidences = {0.1, 0.99, 0.8, 0.05, 1.0, 0.0};
  auto u = std::make_unique<LogisticRegression>();
  u->Fit(train.x, train.y);
  state.classifier_name = u->name();
  state.classifier_u = std::move(u);
  return state;
}

TEST(PipelineSnapshotTest, RoundTripPreservesEverything) {
  TransERPipelineState state = MakePipelineState(81);
  auto v = std::make_unique<LogisticRegression>();
  const Blobs target_train = MakeBlobs(50, kSchema.size(), 2.0, 82);
  v->Fit(target_train.x, target_train.y);
  state.classifier_v = std::move(v);

  const std::string path = TempPath("pipeline_roundtrip.tera");
  ASSERT_TRUE(SaveTransERPipelineState(state, path).ok());
  auto loaded = LoadTransERPipelineState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TransERPipelineState& got = loaded.value();
  EXPECT_EQ(got.feature_names, state.feature_names);
  EXPECT_EQ(got.seed, state.seed);
  EXPECT_EQ(got.source_rows, state.source_rows);
  EXPECT_EQ(got.target_rows, state.target_rows);
  EXPECT_EQ(got.selected_indices, state.selected_indices);
  EXPECT_EQ(got.pseudo_labels, state.pseudo_labels);
  EXPECT_EQ(got.pseudo_confidences, state.pseudo_confidences);
  EXPECT_EQ(got.classifier_name, state.classifier_name);
  ASSERT_NE(got.classifier_u, nullptr);
  ASSERT_NE(got.classifier_v, nullptr);

  const Blobs probe = MakeBlobs(20, kSchema.size(), 3.0, 83);
  EXPECT_EQ(got.classifier_u->PredictProbaAll(probe.x, 1),
            state.classifier_u->PredictProbaAll(probe.x, 1));
  EXPECT_EQ(got.classifier_v->PredictProbaAll(probe.x, 1),
            state.classifier_v->PredictProbaAll(probe.x, 1));
  std::remove(path.c_str());
}

TEST(PipelineSnapshotTest, SnapshotWithoutTclLoadsWithNullV) {
  TransERPipelineState state = MakePipelineState(84);
  const std::string path = TempPath("pipeline_no_v.tera");
  ASSERT_TRUE(SaveTransERPipelineState(state, path).ok());
  auto loaded = LoadTransERPipelineState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded.value().classifier_u, nullptr);
  EXPECT_EQ(loaded.value().classifier_v, nullptr);
  std::remove(path.c_str());
}

TEST(PipelineSnapshotTest, InvalidStatesAreRefusedAtSaveTime) {
  TransERPipelineState no_u = MakePipelineState(85);
  no_u.classifier_u.reset();
  EXPECT_FALSE(
      SaveTransERPipelineState(no_u, TempPath("bad1.tera")).ok());

  TransERPipelineState short_labels = MakePipelineState(86);
  short_labels.pseudo_labels.pop_back();
  EXPECT_FALSE(
      SaveTransERPipelineState(short_labels, TempPath("bad2.tera")).ok());
}

TEST(PipelineSnapshotTest, EveryByteFlipOfSnapshotIsRejected) {
  TransERPipelineState state = MakePipelineState(87);
  const std::string path = TempPath("pipeline_fuzz.tera");
  ASSERT_TRUE(SaveTransERPipelineState(state, path).ok());
  std::vector<uint8_t> pristine;
  ASSERT_TRUE(fault::ReadFileBytes(path, &pristine).ok());

  const std::string mutated = TempPath("pipeline_fuzz_mut.tera");
  for (size_t offset = 0; offset < pristine.size(); ++offset) {
    ASSERT_TRUE(fault::WriteFileBytes(mutated, pristine).ok());
    ASSERT_TRUE(fault::FlipFileByte(mutated, offset).ok());
    auto loaded = LoadTransERPipelineState(mutated);
    EXPECT_FALSE(loaded.ok()) << "flip at offset " << offset << " accepted";
  }
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

// ---------- TransER warm start / serve / fall back ----------

struct TransferPair {
  FeatureMatrix source;
  FeatureMatrix target;
};

TransferPair MakePair(uint64_t seed) {
  FeatureSpaceGenerator generator({4, 40, seed});
  FeatureDomainSpec source;
  source.num_instances = 400;
  source.match_fraction = 0.3;
  source.seed = seed + 1;
  FeatureDomainSpec target = source;
  target.mode_shift = -0.04;
  target.seed = seed + 2;
  return {generator.Generate(source), generator.Generate(target)};
}

ClassifierFactory LrFactory() {
  return []() -> std::unique_ptr<Classifier> {
    return std::make_unique<LogisticRegression>();
  };
}

TEST(WarmStartTest, ServeAndResumeMatchColdRunExactly) {
  const TransferPair pair = MakePair(91);
  const std::string path = TempPath("warmstart.tera");
  std::remove(path.c_str());
  TransER transer;
  TransferRunOptions options;
  options.seed = 7;
  options.model_snapshot_path = path;

  // Cold run: trains everything, snapshots after GEN and after TCL.
  TransERReport cold_report;
  auto cold = transer.RunWithReport(pair.source,
                                    pair.target.WithoutLabels(),
                                    LrFactory(), options, &cold_report);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold_report.warm_started);

  // Second run finds the complete snapshot and serves from C^V without
  // training; predictions are bit-identical.
  TransERReport serve_report;
  auto served = transer.RunWithReport(pair.source,
                                      pair.target.WithoutLabels(),
                                      LrFactory(), options, &serve_report);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(serve_report.served_from_snapshot);
  EXPECT_TRUE(
      serve_report.diagnostics.HasKind(DegradationKind::kModelWarmStarted));
  EXPECT_EQ(cold.value(), served.value());

  // Strip C^V to emulate a crash between GEN and TCL: the next run
  // resumes at TCL from the stored pseudo labels and still reproduces
  // the cold predictions exactly (TCL re-seeds from the run seed).
  auto snapshot = LoadTransERPipelineState(path);
  ASSERT_TRUE(snapshot.ok());
  TransERPipelineState partial = std::move(snapshot).value();
  partial.classifier_v.reset();
  ASSERT_TRUE(SaveTransERPipelineState(partial, path).ok());

  TransERReport resume_report;
  auto resumed = transer.RunWithReport(pair.source,
                                       pair.target.WithoutLabels(),
                                       LrFactory(), options, &resume_report);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resume_report.warm_started);
  EXPECT_FALSE(resume_report.served_from_snapshot);
  EXPECT_EQ(cold.value(), resumed.value());
  std::remove(path.c_str());
}

TEST(WarmStartTest, IncompatibleSnapshotIsIgnoredWithEvent) {
  const TransferPair pair = MakePair(92);
  const std::string path = TempPath("warmstart_incompat.tera");
  std::remove(path.c_str());
  TransER transer;
  TransferRunOptions options;
  options.seed = 7;
  options.model_snapshot_path = path;

  TransERReport cold_report;
  auto cold = transer.RunWithReport(pair.source,
                                    pair.target.WithoutLabels(),
                                    LrFactory(), options, &cold_report);
  ASSERT_TRUE(cold.ok());

  // A different seed breaks the compatibility contract: the run must
  // retrain (recording the rejection) and match its own cold result.
  TransferRunOptions other_seed = options;
  other_seed.seed = 8;
  TransERReport report;
  auto rerun = transer.RunWithReport(pair.source,
                                     pair.target.WithoutLabels(),
                                     LrFactory(), other_seed, &report);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_FALSE(report.warm_started);
  EXPECT_TRUE(
      report.diagnostics.HasKind(DegradationKind::kModelArtifactRejected));
  std::remove(path.c_str());
}

TEST(WarmStartTest, CorruptSnapshotFallsBackToRetraining) {
  const TransferPair pair = MakePair(93);
  const std::string path = TempPath("warmstart_corrupt.tera");
  std::remove(path.c_str());
  TransER transer;
  TransferRunOptions options;
  options.seed = 11;

  // Reference run with no snapshotting at all.
  auto reference = transer.Run(pair.source, pair.target.WithoutLabels(),
                               LrFactory(), options);
  ASSERT_TRUE(reference.ok());

  // Cold run writes the snapshot; then a byte of it rots.
  options.model_snapshot_path = path;
  TransERReport cold_report;
  ASSERT_TRUE(transer
                  .RunWithReport(pair.source, pair.target.WithoutLabels(),
                                 LrFactory(), options, &cold_report)
                  .ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(fault::ReadFileBytes(path, &bytes).ok());
  ASSERT_TRUE(fault::FlipFileByte(path, bytes.size() / 2).ok());

  TransERReport report;
  auto recovered = transer.RunWithReport(pair.source,
                                         pair.target.WithoutLabels(),
                                         LrFactory(), options, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(report.warm_started);
  EXPECT_TRUE(
      report.diagnostics.HasKind(DegradationKind::kModelArtifactRejected));
  EXPECT_EQ(reference.value(), recovered.value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace transer

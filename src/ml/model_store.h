#ifndef TRANSER_ML_MODEL_STORE_H_
#define TRANSER_ML_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "knn/knn_backend.h"
#include "ml/classifier.h"
#include "ml/scaler.h"
#include "util/status.h"

namespace transer {

/// \file
/// Crash-safe persistence for trained models, built on util/artifact_io.
/// Every artifact is written atomically (temp + fsync + rename), carries
/// the feature-schema fingerprint it was trained against, and is CRC-
/// framed, so loads either succeed bit-exactly or fail with a clean
/// status — never a crash or a silent misprediction (DESIGN.md §8).

/// Artifact kinds written by this store.
inline constexpr char kClassifierArtifactKind[] = "classifier";
inline constexpr char kScalerArtifactKind[] = "scaler";
inline constexpr char kPipelineArtifactKind[] = "transer_pipeline";

/// Creates an untrained classifier of the family serialised under `name`
/// (the Classifier::name() string: "decision_tree", "random_forest",
/// "gradient_boosting", "logistic_regression", "linear_svm",
/// "naive_bayes", "knn", "mlp", "threshold"). Unknown names — artifacts
/// from a newer build, or crafted files — yield FailedPrecondition.
/// `knn`, when non-null, picks the index the "knn" family rebuilds on
/// LoadState (the backend is a host runtime choice, never part of the
/// artifact — see ml/knn_classifier.h); other families ignore it.
Result<std::unique_ptr<Classifier>> MakeClassifierByName(
    const std::string& name, const KnnBackendOptions* knn = nullptr);

/// \brief A classifier restored from an artifact, plus the identity it
/// was saved under.
struct LoadedClassifier {
  std::string name;                        ///< Classifier::name() family
  std::vector<std::string> feature_names;  ///< schema it was trained on
  std::unique_ptr<Classifier> classifier;
};

/// Saves `classifier` to `path` bound to the given feature schema.
/// Classifiers that do not implement SaveState (custom user subclasses)
/// yield FailedPrecondition and leave any existing file untouched.
Status SaveClassifierArtifact(const Classifier& classifier,
                              const std::vector<std::string>& feature_names,
                              const std::string& path);

/// Loads the classifier artifact at `path`. When `feature_names` is
/// non-empty its fingerprint must match the artifact's; a mismatch is
/// FailedPrecondition (the model was trained on a different schema).
/// Missing file -> NotFound; corruption -> InvalidArgument.
Result<LoadedClassifier> LoadClassifierArtifact(
    const std::string& path, const std::vector<std::string>& feature_names);

/// Saves / loads a fitted StandardScaler under the same contract.
Status SaveScalerArtifact(const StandardScaler& scaler,
                          const std::vector<std::string>& feature_names,
                          const std::string& path);
Result<StandardScaler> LoadScalerArtifact(
    const std::string& path, const std::vector<std::string>& feature_names);

/// \brief Snapshot of a TransER run after GEN (and optionally TCL):
/// everything needed to warm-start target training or serve predictions
/// without touching the source data again (Algorithm 1 state).
struct TransERPipelineState {
  std::vector<std::string> feature_names;  ///< target schema
  uint64_t seed = 0;                       ///< RunOptions seed of the run
  uint64_t source_rows = 0;                ///< pair count of the source
  uint64_t target_rows = 0;                ///< pair count of the target
  /// SEL output: indices of the transferred source instances.
  std::vector<uint64_t> selected_indices;
  /// GEN output, one entry per target row.
  std::vector<int> pseudo_labels;
  std::vector<double> pseudo_confidences;
  /// Optional domain profile: the per-feature mean of the target rows
  /// the snapshot was adapted to. The serving repository uses it as the
  /// SEL-style structural-similarity probe when an incoming domain's
  /// schema fingerprint matches no artifact exactly. Empty when absent
  /// (artifacts written before the profile section existed load fine
  /// and are simply ineligible for the probe); when non-empty it must
  /// have one entry per feature.
  std::vector<double> target_centroid;
  std::string classifier_name;  ///< family of both classifiers
  /// C^U, trained on the transferred source instances (always present in
  /// a valid snapshot).
  std::unique_ptr<Classifier> classifier_u;
  /// C^V, trained on pseudo-labelled target instances; null when the
  /// snapshot was taken before TCL finished.
  std::unique_ptr<Classifier> classifier_v;
};

/// Writes the snapshot atomically. Requires classifier_u to be set and
/// the per-target vectors to agree with target_rows.
Status SaveTransERPipelineState(const TransERPipelineState& state,
                                const std::string& path);

/// Reads and fully validates a snapshot: CRC-checked container, schema
/// fingerprint cross-checked against the stored names, label values in
/// {0, 1}, confidences in [0, 1], vector lengths consistent, and both
/// classifiers (when present) of the declared family. `knn`, when
/// non-null, picks the index a "knn"-family classifier rebuilds (see
/// MakeClassifierByName).
Result<TransERPipelineState> LoadTransERPipelineState(
    const std::string& path, const KnnBackendOptions* knn = nullptr);

}  // namespace transer

#endif  // TRANSER_ML_MODEL_STORE_H_

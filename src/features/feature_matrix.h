#ifndef TRANSER_FEATURES_FEATURE_MATRIX_H_
#define TRANSER_FEATURES_FEATURE_MATRIX_H_

#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/csv.h"
#include "util/diagnostics.h"
#include "util/status.h"
#include "util/validation.h"

namespace transer {

/// \brief A candidate record pair by row index into the two databases.
struct PairRef {
  size_t left_index = 0;
  size_t right_index = 0;
};

/// Class labels used throughout the library.
inline constexpr int kNonMatch = 0;
inline constexpr int kMatch = 1;
inline constexpr int kUnlabeled = -1;

/// \brief The instance store of the paper: one row (feature vector) per
/// compared record pair, each feature an attribute similarity in [0, 1],
/// plus the (possibly unknown) match label.
///
/// Both X^S (with labels) and X^T (labels hidden from the methods,
/// retained for evaluation) are FeatureMatrix objects.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  explicit FeatureMatrix(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Appends one instance. `features` must have num_features() entries;
  /// `label` is kMatch / kNonMatch / kUnlabeled.
  void Append(const std::vector<double>& features, int label,
              PairRef ref = {});

  /// Resizes to exactly `n` rows (new rows zero-featured and
  /// kUnlabeled), so parallel producers can fill disjoint row slots via
  /// MutableRow / set_label / set_pair without further allocation.
  void Resize(size_t n);

  /// Mutable view of row i; rows are disjoint, so concurrent writers to
  /// different rows need no synchronisation.
  std::span<double> MutableRow(size_t i) {
    return std::span<double>(data_.data() + i * num_features(),
                             num_features());
  }
  void set_label(size_t i, int label) { labels_[i] = label; }
  void set_pair(size_t i, PairRef ref) { pairs_[i] = ref; }

  /// Row accessors.
  std::span<const double> Row(size_t i) const {
    return std::span<const double>(data_.data() + i * num_features(),
                                   num_features());
  }
  std::vector<double> RowVector(size_t i) const {
    const auto row = Row(i);
    return std::vector<double>(row.begin(), row.end());
  }

  int label(size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }
  const PairRef& pair(size_t i) const { return pairs_[i]; }

  /// Copies the features into a dense Matrix (n x m).
  Matrix ToMatrix() const;

  /// Subset by row indices (features, labels and pair refs).
  FeatureMatrix Select(const std::vector<size_t>& rows) const;

  /// Returns a copy with every label replaced by kUnlabeled — how a
  /// target domain presents itself to a transfer method.
  FeatureMatrix WithoutLabels() const;

  /// Returns a copy with labels overridden by `labels` (size must match).
  FeatureMatrix WithLabels(const std::vector<int>& labels) const;

  /// Counts of kMatch / kNonMatch / kUnlabeled labels.
  size_t CountMatches() const;
  size_t CountNonMatches() const;
  size_t CountUnlabeled() const;

  /// Reserves storage for n instances.
  void Reserve(size_t n);

  /// Writes feature_name columns + label to CSV.
  Status ToCsvFile(const std::string& path) const;

  /// Reads a CSV produced by ToCsvFile (last column = label).
  static Result<FeatureMatrix> FromCsvFile(const std::string& path);

  /// \brief Row-tolerant ingestion controls for FromCsvFile.
  struct IngestOptions {
    /// kStrict: any bad row fails the load (the one-argument overload).
    /// kDropRows: rows with structural or value-level problems are
    /// skipped and reported. kClampValues: structurally unparseable
    /// rows are skipped, but value-level problems (non-finite features,
    /// out-of-domain labels) are repaired in place.
    RepairPolicy policy = RepairPolicy::kStrict;
    /// Maximum skipped rows before the whole load fails anyway.
    size_t max_bad_rows = 100;
  };

  /// \brief What tolerant ingestion did to the file.
  struct IngestReport {
    size_t rows_read = 0;     ///< data rows encountered (pre-skip)
    size_t rows_kept = 0;
    size_t rows_skipped = 0;
    size_t values_repaired = 0;
    std::vector<CsvRowError> errors;  ///< capped at max_bad_rows entries
    std::string Summary() const;
  };

  /// FromCsvFile with skip-and-report semantics; `report` (optional)
  /// receives per-row errors and repair counts. `diagnostics` (optional)
  /// receives structured kRowsDropped / kValuesRepaired events carrying
  /// the affected-row counts so callers can audit degraded loads without
  /// parsing the report text.
  static Result<FeatureMatrix> FromCsvFile(const std::string& path,
                                           const IngestOptions& options,
                                           IngestReport* report = nullptr,
                                           RunDiagnostics* diagnostics = nullptr);

  /// Scans for non-finite values, out-of-domain labels and constant
  /// columns, applying `options.policy`: kStrict returns an error on the
  /// first violation class found; kDropRows returns a copy without the
  /// offending rows; kClampValues returns a copy with NaN -> 0, ±Inf
  /// (and, when `check_unit_interval`, out-of-range values) clamped
  /// into [0, 1] and bad labels replaced by kUnlabeled. `report` and
  /// `diagnostics` (both optional) receive the findings.
  Result<FeatureMatrix> Validate(const ValidationOptions& options,
                                 ValidationReport* report = nullptr,
                                 RunDiagnostics* diagnostics = nullptr) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> data_;  ///< row-major, size() * num_features()
  std::vector<int> labels_;
  std::vector<PairRef> pairs_;
};

/// Checks that `source` and `target` form a usable transfer pair: same
/// feature dimensionality, non-empty domains, and a source carrying both
/// classes (a single-class source cannot train a binary classifier).
Status ValidateDomainPair(const FeatureMatrix& source,
                          const FeatureMatrix& target);

}  // namespace transer

#endif  // TRANSER_FEATURES_FEATURE_MATRIX_H_

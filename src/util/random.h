#ifndef TRANSER_UTIL_RANDOM_H_
#define TRANSER_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace transer {

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// All stochastic components in the library (data generators, samplers,
/// stochastic trainers) take an explicit Rng so experiments are exactly
/// reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a uniform draw from [0, n). Requires n > 0.
  uint64_t NextUint64Below(uint64_t n);

  /// Returns a uniform draw from [0, 1).
  double NextDouble();

  /// Returns a uniform draw from [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a standard normal draw (Box-Muller, cached spare).
  double NextGaussian();

  /// Returns a normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns a uniform integer from [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64Below(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) without replacement.
  /// Requires count <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Draws an index from a discrete distribution proportional to `weights`.
  /// Non-positive total weight falls back to uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Creates an independent generator for a subtask; deterministic in
  /// (current state, stream_id).
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace transer

#endif  // TRANSER_UTIL_RANDOM_H_

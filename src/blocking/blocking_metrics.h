#ifndef TRANSER_BLOCKING_BLOCKING_METRICS_H_
#define TRANSER_BLOCKING_BLOCKING_METRICS_H_

#include <vector>

#include "data/dataset.h"
#include "features/feature_matrix.h"

namespace transer {

/// \brief Standard blocking-quality measures [Christen 2012; Papadakis et
/// al. 2020] over a candidate-pair set.
struct BlockingQuality {
  size_t candidate_pairs = 0;
  size_t true_matches_total = 0;
  size_t true_matches_in_candidates = 0;
  size_t comparison_space = 0;  ///< |left| * |right|

  /// Pairs completeness: fraction of true matches surviving blocking.
  double PairsCompleteness() const {
    return true_matches_total == 0
               ? 0.0
               : static_cast<double>(true_matches_in_candidates) /
                     static_cast<double>(true_matches_total);
  }

  /// Reduction ratio: 1 - candidates / full comparison space.
  double ReductionRatio() const {
    return comparison_space == 0
               ? 0.0
               : 1.0 - static_cast<double>(candidate_pairs) /
                           static_cast<double>(comparison_space);
  }

  /// Pairs quality: fraction of candidates that are true matches.
  double PairsQuality() const {
    return candidate_pairs == 0
               ? 0.0
               : static_cast<double>(true_matches_in_candidates) /
                     static_cast<double>(candidate_pairs);
  }
};

/// Evaluates a blocker's candidate pairs against the ground truth encoded
/// in the records' entity ids.
BlockingQuality EvaluateBlocking(const LinkageProblem& problem,
                                 const std::vector<PairRef>& pairs);

}  // namespace transer

#endif  // TRANSER_BLOCKING_BLOCKING_METRICS_H_

#ifndef TRANSER_UTIL_JOURNAL_IO_H_
#define TRANSER_UTIL_JOURNAL_IO_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace transer {
namespace journal {

/// \file
/// The one torn-tail recovery discipline every append-only journal in
/// the library shares (DESIGN.md §11). A journal on disk is always a
/// well-formed prefix of what was written: a crash mid-append can at
/// worst leave a damaged *trailing* entry, which recovery drops and
/// truncates away. Damage anywhere *before* the tail is not consistent
/// with the append protocol — it means the file was edited or belongs
/// to someone else — and is an error rather than silent data loss.
/// Both the line-based sweep checkpoint (core/sweep_checkpoint) and the
/// binary CRC-framed ingest WAL (stream/ingest_journal) recover through
/// the helpers here, so the policy cannot drift between them.

// ---------------------------------------------------------------------
// Line journals (one entry per text line; the entry format supplies its
// own malformation check).

/// \brief What line recovery found at `path`.
struct LineRecovery {
  std::vector<std::string> lines;  ///< well-formed entries, file order
  size_t total_lines = 0;          ///< non-blank lines present pre-drop
  bool tail_dropped = false;       ///< trailing corrupt line was dropped
};

/// Reads the line journal at `path` and validates every non-blank line
/// with `validate` (non-OK = malformed). A missing file is an empty
/// journal. Only the final line may be malformed (dropped and reported
/// via `tail_dropped`); a malformed line with well-formed lines after
/// it fails with FailedPrecondition. The file itself is not modified —
/// callers persist the truncation by rewriting their journal.
Result<LineRecovery> RecoverJournalLines(
    const std::string& path,
    const std::function<Status(const std::string&)>& validate);

// ---------------------------------------------------------------------
// Binary CRC-framed journals.

/// \brief Frame-journal tuning knobs.
struct FrameJournalOptions {
  /// Frames larger than this are rejected on write and treated as
  /// corruption on read (a flipped length field can claim anything).
  uint32_t max_frame_bytes = 16u << 20;
};

/// \brief What FrameJournal::Open recovered from an existing file.
struct FrameRecovery {
  std::vector<std::vector<uint8_t>> frames;  ///< payloads, append order
  bool tail_dropped = false;  ///< torn/corrupt tail truncated away
  size_t dropped_bytes = 0;   ///< bytes removed by the truncation
};

/// \brief Append-only write-ahead journal of CRC-framed binary records.
///
/// Layout: a 12-byte header — 4-byte flavour magic, u32 format version,
/// u32 CRC-32 of the first 8 bytes — then zero or more frames, each
/// `u32 payload length | payload | u32 CRC-32(payload)`. All integers
/// little-endian (the artifact_io Encoder discipline).
///
/// Durability contract: Append returns OK only after the frame is
/// written *and* fsync'd, so an acknowledged record survives SIGKILL
/// and power loss. A crash mid-append leaves a torn tail that the next
/// Open truncates back to the last durable frame; a complete-but-CRC-
/// corrupt frame *before* the end of the file fails Open instead (see
/// the file comment). A fresh journal is created via write-temp-fsync-
/// rename, so a crash during creation never leaves a half header.
///
/// Not thread-safe: one writer owns a journal (the ingest loop is
/// single-writer by design; determinism comes from journal order).
class FrameJournal {
 public:
  FrameJournal() = default;
  ~FrameJournal();
  FrameJournal(FrameJournal&& other) noexcept;
  FrameJournal& operator=(FrameJournal&& other) noexcept;
  FrameJournal(const FrameJournal&) = delete;
  FrameJournal& operator=(const FrameJournal&) = delete;

  /// Opens (creating if absent) the journal at `path` with the given
  /// 4-byte flavour magic. Existing frames are recovered into
  /// `recovery` (optional); a torn tail is truncated on disk before
  /// returning. Wrong magic -> InvalidArgument; future format version
  /// -> FailedPrecondition; mid-file corruption -> FailedPrecondition.
  static Result<FrameJournal> Open(const std::string& path,
                                   const char magic[4],
                                   FrameRecovery* recovery = nullptr,
                                   const FrameJournalOptions& options = {});

  /// Appends one frame durably (write + fsync) before returning. On
  /// any failure the file is truncated back to the previous durable
  /// prefix (best effort) and the journal remains usable.
  Status Append(std::span<const uint8_t> payload);

  /// Atomically replaces the journal at `path` with a fresh header plus
  /// `frames` (write-temp-fsync-rename). The compaction primitive: the
  /// caller re-Opens afterwards. Any open FrameJournal on `path` must
  /// be closed first.
  static Status Rewrite(const std::string& path, const char magic[4],
                        const std::vector<std::vector<uint8_t>>& frames,
                        const FrameJournalOptions& options = {});

  /// Closes the file descriptor (idempotent; the destructor closes too).
  void Close();

  bool is_open() const { return fd_ >= 0; }
  size_t frame_count() const { return frame_count_; }
  size_t size_bytes() const { return write_offset_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  FrameJournalOptions options_;
  int fd_ = -1;
  size_t write_offset_ = 0;  ///< end of the durable well-formed prefix
  size_t frame_count_ = 0;
};

}  // namespace journal
}  // namespace transer

#endif  // TRANSER_UTIL_JOURNAL_IO_H_

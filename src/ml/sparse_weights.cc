#include "ml/sparse_weights.h"

#include <cmath>

#include "util/string_util.h"

namespace transer {

size_t CountAboveEpsilon(std::span<const double> w, double epsilon) {
  size_t count = 0;
  for (double v : w) {
    if (std::fabs(v) >= epsilon) ++count;
  }
  return count;
}

void EncodeWeightVector(artifact::Encoder* out, const std::vector<double>& w,
                        double cull_epsilon) {
  if (cull_epsilon < 0.0) {
    out->PutDoubleVec(w);
    return;
  }
  out->PutU64(kSparseWeightsSentinel);
  out->PutU64(w.size());
  out->PutU64(CountAboveEpsilon(w, cull_epsilon));
  for (size_t j = 0; j < w.size(); ++j) {
    if (std::fabs(w[j]) >= cull_epsilon) {
      out->PutU32(static_cast<uint32_t>(j));
      out->PutDouble(w[j]);
    }
  }
}

Status DecodeWeightVector(artifact::Decoder* in, std::vector<double>* w) {
  uint64_t count = 0;
  TRANSER_RETURN_IF_ERROR(in->GetU64(&count));
  if (count != kSparseWeightsSentinel) {
    // Dense layout: the count we just consumed is PutDoubleVec's element
    // count; validate it against the remaining bytes before allocating,
    // exactly as GetDoubleVec would have.
    if (count > in->remaining() / sizeof(double)) {
      return Status::InvalidArgument(
          StrFormat("weight vector count %llu exceeds payload",
                    static_cast<unsigned long long>(count)));
    }
    w->assign(static_cast<size_t>(count), 0.0);
    for (size_t j = 0; j < count; ++j) {
      TRANSER_RETURN_IF_ERROR(in->GetDouble(&(*w)[j]));
    }
    return Status::OK();
  }

  uint64_t dimension = 0;
  uint64_t nnz = 0;
  TRANSER_RETURN_IF_ERROR(in->GetU64(&dimension));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&nnz));
  if (dimension > kMaxWeightDimension) {
    return Status::InvalidArgument(
        StrFormat("sparse weight dimension %llu exceeds the %llu cap",
                  static_cast<unsigned long long>(dimension),
                  static_cast<unsigned long long>(kMaxWeightDimension)));
  }
  // Each stored entry is a u32 index + a double value.
  if (nnz > dimension ||
      nnz > in->remaining() / (sizeof(uint32_t) + sizeof(double))) {
    return Status::InvalidArgument(
        StrFormat("sparse weight count %llu exceeds payload",
                  static_cast<unsigned long long>(nnz)));
  }
  w->assign(static_cast<size_t>(dimension), 0.0);
  uint64_t prev = 0;
  for (uint64_t k = 0; k < nnz; ++k) {
    uint32_t index = 0;
    double value = 0.0;
    TRANSER_RETURN_IF_ERROR(in->GetU32(&index));
    TRANSER_RETURN_IF_ERROR(in->GetDouble(&value));
    if (index >= dimension || (k > 0 && index <= prev)) {
      return Status::InvalidArgument(
          StrFormat("sparse weight index %u out of order or range", index));
    }
    if (!std::isfinite(value)) {
      return Status::InvalidArgument("sparse weight value is not finite");
    }
    (*w)[index] = value;
    prev = index;
  }
  return Status::OK();
}

}  // namespace transer

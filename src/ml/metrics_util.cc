#include "ml/metrics_util.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace transer {

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  TRANSER_CHECK_EQ(truth.size(), predicted.size());
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double LogLoss(const std::vector<int>& truth,
               const std::vector<double>& probabilities) {
  TRANSER_CHECK_EQ(truth.size(), probabilities.size());
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double p = std::clamp(probabilities[i], 1e-12, 1.0 - 1e-12);
    total += truth[i] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(truth.size());
}

double CrossValidatedAccuracy(const ClassifierFactory& make_classifier,
                              const Matrix& x, const std::vector<int>& y,
                              int folds, uint64_t seed) {
  TRANSER_CHECK_GE(folds, 2);
  TRANSER_CHECK_EQ(x.rows(), y.size());
  const size_t n = x.rows();
  TRANSER_CHECK_GE(n, static_cast<size_t>(folds));

  Rng rng(seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);

  double total_accuracy = 0.0;
  for (int fold = 0; fold < folds; ++fold) {
    const size_t lo = n * static_cast<size_t>(fold) / folds;
    const size_t hi = n * static_cast<size_t>(fold + 1) / folds;
    std::vector<size_t> train_rows;
    std::vector<size_t> test_rows;
    for (size_t i = 0; i < n; ++i) {
      (i >= lo && i < hi ? test_rows : train_rows).push_back(order[i]);
    }
    Matrix x_train = x.SelectRows(train_rows);
    std::vector<int> y_train;
    y_train.reserve(train_rows.size());
    for (size_t row : train_rows) y_train.push_back(y[row]);

    auto classifier = make_classifier();
    classifier->Fit(x_train, y_train);

    Matrix x_test = x.SelectRows(test_rows);
    std::vector<int> y_test;
    y_test.reserve(test_rows.size());
    for (size_t row : test_rows) y_test.push_back(y[row]);
    total_accuracy += Accuracy(y_test, classifier->PredictAll(x_test));
  }
  return total_accuracy / folds;
}

}  // namespace transer

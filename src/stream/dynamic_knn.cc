#include "stream/dynamic_knn.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "util/string_util.h"

namespace transer {
namespace stream {

Status DynamicKnn::Insert(std::vector<double> point) {
  if (points_.empty()) {
    if (point.empty()) {
      return Status::InvalidArgument("k-NN points must have dimension >= 1");
    }
    dimensions_ = point.size();
  } else if (point.size() != dimensions_) {
    return Status::InvalidArgument(
        StrFormat("k-NN point has %zu dimensions, index has %zu",
                  point.size(), dimensions_));
  }
  points_.push_back(std::move(point));
  if (options_.backend == DynamicKnnBackend::kAnnGraph) {
    // Grow-only path: link the point into the graph now; there is no
    // rebuild boundary and no tail.
    if (graph_ == nullptr) {
      graph_ = std::make_unique<AnnGraph>(dimensions_, options_.ann);
    }
    return graph_->Insert(points_.back());
  }
  if (options_.rebuild_interval > 0 &&
      points_.size() - indexed_ >= options_.rebuild_interval) {
    Rebuild();
  }
  return Status::OK();
}

void DynamicKnn::Rebuild() {
  Matrix matrix(points_.size(), dimensions_);
  for (size_t r = 0; r < points_.size(); ++r) {
    std::copy(points_[r].begin(), points_[r].end(), matrix.Row(r));
  }
  tree_ = std::make_unique<KdTree>(matrix, options_.num_threads);
  indexed_ = points_.size();
  ++rebuilds_;
}

std::vector<Neighbour> DynamicKnn::Query(std::span<const double> query,
                                         size_t k,
                                         ptrdiff_t skip_index) const {
  std::vector<Neighbour> heap;
  if (k == 0 || points_.empty()) return heap;
  if (graph_ != nullptr) return graph_->Query(query, k, skip_index);
  heap.reserve(k);
  if (tree_ != nullptr) {
    // The tree's top-k over rows [0, indexed_) are the only indexed rows
    // that can appear in the global top-k, so feeding them to the shared
    // bounded heap loses nothing.
    for (const Neighbour& n : tree_->Query(query, k, skip_index)) {
      PushBoundedNeighbour(&heap, k, n);
    }
  }
  // Tail scan with the same decomposed kernel as the KD-tree leaves, so
  // a point's distance does not depend on which side of the rebuild
  // boundary it currently sits.
  const double query_norm = kernels::SquaredNorm(query);
  for (size_t row = indexed_; row < points_.size(); ++row) {
    if (skip_index >= 0 && static_cast<size_t>(skip_index) == row) continue;
    const std::vector<double>& point = points_[row];
    const double dist_sq = kernels::PairSquaredL2(
        query, query_norm, point, kernels::SquaredNorm(point));
    PushBoundedNeighbour(&heap, k, Neighbour{row, std::sqrt(dist_sq)});
  }
  std::sort_heap(heap.begin(), heap.end(), NeighbourBefore);
  return heap;
}

std::span<const double> DynamicKnn::Point(size_t index) const {
  return points_[index];
}

}  // namespace stream
}  // namespace transer

#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace transer {

namespace {

// Weighted Gini impurity of a (match_weight, total_weight) census.
double Gini(double match_w, double total_w) {
  if (total_w <= 0.0) return 0.0;
  const double p = match_w / total_w;
  return 2.0 * p * (1.0 - p);
}

// Leaf probability is the raw weighted match fraction (as in sklearn);
// pure leaves report exactly 0 or 1, which the pseudo-label confidence
// threshold t_p of TransER's TCL phase relies on.
double LeafProbability(double match_w, double total_w) {
  if (total_w <= 0.0) return 0.5;
  return match_w / total_w;
}

}  // namespace

void DecisionTree::Fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  TRANSER_CHECK(weights.empty() || weights.size() == y.size());
  nodes_.clear();
  root_ = -1;
  num_features_ = x.cols();
  rng_state_ = options_.seed;
  if (x.rows() == 0) return;

  std::vector<double> w = weights;
  if (w.empty()) w.assign(x.rows(), 1.0);

  std::vector<size_t> indices(x.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  nodes_.reserve(2 * x.rows() / options_.min_samples_split + 4);
  root_ = Grow(x, y, w, &indices, 0, indices.size(), 0);
}

ptrdiff_t DecisionTree::Grow(const Matrix& x, const std::vector<int>& y,
                             const std::vector<double>& w,
                             std::vector<size_t>* indices, size_t begin,
                             size_t end, int depth) {
  double total_w = 0.0;
  double match_w = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t row = (*indices)[i];
    total_w += w[row];
    if (y[row] == 1) match_w += w[row];
  }

  Node node;
  node.match_probability = LeafProbability(match_w, total_w);

  const double parent_impurity = Gini(match_w, total_w);
  const bool can_split = depth < options_.max_depth &&
                         end - begin >= options_.min_samples_split &&
                         parent_impurity > 0.0;

  size_t best_feature = 0;
  double best_threshold = 0.0;
  double best_decrease = options_.min_impurity_decrease;
  bool found = false;

  // An interrupted Fit stops splitting: the subtree collapses to a leaf
  // with the census probability, and the caller surfaces the status.
  if (can_split && !FitInterrupted()) {
    // Candidate features: all, or a random subset for forests.
    std::vector<size_t> candidates;
    if (options_.max_features == 0 ||
        options_.max_features >= num_features_) {
      candidates.resize(num_features_);
      for (size_t f = 0; f < num_features_; ++f) candidates[f] = f;
    } else {
      Rng rng(rng_state_);
      rng_state_ = rng.NextUint64();
      candidates = rng.SampleWithoutReplacement(num_features_,
                                                options_.max_features);
    }

    std::vector<size_t> sorted(indices->begin() + static_cast<ptrdiff_t>(begin),
                               indices->begin() + static_cast<ptrdiff_t>(end));
    for (size_t feature : candidates) {
      std::sort(sorted.begin(), sorted.end(),
                [&x, feature](size_t a, size_t b) {
                  return x(a, feature) < x(b, feature);
                });
      // Sweep split points between consecutive distinct values.
      double left_w = 0.0;
      double left_match = 0.0;
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        const size_t row = sorted[i];
        left_w += w[row];
        if (y[row] == 1) left_match += w[row];
        const double value = x(row, feature);
        const double next = x(sorted[i + 1], feature);
        if (next <= value) continue;  // no boundary here
        const double right_w = total_w - left_w;
        const double right_match = match_w - left_match;
        if (left_w <= 0.0 || right_w <= 0.0) continue;
        const double child_impurity =
            (left_w * Gini(left_match, left_w) +
             right_w * Gini(right_match, right_w)) /
            total_w;
        const double decrease = parent_impurity - child_impurity;
        if (decrease > best_decrease) {
          // The midpoint of two nearly-adjacent doubles can round up to
          // `next`, which would make the `<= threshold` partition
          // degenerate; such boundaries are unsplittable.
          const double threshold = value + 0.5 * (next - value);
          if (!(threshold < next)) continue;
          best_decrease = decrease;
          best_feature = feature;
          best_threshold = threshold;
          found = true;
        }
      }
    }
  }

  if (!found) {
    nodes_.push_back(node);
    return static_cast<ptrdiff_t>(nodes_.size() - 1);
  }

  // Partition the index slice around the chosen split.
  auto mid_it = std::partition(
      indices->begin() + static_cast<ptrdiff_t>(begin),
      indices->begin() + static_cast<ptrdiff_t>(end),
      [&x, best_feature, best_threshold](size_t row) {
        return x(row, best_feature) <= best_threshold;
      });
  const size_t mid =
      static_cast<size_t>(mid_it - indices->begin());
  TRANSER_CHECK(mid > begin && mid < end);

  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const ptrdiff_t index = static_cast<ptrdiff_t>(nodes_.size() - 1);
  const ptrdiff_t left = Grow(x, y, w, indices, begin, mid, depth + 1);
  const ptrdiff_t right = Grow(x, y, w, indices, mid, end, depth + 1);
  nodes_[static_cast<size_t>(index)].left = left;
  nodes_[static_cast<size_t>(index)].right = right;
  return index;
}

double DecisionTree::PredictProba(std::span<const double> features) const {
  TRANSER_CHECK_EQ(features.size(), num_features_);
  if (root_ < 0) return 0.5;
  ptrdiff_t current = root_;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(current)];
    if (node.is_leaf) return node.match_probability;
    current = features[node.feature] <= node.threshold ? node.left
                                                       : node.right;
  }
}

size_t DecisionTree::Depth() const {
  if (root_ < 0) return 0;
  // Iterative DFS carrying depth.
  std::vector<std::pair<ptrdiff_t, size_t>> stack = {{root_, 1}};
  size_t depth = 0;
  while (!stack.empty()) {
    auto [index, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (!node.is_leaf) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return depth;
}

}  // namespace transer

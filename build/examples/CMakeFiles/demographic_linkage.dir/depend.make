# Empty dependencies file for demographic_linkage.
# This may be replaced when dependencies are built.

#include "ml/feature_view.h"

#include <algorithm>

#include "util/parallel.h"

namespace transer {

namespace {

/// Per-chunk accumulator of the ordered reduction. Each chunk owns a
/// full-width gradient, so memory is bounded by capping the chunk count
/// (see below) rather than letting PlanChunks fan out to 256 partials
/// of 2^20 doubles each.
struct LossGradPart {
  std::vector<double> grad;
  double grad_bias = 0.0;
  double loss = 0.0;
};

constexpr size_t kMaxGradChunks = 16;

}  // namespace

Result<double> WeightedLinearLossGrad(
    const FeatureView& x, const std::vector<int>& y,
    const std::vector<double>& sample_weights, std::span<const double> w,
    double bias, LinearRowLoss row_loss, std::span<double> grad,
    double* grad_bias, const ExecutionContext& context, int num_threads) {
  const size_t n = x.rows();
  const size_t m = x.cols();
  TRANSER_CHECK_EQ(w.size(), m);
  TRANSER_CHECK_EQ(grad.size(), m);
  TRANSER_CHECK_EQ(y.size(), n);
  TRANSER_CHECK(sample_weights.empty() || sample_weights.size() == n);
  *grad_bias = 0.0;
  if (n == 0) return 0.0;

  ParallelOptions parallel_options;
  parallel_options.num_threads = num_threads;
  parallel_options.min_items_per_chunk =
      std::max(size_t{1}, (n + kMaxGradChunks - 1) / kMaxGradChunks);

  LossGradPart init;
  init.grad.assign(m, 0.0);
  auto reduced = ParallelReduce<LossGradPart>(
      context, "linear_loss_grad", n, std::move(init),
      [&](size_t begin, size_t end, size_t /*chunk*/,
          LossGradPart* part) -> Status {
        const std::span<double> pg(part->grad.data(), m);
        for (size_t i = begin; i < end; ++i) {
          const double margin = bias + x.RowDot(i, w);
          const double sw = sample_weights.empty() ? 1.0 : sample_weights[i];
          double dmargin = 0.0;
          part->loss += row_loss(margin, y[i], sw, &dmargin);
          if (dmargin != 0.0) {
            x.RowAxpy(i, dmargin, pg);
            part->grad_bias += dmargin;
          }
        }
        return Status::OK();
      },
      [](LossGradPart* into, LossGradPart* part) {
        into->loss += part->loss;
        into->grad_bias += part->grad_bias;
        kernels::AddInPlace(std::span<double>(into->grad.data(),
                                              into->grad.size()),
                            std::span<const double>(part->grad.data(),
                                                    part->grad.size()));
      },
      parallel_options);
  TRANSER_RETURN_IF_ERROR(reduced.status());

  const LossGradPart& total = reduced.value();
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t j = 0; j < m; ++j) grad[j] = total.grad[j] * inv_n;
  *grad_bias = total.grad_bias * inv_n;
  return total.loss * inv_n;
}

}  // namespace transer


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/blocking_metrics.cc" "src/CMakeFiles/transer.dir/blocking/blocking_metrics.cc.o" "gcc" "src/CMakeFiles/transer.dir/blocking/blocking_metrics.cc.o.d"
  "/root/repo/src/blocking/minhash_lsh.cc" "src/CMakeFiles/transer.dir/blocking/minhash_lsh.cc.o" "gcc" "src/CMakeFiles/transer.dir/blocking/minhash_lsh.cc.o.d"
  "/root/repo/src/blocking/sorted_neighbourhood.cc" "src/CMakeFiles/transer.dir/blocking/sorted_neighbourhood.cc.o" "gcc" "src/CMakeFiles/transer.dir/blocking/sorted_neighbourhood.cc.o.d"
  "/root/repo/src/blocking/standard_blocking.cc" "src/CMakeFiles/transer.dir/blocking/standard_blocking.cc.o" "gcc" "src/CMakeFiles/transer.dir/blocking/standard_blocking.cc.o.d"
  "/root/repo/src/core/active_transer.cc" "src/CMakeFiles/transer.dir/core/active_transer.cc.o" "gcc" "src/CMakeFiles/transer.dir/core/active_transer.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/transer.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/transer.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/transer.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/transer.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/source_selection.cc" "src/CMakeFiles/transer.dir/core/source_selection.cc.o" "gcc" "src/CMakeFiles/transer.dir/core/source_selection.cc.o.d"
  "/root/repo/src/core/transer.cc" "src/CMakeFiles/transer.dir/core/transer.cc.o" "gcc" "src/CMakeFiles/transer.dir/core/transer.cc.o.d"
  "/root/repo/src/data/bibliographic_generator.cc" "src/CMakeFiles/transer.dir/data/bibliographic_generator.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/bibliographic_generator.cc.o.d"
  "/root/repo/src/data/corruptor.cc" "src/CMakeFiles/transer.dir/data/corruptor.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/corruptor.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/transer.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_statistics.cc" "src/CMakeFiles/transer.dir/data/dataset_statistics.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/dataset_statistics.cc.o.d"
  "/root/repo/src/data/demographic_generator.cc" "src/CMakeFiles/transer.dir/data/demographic_generator.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/demographic_generator.cc.o.d"
  "/root/repo/src/data/feature_space_generator.cc" "src/CMakeFiles/transer.dir/data/feature_space_generator.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/feature_space_generator.cc.o.d"
  "/root/repo/src/data/music_generator.cc" "src/CMakeFiles/transer.dir/data/music_generator.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/music_generator.cc.o.d"
  "/root/repo/src/data/record.cc" "src/CMakeFiles/transer.dir/data/record.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/record.cc.o.d"
  "/root/repo/src/data/scenario.cc" "src/CMakeFiles/transer.dir/data/scenario.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/scenario.cc.o.d"
  "/root/repo/src/data/vocabulary.cc" "src/CMakeFiles/transer.dir/data/vocabulary.cc.o" "gcc" "src/CMakeFiles/transer.dir/data/vocabulary.cc.o.d"
  "/root/repo/src/eval/aggregate.cc" "src/CMakeFiles/transer.dir/eval/aggregate.cc.o" "gcc" "src/CMakeFiles/transer.dir/eval/aggregate.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/transer.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/transer.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/CMakeFiles/transer.dir/eval/table_printer.cc.o" "gcc" "src/CMakeFiles/transer.dir/eval/table_printer.cc.o.d"
  "/root/repo/src/features/ambiguity.cc" "src/CMakeFiles/transer.dir/features/ambiguity.cc.o" "gcc" "src/CMakeFiles/transer.dir/features/ambiguity.cc.o.d"
  "/root/repo/src/features/comparator.cc" "src/CMakeFiles/transer.dir/features/comparator.cc.o" "gcc" "src/CMakeFiles/transer.dir/features/comparator.cc.o.d"
  "/root/repo/src/features/feature_matrix.cc" "src/CMakeFiles/transer.dir/features/feature_matrix.cc.o" "gcc" "src/CMakeFiles/transer.dir/features/feature_matrix.cc.o.d"
  "/root/repo/src/knn/brute_force.cc" "src/CMakeFiles/transer.dir/knn/brute_force.cc.o" "gcc" "src/CMakeFiles/transer.dir/knn/brute_force.cc.o.d"
  "/root/repo/src/knn/kd_tree.cc" "src/CMakeFiles/transer.dir/knn/kd_tree.cc.o" "gcc" "src/CMakeFiles/transer.dir/knn/kd_tree.cc.o.d"
  "/root/repo/src/linalg/cholesky.cc" "src/CMakeFiles/transer.dir/linalg/cholesky.cc.o" "gcc" "src/CMakeFiles/transer.dir/linalg/cholesky.cc.o.d"
  "/root/repo/src/linalg/covariance.cc" "src/CMakeFiles/transer.dir/linalg/covariance.cc.o" "gcc" "src/CMakeFiles/transer.dir/linalg/covariance.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/transer.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/transer.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/transer.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/transer.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/CMakeFiles/transer.dir/linalg/vector_ops.cc.o" "gcc" "src/CMakeFiles/transer.dir/linalg/vector_ops.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/CMakeFiles/transer.dir/ml/classifier.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/classifier.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/transer.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/CMakeFiles/transer.dir/ml/gradient_boosting.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/knn_classifier.cc" "src/CMakeFiles/transer.dir/ml/knn_classifier.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/knn_classifier.cc.o.d"
  "/root/repo/src/ml/linear_svm.cc" "src/CMakeFiles/transer.dir/ml/linear_svm.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/linear_svm.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/transer.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics_util.cc" "src/CMakeFiles/transer.dir/ml/metrics_util.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/metrics_util.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/CMakeFiles/transer.dir/ml/mlp.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/mlp.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/transer.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/transer.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/sampling.cc" "src/CMakeFiles/transer.dir/ml/sampling.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/sampling.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/CMakeFiles/transer.dir/ml/scaler.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/scaler.cc.o.d"
  "/root/repo/src/ml/threshold_classifier.cc" "src/CMakeFiles/transer.dir/ml/threshold_classifier.cc.o" "gcc" "src/CMakeFiles/transer.dir/ml/threshold_classifier.cc.o.d"
  "/root/repo/src/text/char_ngram_embedder.cc" "src/CMakeFiles/transer.dir/text/char_ngram_embedder.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/char_ngram_embedder.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/CMakeFiles/transer.dir/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/edit_distance.cc.o.d"
  "/root/repo/src/text/jaro_winkler.cc" "src/CMakeFiles/transer.dir/text/jaro_winkler.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/jaro_winkler.cc.o.d"
  "/root/repo/src/text/normalize.cc" "src/CMakeFiles/transer.dir/text/normalize.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/normalize.cc.o.d"
  "/root/repo/src/text/numeric_similarity.cc" "src/CMakeFiles/transer.dir/text/numeric_similarity.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/numeric_similarity.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/CMakeFiles/transer.dir/text/phonetic.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/phonetic.cc.o.d"
  "/root/repo/src/text/set_similarity.cc" "src/CMakeFiles/transer.dir/text/set_similarity.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/set_similarity.cc.o.d"
  "/root/repo/src/text/similarity_registry.cc" "src/CMakeFiles/transer.dir/text/similarity_registry.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/similarity_registry.cc.o.d"
  "/root/repo/src/text/tokenize.cc" "src/CMakeFiles/transer.dir/text/tokenize.cc.o" "gcc" "src/CMakeFiles/transer.dir/text/tokenize.cc.o.d"
  "/root/repo/src/transfer/coral.cc" "src/CMakeFiles/transer.dir/transfer/coral.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/coral.cc.o.d"
  "/root/repo/src/transfer/dr_transfer.cc" "src/CMakeFiles/transer.dir/transfer/dr_transfer.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/dr_transfer.cc.o.d"
  "/root/repo/src/transfer/dtal.cc" "src/CMakeFiles/transer.dir/transfer/dtal.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/dtal.cc.o.d"
  "/root/repo/src/transfer/embedding_lift.cc" "src/CMakeFiles/transer.dir/transfer/embedding_lift.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/embedding_lift.cc.o.d"
  "/root/repo/src/transfer/locit.cc" "src/CMakeFiles/transer.dir/transfer/locit.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/locit.cc.o.d"
  "/root/repo/src/transfer/naive_transfer.cc" "src/CMakeFiles/transer.dir/transfer/naive_transfer.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/naive_transfer.cc.o.d"
  "/root/repo/src/transfer/tca.cc" "src/CMakeFiles/transer.dir/transfer/tca.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/tca.cc.o.d"
  "/root/repo/src/transfer/tradaboost.cc" "src/CMakeFiles/transer.dir/transfer/tradaboost.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/tradaboost.cc.o.d"
  "/root/repo/src/transfer/transfer_method.cc" "src/CMakeFiles/transer.dir/transfer/transfer_method.cc.o" "gcc" "src/CMakeFiles/transer.dir/transfer/transfer_method.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/transer.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/transer.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/transer.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/transer.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/transer.dir/util/random.cc.o" "gcc" "src/CMakeFiles/transer.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/transer.dir/util/status.cc.o" "gcc" "src/CMakeFiles/transer.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/transer.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/transer.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/transer.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/transer.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

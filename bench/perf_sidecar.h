#ifndef TRANSER_BENCH_PERF_SIDECAR_H_
#define TRANSER_BENCH_PERF_SIDECAR_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace transer {
namespace bench {

/// Schema identity of the kernel perf sidecar. perf_compare refuses to
/// diff sidecars whose schema or version differ — a silent format drift
/// must fail loudly, not produce a bogus comparison.
inline constexpr char kPerfSchema[] = "transer.kernel_perf";
inline constexpr int kPerfSchemaVersion = 1;

/// \brief One measured primitive: ns per operation at a given thread
/// count. `ops_per_sec` is redundant (1e9 / ns_per_op) but kept in the
/// sidecar so humans and plots never re-derive it.
struct PerfEntry {
  std::string name;
  int threads = 1;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
};

/// \brief The full perf report of one micro_primitives run: schema
/// header, the thread count the binary resolved, every measured entry,
/// and free-form numeric extras (speedup ratios).
struct PerfSidecar {
  std::string schema = kPerfSchema;
  int version = kPerfSchemaVersion;
  int threads = 1;
  std::vector<PerfEntry> entries;
  std::vector<std::pair<std::string, double>> extras;

  const PerfEntry* Find(const std::string& name, int entry_threads) const {
    for (const PerfEntry& entry : entries) {
      if (entry.name == name && entry.threads == entry_threads) return &entry;
    }
    return nullptr;
  }
};

namespace sidecar_internal {

/// Same minimal field extraction as the sweep journal: finds `"name":`
/// in a flat one-line object and returns the raw value token. Only ever
/// reads what WritePerfSidecar produced.
inline bool ExtractRaw(const std::string& line, const std::string& name,
                       std::string* out) {
  const std::string needle = "\"" + name + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t pos = at + needle.size();
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    ++pos;
    const size_t end = line.find('"', pos);
    if (end == std::string::npos) return false;
    *out = line.substr(pos, end - pos);
    return true;
  }
  const size_t end = line.find_first_of(",}", pos);
  if (end == std::string::npos || end == pos) return false;
  *out = line.substr(pos, end - pos);
  return true;
}

inline bool ExtractDouble(const std::string& line, const std::string& name,
                          double* out) {
  std::string raw;
  return ExtractRaw(line, name, &raw) && ParseDouble(raw, out);
}

inline bool ExtractInt(const std::string& line, const std::string& name,
                       int64_t* out) {
  std::string raw;
  return ExtractRaw(line, name, &raw) && ParseInt64(raw, out);
}

}  // namespace sidecar_internal

/// Writes the sidecar as line-structured JSON: a header line, one line
/// per entry, one line of extras. Line-per-record keeps the reader a
/// trivial scan (the sweep-journal idiom) while the whole file is still
/// a single valid JSON object. Returns false (with a message on stderr)
/// if the file cannot be written.
inline bool WritePerfSidecar(const std::string& path,
                             const PerfSidecar& sidecar) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\"schema\":\"%s\",\"version\":%d,\"threads\":%d,\n",
               sidecar.schema.c_str(), sidecar.version, sidecar.threads);
  std::fprintf(out, "\"entries\":[\n");
  for (size_t i = 0; i < sidecar.entries.size(); ++i) {
    const PerfEntry& entry = sidecar.entries[i];
    std::fprintf(out,
                 "{\"name\":\"%s\",\"threads\":%d,\"ns_per_op\":%.6g,"
                 "\"ops_per_sec\":%.6g}%s\n",
                 entry.name.c_str(), entry.threads, entry.ns_per_op,
                 entry.ops_per_sec, i + 1 == sidecar.entries.size() ? "" : ",");
  }
  std::fprintf(out, "],\n\"extra\":{");
  for (size_t i = 0; i < sidecar.extras.size(); ++i) {
    std::fprintf(out, "%s\"%s\":%.6g", i == 0 ? "" : ",",
                 sidecar.extras[i].first.c_str(), sidecar.extras[i].second);
  }
  std::fprintf(out, "}}\n");
  std::fclose(out);
  return true;
}

/// Reads a sidecar previously written by WritePerfSidecar. On any
/// malformation (missing header, bad entry line, unreadable file) the
/// error string names the problem and false is returned; schema/version
/// acceptance is the caller's decision so perf_compare can report both
/// identities in its message.
inline bool ReadPerfSidecar(const std::string& path, PerfSidecar* sidecar,
                            std::string* error) {
  std::FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::string content;
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    content.append(buffer, got);
  }
  std::fclose(in);

  sidecar->entries.clear();
  sidecar->extras.clear();
  bool saw_header = false;
  size_t start = 0;
  while (start <= content.size()) {
    const size_t newline = content.find('\n', start);
    const std::string line =
        content.substr(start, newline == std::string::npos
                                  ? std::string::npos
                                  : newline - start);
    start = newline == std::string::npos ? content.size() + 1 : newline + 1;
    if (line.empty() || line == "],") continue;
    if (line.find("\"schema\"") != std::string::npos) {
      int64_t version = 0;
      int64_t threads = 0;
      if (!sidecar_internal::ExtractRaw(line, "schema", &sidecar->schema) ||
          !sidecar_internal::ExtractInt(line, "version", &version) ||
          !sidecar_internal::ExtractInt(line, "threads", &threads)) {
        *error = path + ": malformed header line";
        return false;
      }
      sidecar->version = static_cast<int>(version);
      sidecar->threads = static_cast<int>(threads);
      saw_header = true;
      continue;
    }
    if (line.rfind("{\"name\"", 0) == 0) {
      PerfEntry entry;
      int64_t threads = 0;
      if (!sidecar_internal::ExtractRaw(line, "name", &entry.name) ||
          !sidecar_internal::ExtractInt(line, "threads", &threads) ||
          !sidecar_internal::ExtractDouble(line, "ns_per_op",
                                           &entry.ns_per_op) ||
          !sidecar_internal::ExtractDouble(line, "ops_per_sec",
                                           &entry.ops_per_sec)) {
        *error = path + ": malformed entry line: " + line;
        return false;
      }
      entry.threads = static_cast<int>(threads);
      sidecar->entries.push_back(std::move(entry));
      continue;
    }
    if (line.find("\"extra\"") != std::string::npos) {
      // Scan `"key":value` pairs inside the extras object.
      size_t pos = line.find('{');
      while (pos != std::string::npos) {
        const size_t key_start = line.find('"', pos + 1);
        if (key_start == std::string::npos) break;
        const size_t key_end = line.find('"', key_start + 1);
        if (key_end == std::string::npos) break;
        const size_t colon = line.find(':', key_end);
        if (colon == std::string::npos) break;
        const size_t value_end = line.find_first_of(",}", colon + 1);
        if (value_end == std::string::npos) break;
        double value = 0.0;
        if (!ParseDouble(line.substr(colon + 1, value_end - colon - 1),
                         &value)) {
          *error = path + ": malformed extras line";
          return false;
        }
        sidecar->extras.emplace_back(
            line.substr(key_start + 1, key_end - key_start - 1), value);
        pos = line[value_end] == ',' ? value_end : std::string::npos;
      }
      continue;
    }
  }
  if (!saw_header) {
    *error = path + ": missing schema header";
    return false;
  }
  return true;
}

}  // namespace bench
}  // namespace transer

#endif  // TRANSER_BENCH_PERF_SIDECAR_H_

#include "stream/stream_ingestor.h"

#include <unistd.h>

#include <utility>

#include "util/string_util.h"

namespace transer {
namespace stream {

namespace {

constexpr char kJournalFile[] = "ingest.wal";
constexpr char kSnapshotFile[] = "snapshot.tera";

}  // namespace

std::string StreamIngestor::journal_path() const {
  return options_.directory + "/" + kJournalFile;
}

std::string StreamIngestor::snapshot_path() const {
  return options_.directory + "/" + kSnapshotFile;
}

std::string StreamIngestor::publish_path() const {
  return options_.publish_directory + "/" + options_.publish_stem + ".tera";
}

Result<StreamIngestor> StreamIngestor::Open(
    const StreamIngestorOptions& options, RunDiagnostics* diagnostics) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("stream ingestor directory is empty");
  }
  const std::string journal_path =
      options.directory + "/" + kJournalFile;
  const std::string snapshot_path =
      options.directory + "/" + kSnapshotFile;

  IngestJournalRecovery recovery;
  TRANSER_ASSIGN_OR_RETURN(IngestJournal journal,
                           IngestJournal::Open(journal_path, &recovery));
  if (recovery.tail_dropped && diagnostics != nullptr) {
    diagnostics->Add(
        DegradationKind::kCheckpointTailDropped, "stream",
        StrFormat("truncated %zu torn byte(s) from the ingest journal; "
                  "the unacknowledged tail entry is lost by design",
                  recovery.dropped_bytes),
        0.0, static_cast<double>(recovery.dropped_bytes));
  }

  // Recover the state: snapshot when one is loadable, cold start (or
  // full replay) otherwise.
  Result<StreamResolver> resolver = Status::NotFound("no snapshot");
  bool from_snapshot = false;
  if (::access(snapshot_path.c_str(), F_OK) == 0) {
    resolver =
        StreamResolver::LoadSnapshot(snapshot_path, options.resolver,
                                     diagnostics);
    if (resolver.ok()) {
      from_snapshot = true;
    } else {
      // A corrupt snapshot is recoverable only while the journal still
      // holds the full history (nothing was compacted away). Once
      // compaction dropped entries the snapshot covered, its loss is
      // data loss and must surface, not silently restart the stream.
      const bool full_history =
          !recovery.entries.empty() && recovery.entries.front().sequence == 1;
      if (!full_history) return resolver.status();
      if (diagnostics != nullptr) {
        diagnostics->Add(
            DegradationKind::kStreamSnapshotFallback, "stream",
            "snapshot unusable (" + resolver.status().message() +
                "); rebuilding by full journal replay");
      }
      resolver = StreamResolver::Create(options.resolver, diagnostics);
    }
  } else {
    resolver = StreamResolver::Create(options.resolver, diagnostics);
  }
  TRANSER_RETURN_IF_ERROR(resolver.status());

  StreamIngestor ingestor(options, std::move(journal),
                          std::move(resolver).value());
  ingestor.from_snapshot_ = from_snapshot;

  // Tail replay: everything journaled past what the snapshot covers.
  for (const IngestEntry& entry : recovery.entries) {
    if (entry.sequence <= ingestor.resolver_->applied_sequence()) continue;
    TRANSER_RETURN_IF_ERROR(
        ingestor.resolver_->Apply(entry, diagnostics));
    ++ingestor.replayed_;
  }
  return ingestor;
}

Status StreamIngestor::Ingest(const Record& record,
                              RunDiagnostics* diagnostics) {
  const uint64_t sequence = resolver_->applied_sequence() + 1;
  IngestEntry entry;
  entry.sequence = sequence;
  entry.record = record;
  // Write-ahead: the entry must be durable before any state mutation,
  // so a crash between the two replays it instead of losing it.
  TRANSER_RETURN_IF_ERROR(journal_.Append(entry));
  if (options_.after_append_hook) options_.after_append_hook(sequence);
  TRANSER_RETURN_IF_ERROR(resolver_->Apply(entry, diagnostics));
  if (options_.after_apply_hook) options_.after_apply_hook(sequence);
  if (options_.snapshot_interval > 0 &&
      sequence % options_.snapshot_interval == 0) {
    TRANSER_RETURN_IF_ERROR(Snapshot(diagnostics));
  }
  return Status::OK();
}

Status StreamIngestor::Snapshot(RunDiagnostics* diagnostics) {
  (void)diagnostics;
  // Order matters: the snapshot must be durable (atomic write) before
  // the journal forgets the entries it covers. A crash between the two
  // replays entries the snapshot already holds — harmlessly skipped.
  TRANSER_RETURN_IF_ERROR(resolver_->SaveSnapshot(snapshot_path()));
  TRANSER_RETURN_IF_ERROR(journal_.Compact({}));
  ++snapshots_;
  if (!options_.publish_directory.empty()) {
    // Atomic publish into the serving repository's directory: a serving
    // daemon's next rescan hot-swaps to this model mid-traffic.
    TRANSER_RETURN_IF_ERROR(resolver_->PublishTo(publish_path()));
  }
  return Status::OK();
}

}  // namespace stream
}  // namespace transer

#ifndef TRANSER_TRANSFER_CORAL_H_
#define TRANSER_TRANSFER_CORAL_H_

#include <string>
#include <vector>

#include "transfer/transfer_method.h"

namespace transer {

/// \brief Options for CORAL.
struct CoralOptions {
  /// Ridge added to both covariances before whitening/re-colouring.
  double regularization = 1.0;
};

/// \brief CORrelation ALignment [Sun, Feng & Saenko 2016]: whitens the
/// source features with Cs^{-1/2} and re-colours them with Ct^{1/2} so
/// second-order statistics match the target; then trains the classifier
/// on the aligned source. A feature-representation baseline that assumes
/// roughly Gaussian data — which bi-modal ER similarity data is not, the
/// failure mode Section 5.2.1 discusses.
class CoralTransfer : public TransferMethod {
 public:
  explicit CoralTransfer(CoralOptions options = {}) : options_(options) {}

  std::string name() const override { return "coral"; }

  Result<std::vector<int>> Run(
      const FeatureMatrix& source, const FeatureMatrix& target,
      const ClassifierFactory& make_classifier,
      const TransferRunOptions& run_options) const override;

  /// The aligned source matrix (exposed for tests of the covariance-
  /// matching property).
  Result<Matrix> AlignSource(const Matrix& x_source,
                             const Matrix& x_target) const;

 private:
  CoralOptions options_;
};

}  // namespace transer

#endif  // TRANSER_TRANSFER_CORAL_H_

#include "data/music_generator.h"

#include "data/vocabulary.h"
#include "util/string_util.h"

namespace transer {

Schema MusicSchema() {
  return Schema({
      {"title", "qgram_jaccard"},
      {"album", "word_jaccard"},
      {"artist", "jaro_winkler"},
      {"year", "year"},
      {"length", "numeric_abs"},
  });
}

namespace {

struct Song {
  std::string title;
  std::string album;
  std::string artist;
  std::string year;
  std::string length;  ///< seconds
};

Song MakeSong(Rng* rng) {
  Song song;
  const size_t title_words = static_cast<size_t>(rng->NextInt(2, 4));
  song.title = Vocabulary::PickPhrase(Vocabulary::SongWords(), title_words, rng);
  song.album = Vocabulary::Pick(Vocabulary::SongWords(), rng) + " " +
               Vocabulary::Pick(Vocabulary::AlbumWords(), rng);
  song.artist = Vocabulary::Pick(Vocabulary::ArtistNames(), rng);
  song.year = std::to_string(rng->NextInt(1965, 2020));
  song.length = std::to_string(rng->NextInt(120, 420));
  return song;
}

Record ToRecord(const Song& song, const std::string& id, int64_t entity_id) {
  Record record;
  record.id = id;
  record.entity_id = entity_id;
  record.values = {song.title, song.album, song.artist, song.year,
                   song.length};
  return record;
}

}  // namespace

LinkageProblem GenerateMusic(const MusicOptions& options) {
  Rng rng(options.seed);
  Corruptor corruptor(options.right_corruption);

  LinkageProblem problem;
  problem.left = Dataset(options.left_name, MusicSchema());
  problem.right = Dataset(options.right_name, MusicSchema());

  for (size_t e = 0; e < options.num_entities; ++e) {
    const Song song = MakeSong(&rng);
    const int64_t entity_id = static_cast<int64_t>(e);
    problem.left.Add(
        ToRecord(song, options.left_name + "_" + std::to_string(e), entity_id));

    if (rng.Bernoulli(options.overlap)) {
      Song copy = song;
      copy.title = corruptor.Corrupt(copy.title, &rng);
      copy.artist = corruptor.Corrupt(copy.artist, &rng);
      if (rng.Bernoulli(options.album_variant_rate)) {
        // Same recording released on a different album (single, EP,
        // compilation) with a small year offset — the true-match pairs
        // with conflicting low album similarity (paper Section 1).
        copy.album = Vocabulary::Pick(Vocabulary::SongWords(), &rng) + " " +
                     Vocabulary::Pick(Vocabulary::AlbumWords(), &rng);
        int64_t year = 0;
        if (ParseInt64(copy.year, &year)) {
          copy.year = std::to_string(year + rng.NextInt(0, 2));
        }
      } else {
        copy.album = corruptor.Corrupt(copy.album, &rng);
      }
      int64_t length = 0;
      if (ParseInt64(copy.length, &length)) {
        copy.length = std::to_string(length + rng.NextInt(-3, 3));
      }
      problem.right.Add(ToRecord(
          copy, options.right_name + "_" + std::to_string(e), entity_id));
    } else if (rng.Bernoulli(0.6)) {
      const Song other = MakeSong(&rng);
      problem.right.Add(
          ToRecord(other, options.right_name + "_x" + std::to_string(e),
                   static_cast<int64_t>(options.num_entities + e)));
    }
  }
  return problem;
}

}  // namespace transer

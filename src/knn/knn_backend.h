#ifndef TRANSER_KNN_KNN_BACKEND_H_
#define TRANSER_KNN_KNN_BACKEND_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/diagnostics.h"
#include "util/execution_context.h"
#include "util/parallel.h"
#include "util/status.h"

namespace transer {

/// \brief One k-NN answer: the row index of a stored point and its
/// Euclidean distance to the query.
///
/// Neighbour lists are ordered by (distance, index) — the index breaks
/// distance ties — so every top-k answer is uniquely defined and the
/// exact backends return bit-identical lists at any thread count.
struct Neighbour {
  size_t index = 0;
  double distance = 0.0;
};

/// The canonical (distance, index) ordering of neighbour lists.
inline bool NeighbourBefore(const Neighbour& a, const Neighbour& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

/// \brief Offers `candidate` to a bounded max-heap of the k best
/// neighbours (heap front = worst kept, ordered by NeighbourBefore).
///
/// Because (distance, index) is a strict total order, the kept set —
/// and therefore the sorted top-k list — is independent of the order in
/// which candidates arrive. Every k-NN backend (KD-tree leaf scans,
/// brute-force single queries, the tiled batch path, and the ANN
/// graph's result set) funnels through this one helper, which is what
/// makes their answers bit-identical to each other at any thread count.
inline void PushBoundedNeighbour(std::vector<Neighbour>* heap, size_t k,
                                 const Neighbour& candidate) {
  if (heap->size() < k) {
    heap->push_back(candidate);
    std::push_heap(heap->begin(), heap->end(), NeighbourBefore);
  } else if (NeighbourBefore(candidate, heap->front())) {
    std::pop_heap(heap->begin(), heap->end(), NeighbourBefore);
    heap->back() = candidate;
    std::push_heap(heap->begin(), heap->end(), NeighbourBefore);
  }
}

/// \brief Uniform interface over the nearest-neighbour indexes. The
/// exact backends (KdTree, BruteForceKnn) answer the true top-k; the
/// approximate backend (AnnGraph) answers within its recall target.
/// Every implementation is deterministic: for a fixed build input and
/// seed, Query/QueryBatch return the same bytes at any thread count.
class KnnBackend {
 public:
  virtual ~KnnBackend() = default;

  /// Short identifier: "kd_tree", "brute_force", "ann_graph".
  virtual std::string backend_name() const = 0;

  virtual size_t size() const = 0;
  virtual size_t dimensions() const = 0;

  /// The `k` nearest stored points to `query`, closest first (fewer when
  /// the index holds fewer). `skip_index` >= 0 excludes that stored row.
  virtual std::vector<Neighbour> Query(std::span<const double> query,
                                       size_t k,
                                       ptrdiff_t skip_index = -1) const = 0;

  /// Context-observing query: returns the TE / cancellation status
  /// instead of scanning once the context expires.
  virtual Result<std::vector<Neighbour>> Query(
      std::span<const double> query, size_t k, ptrdiff_t skip_index,
      const ExecutionContext& context,
      const std::string& scope = "knn") const = 0;

  /// One Query per row of `queries` over the parallel runtime. Results
  /// land in row order, bit-identical at any thread count; workers poll
  /// `context` per chunk. With `skip_self`, query row i excludes stored
  /// row i (queries must be the indexed matrix).
  virtual Result<std::vector<std::vector<Neighbour>>> QueryBatch(
      const Matrix& queries, size_t k, const ExecutionContext& context,
      const std::string& scope = "knn", const ParallelOptions& options = {},
      bool skip_self = false) const = 0;
};

/// Which index implementation a caller wants.
enum class KnnBackendKind {
  kKdTree = 0,
  kBruteForce,
  kAnnGraph,
};

/// "kd_tree" / "brute_force" / "ann_graph".
const char* KnnBackendKindName(KnnBackendKind kind);

/// Parses "kd_tree" / "kdtree" / "brute_force" / "brute" / "ann_graph" /
/// "ann". Returns false (and leaves `out` untouched) on anything else.
bool ParseKnnBackendKind(const std::string& text, KnnBackendKind* out);

/// \brief Shape and search knobs of the navigable-graph ANN index.
/// Defined here (not in ann_graph.h) so callers can carry backend
/// options without depending on the graph implementation.
struct AnnGraphOptions {
  /// Neighbours kept per node on the upper layers (HNSW's M); layer 0
  /// keeps 2x. Larger = better recall, more memory, slower build.
  size_t max_degree = 16;
  /// Beam width while building. Larger = better graph, slower build.
  size_t ef_construction = 96;
  /// Beam width while searching. 0 derives it from `recall_target` and
  /// the requested k (see AnnGraph::EffectiveEf).
  size_t ef_search = 0;
  /// Requested fraction of the true top-k the search should return, in
  /// (0, 1]. Only consulted when `ef_search` is 0. A target of 1.0 asks
  /// for exactness — CreateKnnBackend answers it with an exact backend
  /// instead of the graph.
  double recall_target = 0.95;
  /// Seed of the level-assignment hash. Build and search are pure
  /// functions of (points, options, seed): two builds from the same
  /// inputs produce byte-identical graphs and answers.
  uint64_t seed = 0x5eedULL;
};

/// \brief Factory request: which backend plus its knobs.
struct KnnBackendOptions {
  KnnBackendKind kind = KnnBackendKind::kKdTree;
  AnnGraphOptions ann;
  /// Build lanes (KD-tree subtree builds). Graph build is serial by
  /// construction; queries parallelise in QueryBatch regardless.
  int num_threads = 1;
};

/// Builds the requested index over the rows of `points`, budgeted
/// against `context` (storage reserved for the index's lifetime;
/// deadline/cancellation polled during the build). When an AnnGraph is
/// requested with recall_target >= 1.0 and ef_search == 0, the factory
/// returns a KdTree instead — exactness was asked for — and records a
/// kAnnExactFallback event on `diagnostics` (may be null).
Result<std::unique_ptr<KnnBackend>> CreateKnnBackend(
    const Matrix& points, const KnnBackendOptions& options,
    const ExecutionContext& context, const std::string& scope = "knn",
    RunDiagnostics* diagnostics = nullptr);

/// Unbudgeted convenience overload (unlimited context) for callers that
/// do not manage an execution context, e.g. classifier Fit paths.
Result<std::unique_ptr<KnnBackend>> CreateKnnBackend(
    const Matrix& points, const KnnBackendOptions& options);

}  // namespace transer

#endif  // TRANSER_KNN_KNN_BACKEND_H_

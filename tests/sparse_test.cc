// Tests of the sparse high-dimensional feature path (DESIGN.md §12):
// CSR validation, sparse kernels against their scalar references,
// sparse↔dense training equivalence, the culled sparse weight layout
// under truncation / byte-flip fuzzing, L-BFGS-vs-SGD convergence, the
// thread-count invariance of the shared loss/gradient kernel, the
// sparse scaler's centering refusal, and the run-options fit dispatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "features/sparse_matrix.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "ml/feature_view.h"
#include "ml/lbfgs.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "ml/scaler.h"
#include "ml/sparse_weights.h"
#include "text/char_ngram_embedder.h"
#include "transfer/transfer_method.h"
#include "util/artifact_io.h"
#include "util/diagnostics.h"
#include "util/execution_context.h"
#include "util/random.h"
#include "util/validation.h"

namespace transer {
namespace {

// A small dense problem with every value strictly nonzero, so its CSR
// view enumerates every column and the bit-identity contract of
// ml/feature_view.h applies.
FeatureMatrix DenseProblem(size_t rows, size_t cols, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t j = 0; j < cols; ++j) names.push_back("f" + std::to_string(j));
  FeatureMatrix x(std::move(names));
  Rng rng(seed);
  std::vector<double> row(cols);
  for (size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % 2);
    const double shift = label == 1 ? 0.15 : -0.15;
    for (size_t j = 0; j < cols; ++j) {
      double v = shift + rng.NextDouble() - 0.5;
      if (v == 0.0) v = 0.01;  // keep the CSR view full
      row[j] = v;
    }
    x.Append(row, label);
  }
  return x;
}

SparseFeatureMatrix SmallCsr() {
  SparseFeatureMatrix x(8);
  const std::vector<uint32_t> i0 = {0, 3, 7};
  const std::vector<double> v0 = {1.0, -2.0, 0.5};
  const std::vector<uint32_t> i1 = {1, 3};
  const std::vector<double> v1 = {4.0, 2.0};
  x.AppendRow(i0, v0, kMatch);
  x.AppendRow(i1, v1, kNonMatch);
  return x;
}

// ---------- Validate ----------

TEST(SparseValidateTest, StrictRejectsNonFiniteValues) {
  SparseFeatureMatrix x(4);
  const std::vector<uint32_t> idx = {0, 2};
  const std::vector<double> bad = {1.0, std::nan("")};
  x.AppendRow(idx, bad, kMatch);
  ValidationOptions options;  // kStrict
  EXPECT_FALSE(x.Validate(options).ok());
}

TEST(SparseValidateTest, StrictRejectsOutOfRangeAndUnsortedIndices) {
  {
    SparseFeatureMatrix x(4);
    const std::vector<uint32_t> idx = {0, 4};  // 4 == num_features
    const std::vector<double> val = {1.0, 1.0};
    x.AppendRow(idx, val, kMatch);
    EXPECT_FALSE(x.Validate(ValidationOptions{}).ok());
  }
  {
    SparseFeatureMatrix x(4);
    const std::vector<uint32_t> idx = {2, 1};  // not increasing
    const std::vector<double> val = {1.0, 1.0};
    x.AppendRow(idx, val, kMatch);
    EXPECT_FALSE(x.Validate(ValidationOptions{}).ok());
  }
  {
    SparseFeatureMatrix x(4);
    const std::vector<uint32_t> idx = {1, 1};  // duplicate column
    const std::vector<double> val = {1.0, 1.0};
    x.AppendRow(idx, val, kMatch);
    EXPECT_FALSE(x.Validate(ValidationOptions{}).ok());
  }
}

TEST(SparseValidateTest, DropRowsKeepsCleanRowsAndEmitsDiagnostics) {
  SparseFeatureMatrix x(4);
  const std::vector<uint32_t> good_idx = {0, 2};
  const std::vector<double> good_val = {0.5, 0.25};
  const std::vector<uint32_t> bad_idx = {3, 1};  // unsorted
  const std::vector<double> bad_val = {1.0, 1.0};
  x.AppendRow(good_idx, good_val, kMatch);
  x.AppendRow(bad_idx, bad_val, kNonMatch);
  x.AppendRow(good_idx, good_val, kNonMatch);

  ValidationOptions options;
  options.policy = RepairPolicy::kDropRows;
  ValidationReport report;
  RunDiagnostics diagnostics;
  auto cleaned = x.Validate(options, &report, &diagnostics);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  EXPECT_EQ(cleaned.value().size(), 2u);
  EXPECT_EQ(cleaned.value().label(0), kMatch);
  EXPECT_EQ(report.rows_dropped, 1u);
  EXPECT_TRUE(diagnostics.HasKind(DegradationKind::kSparseRowsDropped));
}

TEST(SparseValidateTest, ClampRepairsValuesButDropsStructuralRows) {
  SparseFeatureMatrix x(4);
  const std::vector<uint32_t> nan_idx = {0, 2};
  const std::vector<double> nan_val = {std::nan(""), 0.5};
  const std::vector<uint32_t> bad_idx = {0, 9};  // out of range: no repair
  const std::vector<double> bad_val = {1.0, 1.0};
  x.AppendRow(nan_idx, nan_val, kMatch);
  x.AppendRow(bad_idx, bad_val, kNonMatch);

  ValidationOptions options;
  options.policy = RepairPolicy::kClampValues;
  ValidationReport report;
  RunDiagnostics diagnostics;
  auto cleaned = x.Validate(options, &report, &diagnostics);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  ASSERT_EQ(cleaned.value().size(), 1u);
  EXPECT_EQ(cleaned.value().Row(0).values[0], 0.0);  // NaN -> 0
  EXPECT_GE(report.values_repaired, 1u);
  EXPECT_EQ(report.rows_dropped, 1u);
  EXPECT_TRUE(diagnostics.HasKind(DegradationKind::kSparseRowsDropped));
}

// ---------- Sparse kernels ----------

TEST(SparseKernelTest, MatchScalarReferencesBitForBit) {
  ASSERT_TRUE(kernels::SelfCheck().ok());
  Rng rng(77);
  for (size_t trial = 0; trial < 20; ++trial) {
    const size_t dims = 64 + trial * 7;
    std::vector<uint32_t> a_idx, b_idx;
    std::vector<double> a_val, b_val;
    for (uint32_t j = 0; j < dims; ++j) {
      if (rng.NextDouble() < 0.3) {
        a_idx.push_back(j);
        a_val.push_back(rng.NextDouble() * 2.0 - 1.0);
      }
      if (rng.NextDouble() < 0.3) {
        b_idx.push_back(j);
        b_val.push_back(rng.NextDouble() * 2.0 - 1.0);
      }
    }
    std::vector<double> dense(dims);
    for (double& v : dense) v = rng.NextDouble() * 2.0 - 1.0;

    EXPECT_EQ(kernels::SparseDenseDot(a_idx, a_val, dense),
              kernels::ref::SparseDenseDot(a_idx, a_val, dense));
    EXPECT_EQ(kernels::SparseDot(a_idx, a_val, b_idx, b_val),
              kernels::ref::SparseDot(a_idx, a_val, b_idx, b_val));
    EXPECT_EQ(kernels::SparseSquaredL2(a_idx, a_val, b_idx, b_val),
              kernels::ref::SparseSquaredL2(a_idx, a_val, b_idx, b_val));
    std::vector<double> y_kernel = dense, y_ref = dense;
    kernels::SparseAxpy(0.75, a_idx, a_val, y_kernel);
    kernels::ref::SparseAxpy(0.75, a_idx, a_val, y_ref);
    EXPECT_EQ(y_kernel, y_ref);
  }
}

// ---------- Sparse <-> dense training equivalence ----------

TEST(SparseEquivalenceTest, LbfgsTrainsBitIdenticalWeightsOnFullCsrView) {
  const FeatureMatrix fm = DenseProblem(120, 6, 5);
  const Matrix dense = fm.ToMatrix();
  const SparseFeatureMatrix sparse = SparseFeatureMatrix::FromDense(fm);
  ASSERT_EQ(sparse.nnz(), dense.rows() * dense.cols());  // full view

  LogisticRegressionOptions options;
  options.solver = LinearSolver::kLbfgs;
  options.lbfgs_max_iterations = 25;
  LogisticRegression dense_model(options), sparse_model(options);
  dense_model.FitView(FeatureView(dense), fm.labels(), {});
  sparse_model.FitView(FeatureView(sparse), fm.labels(), {});

  ASSERT_EQ(dense_model.coefficients().size(),
            sparse_model.coefficients().size());
  for (size_t j = 0; j < dense_model.coefficients().size(); ++j) {
    EXPECT_EQ(dense_model.coefficients()[j], sparse_model.coefficients()[j]);
  }
  EXPECT_EQ(dense_model.intercept(), sparse_model.intercept());

  LinearSvmOptions svm_options;
  svm_options.solver = LinearSolver::kLbfgs;
  svm_options.lbfgs_max_iterations = 25;
  LinearSvm dense_svm(svm_options), sparse_svm(svm_options);
  dense_svm.FitView(FeatureView(dense), fm.labels(), {});
  sparse_svm.FitView(FeatureView(sparse), fm.labels(), {});
  ASSERT_EQ(dense_svm.coefficients().size(), sparse_svm.coefficients().size());
  for (size_t j = 0; j < dense_svm.coefficients().size(); ++j) {
    EXPECT_EQ(dense_svm.coefficients()[j], sparse_svm.coefficients()[j]);
  }
}

TEST(SparseEquivalenceTest, SgdSparsePathAgreesWithDenseWithinTolerance) {
  const FeatureMatrix fm = DenseProblem(150, 5, 9);
  const Matrix dense = fm.ToMatrix();
  const SparseFeatureMatrix sparse = SparseFeatureMatrix::FromDense(fm);

  LogisticRegression dense_lr, sparse_lr;  // default kSgd
  dense_lr.FitView(FeatureView(dense), fm.labels(), {});
  sparse_lr.FitView(FeatureView(sparse), fm.labels(), {});
  // The deferred-scaling sparse loop performs the same mathematical
  // updates in a different floating-point factoring, so weights agree
  // closely but not bit-for-bit.
  ASSERT_EQ(dense_lr.coefficients().size(), sparse_lr.coefficients().size());
  for (size_t j = 0; j < dense_lr.coefficients().size(); ++j) {
    EXPECT_NEAR(dense_lr.coefficients()[j], sparse_lr.coefficients()[j], 1e-6);
  }
  EXPECT_NEAR(dense_lr.intercept(), sparse_lr.intercept(), 1e-6);

  LinearSvm dense_svm, sparse_svm;  // default Pegasos
  dense_svm.FitView(FeatureView(dense), fm.labels(), {});
  sparse_svm.FitView(FeatureView(sparse), fm.labels(), {});
  ASSERT_EQ(dense_svm.coefficients().size(), sparse_svm.coefficients().size());
  for (size_t j = 0; j < dense_svm.coefficients().size(); ++j) {
    EXPECT_NEAR(dense_svm.coefficients()[j], sparse_svm.coefficients()[j],
                1e-6);
  }
}

// ---------- Culled sparse weight persistence ----------

TEST(SparseWeightsTest, CulledRoundTripDropsOnlySmallEntries) {
  const std::vector<double> w = {0.5, 1e-12, 0.0, -0.25, 5e-9, 3.0};
  artifact::Encoder encoder;
  EncodeWeightVector(&encoder, w, 1e-8);
  artifact::Decoder decoder(encoder.bytes());
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeWeightVector(&decoder, &decoded).ok());
  ASSERT_TRUE(decoder.ExpectEnd().ok());
  ASSERT_EQ(decoded.size(), w.size());
  EXPECT_EQ(decoded[0], 0.5);
  EXPECT_EQ(decoded[1], 0.0);  // culled
  EXPECT_EQ(decoded[2], 0.0);
  EXPECT_EQ(decoded[3], -0.25);
  EXPECT_EQ(decoded[4], 0.0);  // culled
  EXPECT_EQ(decoded[5], 3.0);
  EXPECT_EQ(CountAboveEpsilon(w, 1e-8), 3u);
}

TEST(SparseWeightsTest, NegativeEpsilonIsByteIdenticalToDenseLayout) {
  const std::vector<double> w = {0.5, 0.0, -1.25};
  artifact::Encoder culled_off, historical;
  EncodeWeightVector(&culled_off, w, -1.0);
  historical.PutDoubleVec(w);
  EXPECT_EQ(culled_off.bytes(), historical.bytes());
}

TEST(SparseWeightsTest, TruncationAtEveryPrefixFailsCleanly) {
  std::vector<double> w(64, 0.0);
  Rng rng(13);
  for (size_t j = 0; j < w.size(); j += 3) w[j] = rng.NextDouble() - 0.5;
  artifact::Encoder encoder;
  EncodeWeightVector(&encoder, w, 1e-8);
  const std::vector<uint8_t>& bytes = encoder.bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    artifact::Decoder decoder(
        std::span<const uint8_t>(bytes.data(), len));
    std::vector<double> decoded;
    const Status status = DecodeWeightVector(&decoder, &decoded);
    // A strict prefix can never satisfy the full encoding; the decoder
    // must reject it (bounds-checked before any allocation) and the
    // remaining-bytes check makes a silent short read impossible.
    EXPECT_FALSE(status.ok()) << "prefix length " << len;
  }
}

TEST(SparseWeightsTest, ByteFlipFuzzNeverCrashesOrOverAllocates) {
  std::vector<double> w(48, 0.0);
  Rng rng(29);
  for (size_t j = 0; j < w.size(); j += 4) w[j] = rng.NextDouble() + 0.5;
  artifact::Encoder encoder;
  EncodeWeightVector(&encoder, w, 1e-8);
  const std::vector<uint8_t> bytes = encoder.bytes();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[pos] ^= 0xFF;
    artifact::Decoder decoder(corrupt);
    std::vector<double> decoded;
    const Status status = DecodeWeightVector(&decoder, &decoded);
    // Inside a TERA artifact the section CRC catches every flip before
    // this decoder runs; standalone, a flip must either be rejected or
    // decode to a structurally sound vector — never crash, never trip
    // the dimension ceiling into a huge allocation.
    if (status.ok()) {
      EXPECT_LE(decoded.size(), kMaxWeightDimension);
      for (double v : decoded) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(SparseWeightsTest, ModelSaveLoadRoundTripsThroughCulledLayout) {
  const FeatureMatrix fm = DenseProblem(100, 6, 21);
  const SparseFeatureMatrix sparse = SparseFeatureMatrix::FromDense(fm);

  LogisticRegressionOptions options;
  options.solver = LinearSolver::kLbfgs;
  options.lbfgs_max_iterations = 20;
  options.save_cull_epsilon = 1e-8;
  LogisticRegression trained(options);
  trained.FitView(FeatureView(sparse), fm.labels(), {});

  artifact::Encoder encoder;
  ASSERT_TRUE(trained.SaveState(&encoder).ok());
  LogisticRegression restored;
  artifact::Decoder decoder(encoder.bytes());
  ASSERT_TRUE(restored.LoadState(&decoder).ok());
  for (size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_NEAR(restored.PredictProbaSparse(sparse.Row(i)),
                trained.PredictProbaSparse(sparse.Row(i)), 1e-9);
  }

  LinearSvmOptions svm_options;
  svm_options.solver = LinearSolver::kLbfgs;
  svm_options.lbfgs_max_iterations = 20;
  svm_options.save_cull_epsilon = 1e-8;
  LinearSvm trained_svm(svm_options);
  trained_svm.FitView(FeatureView(sparse), fm.labels(), {});
  artifact::Encoder svm_encoder;
  ASSERT_TRUE(trained_svm.SaveState(&svm_encoder).ok());
  LinearSvm restored_svm;
  artifact::Decoder svm_decoder(svm_encoder.bytes());
  ASSERT_TRUE(restored_svm.LoadState(&svm_decoder).ok());
  for (size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_NEAR(restored_svm.PredictProbaSparse(sparse.Row(i)),
                trained_svm.PredictProbaSparse(sparse.Row(i)), 1e-9);
  }
}

// ---------- Solver convergence ----------

double LogLossObjective(const Matrix& x, const std::vector<int>& y,
                        const std::vector<double>& w, double bias, double l2) {
  double loss = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    const double z =
        bias + kernels::Dot(w, std::span<const double>(x.Row(i), x.cols()));
    loss += std::max(z, 0.0) + std::log1p(std::exp(-std::fabs(z))) -
            static_cast<double>(y[i]) * z;
  }
  loss /= static_cast<double>(x.rows());
  for (double v : w) loss += 0.5 * l2 * v * v;
  return loss;
}

TEST(SolverConvergenceTest, LbfgsReachesSgdObjectiveInTenthOfEpochs) {
  // Overlapping classes (the bench's construction, scaled down): the
  // optimum is strictly positive, so reaching the SGD objective means
  // real convergence, not float dust around zero.
  const size_t n = 800, m = 16;
  Matrix x(n, m);
  std::vector<int> y(n);
  Rng rng(1377);
  for (size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    const double shift = y[i] == 1 ? 0.1 : -0.1;
    for (size_t d = 0; d < m; ++d) x(i, d) = shift + rng.NextDouble() - 0.5;
  }

  LogisticRegressionOptions sgd_options;  // 200 SGD epochs
  LogisticRegression sgd(sgd_options);
  sgd.Fit(x, y);
  const double sgd_objective = LogLossObjective(
      x, y, sgd.coefficients(), sgd.intercept(), sgd_options.l2);

  LogisticRegressionOptions lbfgs_options;
  lbfgs_options.solver = LinearSolver::kLbfgs;
  lbfgs_options.lbfgs_max_iterations = sgd_options.epochs / 10;
  LogisticRegression lbfgs(lbfgs_options);
  lbfgs.Fit(x, y);
  const double lbfgs_objective = LogLossObjective(
      x, y, lbfgs.coefficients(), lbfgs.intercept(), lbfgs_options.l2);

  EXPECT_LE(lbfgs_objective, sgd_objective + 1e-9)
      << "L-BFGS " << lbfgs_objective << " vs SGD " << sgd_objective;
}

// ---------- Thread-count invariance ----------

double TestLogLoss(double margin, int label, double sample_w,
                   double* dmargin) {
  const double p = 1.0 / (1.0 + std::exp(-margin));
  *dmargin = sample_w * (p - static_cast<double>(label));
  return sample_w * (std::max(margin, 0.0) +
                     std::log1p(std::exp(-std::fabs(margin))) -
                     static_cast<double>(label) * margin);
}

TEST(ThreadInvarianceTest, LossAndGradientBitIdenticalAt1And8Threads) {
  const size_t dims = 512;
  SparseFeatureMatrix x(dims);
  Rng rng(55);
  std::vector<uint32_t> indices;
  std::vector<double> values;
  for (size_t i = 0; i < 200; ++i) {
    indices.clear();
    values.clear();
    for (uint32_t j = 0; j < dims; ++j) {
      if (rng.NextDouble() < 0.05) {
        indices.push_back(j);
        values.push_back(rng.NextDouble() * 2.0 - 1.0);
      }
    }
    x.AppendRow(indices, values, static_cast<int>(i % 2));
  }
  std::vector<double> w(dims);
  for (double& v : w) v = rng.NextDouble() - 0.5;

  const FeatureView view(x);
  std::vector<double> grad1(dims, 0.0), grad8(dims, 0.0);
  double bias_grad1 = 0.0, bias_grad8 = 0.0;
  auto loss1 = WeightedLinearLossGrad(view, x.labels(), {}, w, 0.3,
                                      &TestLogLoss, grad1, &bias_grad1,
                                      ExecutionContext::Unlimited(), 1);
  auto loss8 = WeightedLinearLossGrad(view, x.labels(), {}, w, 0.3,
                                      &TestLogLoss, grad8, &bias_grad8,
                                      ExecutionContext::Unlimited(), 8);
  ASSERT_TRUE(loss1.ok());
  ASSERT_TRUE(loss8.ok());
  EXPECT_EQ(loss1.value(), loss8.value());
  EXPECT_EQ(bias_grad1, bias_grad8);
  EXPECT_EQ(grad1, grad8);
}

// ---------- SparseScaler ----------

TEST(SparseScalerTest, FitsRmsScalesWithoutDensifying) {
  SparseFeatureMatrix x = SmallCsr();
  SparseScaler scaler;
  scaler.Fit(x);
  ASSERT_EQ(scaler.scales().size(), 8u);
  // Column 3 holds {-2, 2} over 2 rows: rms = sqrt(8/2) = 2.
  EXPECT_NEAR(scaler.scales()[3], 0.5, 1e-12);
  // Untouched columns keep the identity scale.
  EXPECT_EQ(scaler.scales()[2], 1.0);

  scaler.TransformInPlace(&x);
  EXPECT_NEAR(x.Row(0).values[1], -1.0, 1e-12);  // -2 * 0.5
  EXPECT_EQ(x.nnz(), 5u);  // the pattern never grows

  // TransformRow applies the same scales to a serving-side row.
  std::vector<uint32_t> row_idx = {3};
  std::vector<double> row_val = {4.0};
  scaler.TransformRow(row_idx, row_val);
  EXPECT_NEAR(row_val[0], 2.0, 1e-12);
}

TEST(SparseScalerTest, RefusesCenteringWithStructuredDiagnostic) {
  const SparseFeatureMatrix x = SmallCsr();
  SparseScalerOptions options;
  options.center = true;
  SparseScaler scaler(options);
  RunDiagnostics diagnostics;
  scaler.Fit(x, &diagnostics);
  EXPECT_TRUE(diagnostics.HasKind(DegradationKind::kSparseCenteringRefused));
  // The refusal is graceful: scale-only fitting still happened.
  EXPECT_EQ(scaler.scales().size(), 8u);
  EXPECT_NEAR(scaler.scales()[3], 0.5, 1e-12);
}

TEST(SparseScalerTest, SaveLoadRoundTrip) {
  SparseScaler scaler;
  scaler.Fit(SmallCsr());
  artifact::Encoder encoder;
  ASSERT_TRUE(scaler.SaveState(&encoder).ok());
  SparseScaler restored;
  artifact::Decoder decoder(encoder.bytes());
  ASSERT_TRUE(restored.LoadState(&decoder).ok());
  EXPECT_EQ(restored.scales(), scaler.scales());
}

// ---------- Sparse embedder output ----------

TEST(SparseEmbedderTest, EmbedPairSparseProducesAValidCsrRow) {
  CharNgramEmbedderOptions options;
  options.sparse_dimension = size_t{1} << 10;
  const CharNgramEmbedder embedder(options);
  std::vector<uint32_t> indices;
  std::vector<double> values;
  embedder.EmbedPairSparse({"john smith", "main st"},
                           {"jon smith", "main street"}, &indices, &values);
  ASSERT_EQ(indices.size(), values.size());
  ASSERT_FALSE(indices.empty());
  const size_t pair_dim = embedder.SparsePairDimension(2);
  for (size_t k = 0; k < indices.size(); ++k) {
    EXPECT_LT(indices[k], pair_dim);
    if (k > 0) {
      EXPECT_LT(indices[k - 1], indices[k]);
    }
    EXPECT_TRUE(std::isfinite(values[k]));
    EXPECT_NE(values[k], 0.0);  // exact zeros are dropped
  }
  // The row passes the strict CSR gate end to end.
  SparseFeatureMatrix matrix(pair_dim);
  matrix.AppendRow(indices, values, kMatch);
  ValidationOptions validation;
  EXPECT_TRUE(matrix.Validate(validation).ok());
}

// ---------- Run-options fit dispatch ----------

TEST(SparseFitDispatchTest, LinearModelsTrainSparseOthersFallBackDense) {
  const FeatureMatrix fm = DenseProblem(80, 5, 42);
  RunDiagnostics diagnostics;
  TransferRunOptions run_options;
  run_options.sparse_features = true;
  run_options.diagnostics = &diagnostics;

  LogisticRegression lr;
  FitClassifierWithRunOptions(&lr, fm, fm.labels(), {}, run_options);
  EXPECT_FALSE(diagnostics.HasKind(DegradationKind::kSparseFitUnsupported));
  EXPECT_FALSE(lr.coefficients().empty());

  RandomForestOptions forest_options;
  forest_options.num_trees = 4;
  RandomForest forest(forest_options);
  FitClassifierWithRunOptions(&forest, fm, fm.labels(), {}, run_options);
  EXPECT_TRUE(diagnostics.HasKind(DegradationKind::kSparseFitUnsupported));
  // The fallback still trained a usable model.
  const double p = forest.PredictProba(fm.Row(0));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace transer

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/metrics_util.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/sampling.h"
#include "ml/scaler.h"
#include "util/random.h"

namespace transer {
namespace {

/// Two-Gaussian binary problem with the given separation.
struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs MakeBlobs(size_t n_per_class, size_t dims, double separation,
                uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.x = Matrix(2 * n_per_class, dims);
  blobs.y.resize(2 * n_per_class);
  for (size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    blobs.y[i] = label;
    const double center = label == 0 ? 0.0 : separation;
    for (size_t d = 0; d < dims; ++d) {
      blobs.x(i, d) = rng.Gaussian(center, 1.0);
    }
  }
  return blobs;
}

// ---------- StandardScaler ----------

TEST(ScalerTest, ProducesZeroMeanUnitVariance) {
  Rng rng(51);
  Matrix x(500, 3);
  for (size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.Gaussian(10.0, 4.0);
    x(i, 1) = rng.Gaussian(-3.0, 0.5);
    x(i, 2) = rng.Uniform(0.0, 100.0);
  }
  StandardScaler scaler;
  const Matrix z = scaler.FitTransform(x);
  for (size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < z.rows(); ++i) mean += z(i, c);
    mean /= static_cast<double>(z.rows());
    for (size_t i = 0; i < z.rows(); ++i) {
      var += (z(i, c) - mean) * (z(i, c) - mean);
    }
    var /= static_cast<double>(z.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(ScalerTest, ConstantFeatureStaysFinite) {
  Matrix x(10, 1, 7.0);
  StandardScaler scaler;
  const Matrix z = scaler.FitTransform(x);
  for (size_t i = 0; i < z.rows(); ++i) {
    EXPECT_TRUE(std::isfinite(z(i, 0)));
    EXPECT_DOUBLE_EQ(z(i, 0), 0.0);
  }
}

TEST(ScalerTest, TransformInPlaceMatchesTransform) {
  Blobs blobs = MakeBlobs(50, 3, 2.0, 52);
  StandardScaler scaler;
  const Matrix z = scaler.FitTransform(blobs.x);
  std::vector<double> row = blobs.x.RowVector(7);
  scaler.TransformInPlace(&row);
  for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(row[c], z(7, c), 1e-12);
}

// ---------- Classifier suite: parameterized learning test ----------

using MakeFn = std::unique_ptr<Classifier> (*)();

std::unique_ptr<Classifier> MakeLr() {
  return std::make_unique<LogisticRegression>();
}
std::unique_ptr<Classifier> MakeSvm() {
  return std::make_unique<LinearSvm>();
}
std::unique_ptr<Classifier> MakeDt() {
  return std::make_unique<DecisionTree>();
}
std::unique_ptr<Classifier> MakeRf() {
  return std::make_unique<RandomForest>();
}
std::unique_ptr<Classifier> MakeNb() {
  return std::make_unique<GaussianNaiveBayes>();
}
std::unique_ptr<Classifier> MakeMlp() { return std::make_unique<Mlp>(); }

class ClassifierContractTest : public ::testing::TestWithParam<MakeFn> {};

TEST_P(ClassifierContractTest, LearnsSeparableBlobs) {
  const Blobs train = MakeBlobs(150, 4, 4.0, 61);
  const Blobs test = MakeBlobs(50, 4, 4.0, 62);
  auto classifier = GetParam()();
  classifier->Fit(train.x, train.y);
  EXPECT_GT(Accuracy(test.y, classifier->PredictAll(test.x)), 0.95)
      << classifier->name();
}

TEST_P(ClassifierContractTest, ProbabilitiesAreValidAndOrdered) {
  const Blobs train = MakeBlobs(150, 2, 5.0, 63);
  auto classifier = GetParam()();
  classifier->Fit(train.x, train.y);
  // Probabilities in [0,1]; deep in class-1 territory beats deep in
  // class-0 territory.
  const std::vector<double> deep_one = {5.0, 5.0};
  const std::vector<double> deep_zero = {0.0, 0.0};
  const double p1 = classifier->PredictProba(deep_one);
  const double p0 = classifier->PredictProba(deep_zero);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p1, 1.0);
  EXPECT_GE(p0, 0.0);
  EXPECT_LE(p0, 1.0);
  EXPECT_GT(p1, p0) << classifier->name();
  EXPECT_GT(p1, 0.5) << classifier->name();
  EXPECT_LT(p0, 0.5) << classifier->name();
}

TEST_P(ClassifierContractTest, SampleWeightsShiftTheDecision) {
  // Conflicting labels at the same point: the heavier class must win.
  Matrix x = {{0.0}, {0.0}, {0.0}, {0.0}};
  std::vector<int> y = {1, 1, 0, 0};
  auto classifier = GetParam()();
  classifier->Fit(x, y, {10.0, 10.0, 0.1, 0.1});
  EXPECT_GT(classifier->PredictProba(std::vector<double>{0.0}), 0.5)
      << classifier->name();
  auto classifier2 = GetParam()();
  classifier2->Fit(x, y, {0.1, 0.1, 10.0, 10.0});
  EXPECT_LT(classifier2->PredictProba(std::vector<double>{0.0}), 0.5)
      << classifier2->name();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ClassifierContractTest,
                         ::testing::Values(&MakeLr, &MakeSvm, &MakeDt,
                                           &MakeRf, &MakeNb, &MakeMlp));

// ---------- model-specific behaviour ----------

TEST(LogisticRegressionTest, CoefficientsPointTowardPositiveClass) {
  const Blobs train = MakeBlobs(200, 1, 3.0, 64);
  LogisticRegression lr;
  lr.Fit(train.x, train.y);
  EXPECT_GT(lr.coefficients()[0], 0.0);
}

TEST(LinearSvmTest, DecisionFunctionSignMatchesClass) {
  const Blobs train = MakeBlobs(200, 2, 4.0, 65);
  LinearSvm svm;
  svm.Fit(train.x, train.y);
  EXPECT_GT(svm.DecisionFunction(std::vector<double>{4.0, 4.0}), 0.0);
  EXPECT_LT(svm.DecisionFunction(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(DecisionTreeTest, PerfectlySeparableDataFitsExactly) {
  Matrix x = {{0.1}, {0.2}, {0.8}, {0.9}};
  std::vector<int> y = {0, 0, 1, 1};
  DecisionTree tree;
  tree.Fit(x, y);
  EXPECT_EQ(tree.PredictAll(x), y);
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  const Blobs train = MakeBlobs(300, 3, 1.0, 66);
  DecisionTreeOptions options;
  options.max_depth = 3;
  options.min_samples_split = 2;
  DecisionTree tree(options);
  tree.Fit(train.x, train.y);
  EXPECT_LE(tree.Depth(), 4u);  // root at depth 1
}

TEST(DecisionTreeTest, PureLeafProbabilityIsExact) {
  Matrix x = {{0.0}, {0.1}, {0.9}, {1.0}};
  std::vector<int> y = {0, 0, 1, 1};
  DecisionTree tree;
  tree.Fit(x, y);
  // Pure leaves report exact probabilities (sklearn behaviour), which
  // TransER's t_p = 0.99 confidence filter depends on.
  EXPECT_DOUBLE_EQ(tree.PredictProba(std::vector<double>{1.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.PredictProba(std::vector<double>{0.0}), 0.0);
}

TEST(RandomForestTest, BuildsRequestedTreeCount) {
  const Blobs train = MakeBlobs(50, 2, 3.0, 67);
  RandomForestOptions options;
  options.num_trees = 11;
  RandomForest forest(options);
  forest.Fit(train.x, train.y);
  EXPECT_EQ(forest.tree_count(), 11u);
}

TEST(RandomForestTest, OutperformsSingleTreeOnNoisyData) {
  const Blobs train = MakeBlobs(300, 6, 1.2, 68);
  const Blobs test = MakeBlobs(300, 6, 1.2, 69);
  DecisionTree tree;
  tree.Fit(train.x, train.y);
  RandomForest forest;
  forest.Fit(train.x, train.y);
  const double tree_acc = Accuracy(test.y, tree.PredictAll(test.x));
  const double forest_acc = Accuracy(test.y, forest.PredictAll(test.x));
  EXPECT_GE(forest_acc, tree_acc - 0.02);  // forest at least on par
}

TEST(NaiveBayesTest, SingleClassTrainingPredictsThatClass) {
  Matrix x = {{0.5}, {0.6}};
  std::vector<int> y = {1, 1};
  GaussianNaiveBayes nb;
  nb.Fit(x, y);
  EXPECT_DOUBLE_EQ(nb.PredictProba(std::vector<double>{0.55}), 1.0);
}

TEST(MlpTest, LearnsXorWithHiddenLayer) {
  // XOR is not linearly separable; hidden units are required.
  Matrix x = {{0.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}, {1.0, 1.0}};
  std::vector<int> y = {0, 1, 1, 0};
  MlpOptions options;
  options.hidden = {16};
  options.epochs = 2000;
  options.learning_rate = 0.1;
  options.seed = 70;
  Mlp mlp(options);
  // Replicate the four points so SGD sees enough samples.
  Matrix big(400, 2);
  std::vector<int> big_y(400);
  for (size_t i = 0; i < 400; ++i) {
    for (size_t c = 0; c < 2; ++c) big(i, c) = x(i % 4, c);
    big_y[i] = y[i % 4];
  }
  mlp.Fit(big, big_y);
  EXPECT_EQ(mlp.PredictAll(x), y);
}

TEST(DannTest, AbortCallbackStopsTraining) {
  const Blobs source = MakeBlobs(50, 3, 3.0, 71);
  const Blobs target = MakeBlobs(50, 3, 3.0, 72);
  DannOptions options;
  options.epochs = 100;
  DomainAdversarialMlp dann(options);
  int calls = 0;
  dann.Fit(source.x, source.y, target.x, [&calls]() { return ++calls > 3; });
  EXPECT_LE(dann.epochs_run(), 4);
}

TEST(DannTest, LearnsSourceTaskWhenDomainsMatch) {
  const Blobs source = MakeBlobs(200, 3, 4.0, 73);
  const Blobs target = MakeBlobs(200, 3, 4.0, 74);
  DannOptions options;
  options.epochs = 30;
  DomainAdversarialMlp dann(options);
  dann.Fit(source.x, source.y, target.x);
  const std::vector<double> proba = dann.PredictProbaAll(target.x);
  std::vector<int> predicted(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    predicted[i] = proba[i] >= 0.5 ? 1 : 0;
  }
  EXPECT_GT(Accuracy(target.y, predicted), 0.9);
}

// ---------- sampling ----------

TEST(SamplingTest, UndersampleEnforcesRatio) {
  std::vector<int> labels(100, 0);
  for (size_t i = 0; i < 10; ++i) labels[i] = 1;
  Rng rng(75);
  const auto kept = UndersampleNonMatches(labels, 3.0, &rng);
  size_t matches = 0, nonmatches = 0;
  for (size_t index : kept) {
    (labels[index] == 1 ? matches : nonmatches) += 1;
  }
  EXPECT_EQ(matches, 10u);
  EXPECT_EQ(nonmatches, 30u);
}

TEST(SamplingTest, UndersampleKeepsAllWhenAlreadyBalanced) {
  std::vector<int> labels = {1, 1, 0, 0};
  Rng rng(76);
  EXPECT_EQ(UndersampleNonMatches(labels, 3.0, &rng).size(), 4u);
}

TEST(SamplingTest, StratifiedSplitPreservesClassMix) {
  std::vector<int> labels(200, 0);
  for (size_t i = 0; i < 40; ++i) labels[i] = 1;
  Rng rng(77);
  const auto [train, test] = StratifiedSplit(labels, 0.25, &rng);
  EXPECT_EQ(train.size() + test.size(), 200u);
  size_t test_matches = 0;
  for (size_t index : test) test_matches += labels[index] == 1 ? 1 : 0;
  EXPECT_EQ(test_matches, 10u);  // 25% of 40
}

TEST(SamplingTest, RandomSubsetSizeAndRange) {
  Rng rng(78);
  const auto subset = RandomSubset(100, 0.3, &rng);
  EXPECT_EQ(subset.size(), 30u);
  for (size_t v : subset) EXPECT_LT(v, 100u);
}

// ---------- metrics_util ----------

TEST(MetricsUtilTest, AccuracyAndLogLoss) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_NEAR(LogLoss({1}, {1.0}), 0.0, 1e-9);
  EXPECT_GT(LogLoss({1}, {0.01}), 4.0);
}

TEST(MetricsUtilTest, CrossValidationOnSeparableData) {
  const Blobs blobs = MakeBlobs(100, 3, 4.0, 79);
  const double acc = CrossValidatedAccuracy(
      []() -> std::unique_ptr<Classifier> {
        return std::make_unique<LogisticRegression>();
      },
      blobs.x, blobs.y, 5, 80);
  EXPECT_GT(acc, 0.95);
}

// ---------- default suite ----------

TEST(DefaultSuiteTest, HasTheFourPaperFamilies) {
  const auto suite = DefaultClassifierSuite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "svm");
  EXPECT_EQ(suite[1].name, "random_forest");
  EXPECT_EQ(suite[2].name, "logistic_regression");
  EXPECT_EQ(suite[3].name, "decision_tree");
  for (const auto& family : suite) {
    auto classifier = family.make();
    ASSERT_NE(classifier, nullptr);
  }
}

}  // namespace
}  // namespace transer

// Reproduces Table 3: feature-matrix sizes and runtimes (seconds) of
// TransER and all baselines per scenario. Runtimes cover the full
// classifier-suite protocol of Table 2 (four runs per method), matching
// how the paper timed its experiments. 'TE' / 'ME' mark the scaled
// time / memory caps.
//
// Flags: --scale (default 0.015), --time-limit (default 30 s/run),
//        --memory-limit-mb (default 64), --seed,
//        --checkpoint=<path.jsonl> (journal completed cells; a re-run
//        resumes, reusing journaled runtimes for completed cells).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "data/scenario.h"
#include "eval/table_printer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace transer {
namespace {

int Main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  ScenarioScale scale;
  scale.scale = flags.GetDouble("scale", 0.015);
  scale.seed = static_cast<uint64_t>(flags.GetInt("seed", 33));
  TransferRunOptions run_options;
  run_options.time_limit_seconds = flags.GetDouble("time-limit", 30.0);
  run_options.memory_limit_bytes =
      static_cast<size_t>(flags.GetInt("memory-limit-mb", 64)) << 20;
  run_options.seed = scale.seed;

  SetLogLevel(LogLevel::kError);
  std::printf(
      "Table 3: feature-matrix sizes and runtimes in seconds (sum over the\n"
      "4-classifier suite). scale=%.4g, limits: %.0fs/run, %zu MB.\n\n",
      scale.scale, run_options.time_limit_seconds,
      run_options.memory_limit_bytes >> 20);

  const auto methods = DefaultMethodLineup();
  std::vector<std::string> header = {"Scenario", "|X^S|", "|X^T|"};
  for (const auto& method : methods) header.push_back(method->name());
  TablePrinter table(header);

  std::vector<TransferScenario> scenarios;
  for (ScenarioId id : AllScenarioIds()) {
    scenarios.push_back(BuildScenario(id, scale));
  }
  SweepOptions sweep_options;
  sweep_options.checkpoint_path = flags.GetString("checkpoint", "");
  sweep_options.base_options = run_options;
  auto sweep = RunCheckpointedSweep(methods, scenarios,
                                    DefaultClassifierSuite(), sweep_options);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }

  for (size_t s = 0; s < scenarios.size(); ++s) {
    const TransferScenario& scenario = scenarios[s];
    std::vector<std::string> row = {scenario.name,
                                    std::to_string(scenario.source.size()),
                                    std::to_string(scenario.target.size())};
    for (size_t m = 0; m < methods.size(); ++m) {
      const MethodScenarioResult& result =
          sweep.value()[s * methods.size() + m];
      if (!result.failure.empty() && result.completed_runs == 0) {
        row.push_back(result.failure);
      } else {
        row.push_back(StrFormat("%.2f", result.total_runtime_seconds));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected ordering (paper Section 5.2.2): Naive and Coral are the\n"
      "fastest, TransER third, then DR; the deep DTAL* is the slowest and\n"
      "TCA exceeds memory on mid-sized data.\n");
  return 0;
}

}  // namespace
}  // namespace transer

int main(int argc, char** argv) { return transer::Main(argc, argv); }

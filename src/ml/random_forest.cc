#include "ml/random_forest.h"

#include <cmath>
#include <memory>

#include "util/artifact_io.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace transer {

void RandomForest::Fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  trees_.clear();
  if (x.rows() == 0) return;

  Rng rng(options_.seed);
  const size_t n = x.rows();

  DecisionTreeOptions tree_options = options_.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = static_cast<size_t>(
        std::max(1.0, std::floor(std::sqrt(static_cast<double>(x.cols())))));
  }

  // Bags and per-tree seeds are drawn up front from the single forest
  // stream — exactly the draws (and order) the serial loop made — so
  // every tree's training inputs are fixed before any tree fits and the
  // forest is bit-identical at any thread count.
  struct TreePlan {
    std::vector<double> bag_weights;
    uint64_t seed = 0;
  };
  std::vector<TreePlan> plans(options_.num_trees);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample expressed through multiplicative sample weights so
    // user-provided weights compose with bagging.
    plans[t].bag_weights.assign(n, 0.0);
    for (size_t draw = 0; draw < n; ++draw) {
      plans[t].bag_weights[rng.NextUint64Below(n)] += 1.0;
    }
    if (!weights.empty()) {
      for (size_t i = 0; i < n; ++i) plans[t].bag_weights[i] *= weights[i];
    }
    plans[t].seed = rng.NextUint64();
  }

  std::vector<std::unique_ptr<DecisionTree>> slots(options_.num_trees);
  ParallelOptions par;
  par.num_threads = options_.num_threads;
  const Status fitted = ParallelFor(
      ExecutionContext::Unlimited(), "random_forest", options_.num_trees,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t t = begin; t < end; ++t) {
          // Interruption is graceful, not an error: unfitted slots stay
          // empty and the caller surfaces the status via Check.
          if (FitInterrupted()) return Status::OK();
          DecisionTreeOptions slot_options = tree_options;
          slot_options.seed = plans[t].seed;
          auto tree = std::make_unique<DecisionTree>(slot_options);
          tree->set_execution_context(execution_context());
          tree->Fit(x, y, plans[t].bag_weights);
          slots[t] = std::move(tree);
        }
        return Status::OK();
      },
      par);
  TRANSER_CHECK(fitted.ok());

  // Keep the longest filled prefix, mirroring the serial loop's
  // stop-at-interruption behaviour.
  trees_.reserve(options_.num_trees);
  for (auto& slot : slots) {
    if (slot == nullptr) break;
    trees_.push_back(std::move(*slot));
  }
}

Status RandomForest::SaveState(artifact::Encoder* out) const {
  out->PutU64(options_.num_trees);
  out->PutU64(options_.seed);
  out->PutU64(trees_.size());
  for (const DecisionTree& tree : trees_) {
    TRANSER_RETURN_IF_ERROR(tree.SaveState(out));
  }
  return Status::OK();
}

Status RandomForest::LoadState(artifact::Decoder* in) {
  RandomForestOptions options = options_;
  uint64_t num_trees = 0;
  TRANSER_RETURN_IF_ERROR(in->GetU64(&num_trees));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&options.seed));
  uint64_t tree_count = 0;
  TRANSER_RETURN_IF_ERROR(in->GetU64(&tree_count));
  // Each serialised tree costs at least its fixed fields (~60 bytes).
  if (num_trees > 1u << 20 || tree_count > num_trees ||
      tree_count > in->remaining() / 56) {
    return Status::InvalidArgument("random forest tree count is implausible");
  }
  options.num_trees = static_cast<size_t>(num_trees);
  std::vector<DecisionTree> trees;
  trees.reserve(tree_count);
  for (uint64_t t = 0; t < tree_count; ++t) {
    DecisionTree tree;
    TRANSER_RETURN_IF_ERROR(tree.LoadState(in));
    trees.push_back(std::move(tree));
  }
  options_ = options;
  trees_ = std::move(trees);
  return Status::OK();
}

double RandomForest::PredictProba(std::span<const double> features) const {
  if (trees_.empty()) return 0.5;
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.PredictProba(features);
  return total / static_cast<double>(trees_.size());
}

}  // namespace transer

#include "serve/request_codec.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "util/artifact_io.h"
#include "util/string_util.h"

namespace transer {
namespace serve {

namespace {

/// Payload discriminator, the first byte of every payload.
constexpr uint8_t kRequestMessage = 1;
constexpr uint8_t kResponseMessage = 2;

/// Highest DegradationKind a response may carry; a kind past this is a
/// frame from a newer build (or a crafted one) and is rejected.
constexpr uint8_t kMaxEventKind =
    static_cast<uint8_t>(DegradationKind::kServeArtifactRetried);

uint32_t ReadU32At(std::span<const uint8_t> bytes, size_t offset) {
  return static_cast<uint32_t>(bytes[offset]) |
         static_cast<uint32_t>(bytes[offset + 1]) << 8 |
         static_cast<uint32_t>(bytes[offset + 2]) << 16 |
         static_cast<uint32_t>(bytes[offset + 3]) << 24;
}

/// Strips and checks the magic/length/CRC framing, returning the
/// payload span. The CRC is verified before any payload structure is
/// parsed, so a flip anywhere in payload or trailer is caught here.
Result<std::span<const uint8_t>> UnwrapFrame(std::span<const uint8_t> frame,
                                             const CodecLimits& limits) {
  if (frame.size() < kFrameOverheadBytes) {
    return Status::InvalidArgument(StrFormat(
        "frame of %zu bytes is shorter than the %zu-byte framing",
        frame.size(), kFrameOverheadBytes));
  }
  if (std::memcmp(frame.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::InvalidArgument("frame does not start with the TSRV magic");
  }
  if (frame.size() > limits.max_frame_bytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %zu bytes exceeds the %zu-byte limit",
                  frame.size(), limits.max_frame_bytes));
  }
  const uint32_t payload_len = ReadU32At(frame, sizeof(kFrameMagic));
  if (static_cast<size_t>(payload_len) !=
      frame.size() - kFrameOverheadBytes) {
    return Status::InvalidArgument(StrFormat(
        "frame length field %u disagrees with the %zu payload bytes "
        "present",
        payload_len, frame.size() - kFrameOverheadBytes));
  }
  const std::span<const uint8_t> payload =
      frame.subspan(sizeof(kFrameMagic) + 4, payload_len);
  const uint32_t stored_crc = ReadU32At(frame, frame.size() - 4);
  const uint32_t actual_crc =
      artifact::Crc32(payload.data(), payload.size());
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument(
        StrFormat("frame CRC mismatch (stored %08x, computed %08x)",
                  stored_crc, actual_crc));
  }
  return payload;
}

/// Shared payload prologue: message type, codec version, id, op.
Status DecodePrologue(artifact::Decoder* in, uint8_t expected_message,
                      uint64_t* request_id, RequestOp* op) {
  uint8_t message = 0;
  uint32_t version = 0;
  uint8_t op_byte = 0;
  TRANSER_RETURN_IF_ERROR(in->GetU8(&message));
  if (message != expected_message) {
    return Status::InvalidArgument(
        StrFormat("payload is message type %u, expected %u", message,
                  expected_message));
  }
  TRANSER_RETURN_IF_ERROR(in->GetU32(&version));
  if (version != kCodecVersion) {
    return Status::FailedPrecondition(
        StrFormat("frame is codec version %u; this build reads version %u",
                  version, kCodecVersion));
  }
  TRANSER_RETURN_IF_ERROR(in->GetU64(request_id));
  TRANSER_RETURN_IF_ERROR(in->GetU8(&op_byte));
  if (op_byte > static_cast<uint8_t>(RequestOp::kStats)) {
    return Status::InvalidArgument(
        StrFormat("unknown request op %u", op_byte));
  }
  *op = static_cast<RequestOp>(op_byte);
  return Status::OK();
}

}  // namespace

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kPing:
      return "ping";
    case RequestOp::kClassify:
      return "classify";
    case RequestOp::kResolve:
      return "resolve";
    case RequestOp::kStats:
      return "stats";
  }
  return "unknown";
}

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kOk:
      return "ok";
    case ServeOutcome::kDegraded:
      return "degraded";
    case ServeOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

Status ValidateRequest(const Request& request, const CodecLimits& limits) {
  const bool carries_data = request.op == RequestOp::kClassify ||
                            request.op == RequestOp::kResolve;
  if (!carries_data) {
    if (!request.feature_names.empty() || request.rows != 0 ||
        !request.features.empty()) {
      return Status::InvalidArgument(StrFormat(
          "%s request must not carry feature data",
          RequestOpName(request.op)));
    }
    return Status::OK();
  }
  if (request.feature_names.empty()) {
    return Status::InvalidArgument("request has no feature schema");
  }
  if (request.feature_names.size() > limits.max_features) {
    return Status::InvalidArgument(
        StrFormat("request schema of %zu features exceeds the limit of %zu",
                  request.feature_names.size(), limits.max_features));
  }
  for (const std::string& name : request.feature_names) {
    if (name.empty()) {
      return Status::InvalidArgument("request schema has an empty name");
    }
  }
  if (request.rows == 0) {
    return Status::InvalidArgument("request carries zero rows");
  }
  if (request.rows > limits.max_rows) {
    return Status::InvalidArgument(
        StrFormat("request of %llu rows exceeds the limit of %zu",
                  static_cast<unsigned long long>(request.rows),
                  limits.max_rows));
  }
  const size_t expected =
      static_cast<size_t>(request.rows) * request.feature_names.size();
  if (request.features.size() != expected) {
    return Status::InvalidArgument(StrFormat(
        "request carries %zu feature values, expected %zu (rows x schema)",
        request.features.size(), expected));
  }
  for (double value : request.features) {
    if (!std::isfinite(value)) {
      return Status::InvalidArgument(
          "request carries a non-finite feature value");
    }
  }
  return Status::OK();
}

std::vector<uint8_t> WrapFrame(std::vector<uint8_t> payload) {
  artifact::Encoder framed;
  for (char c : kFrameMagic) framed.PutU8(static_cast<uint8_t>(c));
  framed.PutU32(static_cast<uint32_t>(payload.size()));
  std::vector<uint8_t> out = framed.TakeBytes();
  const uint32_t crc = artifact::Crc32(payload.data(), payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  artifact::Encoder trailer;
  trailer.PutU32(crc);
  const std::vector<uint8_t>& trailer_bytes = trailer.bytes();
  out.insert(out.end(), trailer_bytes.begin(), trailer_bytes.end());
  return out;
}

std::vector<uint8_t> EncodeRequest(const Request& request) {
  artifact::Encoder out;
  out.PutU8(kRequestMessage);
  out.PutU32(kCodecVersion);
  out.PutU64(request.request_id);
  out.PutU8(static_cast<uint8_t>(request.op));
  out.PutU32(request.deadline_ms);
  out.PutStringVec(request.feature_names);
  out.PutU64(request.rows);
  out.PutDoubleVec(request.features);
  return WrapFrame(out.TakeBytes());
}

std::vector<uint8_t> EncodeResponse(const Response& response) {
  artifact::Encoder out;
  out.PutU8(kResponseMessage);
  out.PutU32(kCodecVersion);
  out.PutU64(response.request_id);
  out.PutU8(static_cast<uint8_t>(response.op));
  out.PutU8(static_cast<uint8_t>(response.outcome));
  out.PutString(response.model_id);
  out.PutU8(response.selected_by_probe ? 1 : 0);
  out.PutDouble(response.probe_similarity);
  out.PutDouble(response.server_ms);
  out.PutString(response.error);
  out.PutIntVec(response.labels);
  out.PutDoubleVec(response.confidences);
  out.PutString(response.stats_text);
  out.PutU64(response.events.size());
  for (const DegradationEvent& event : response.events) {
    out.PutU8(static_cast<uint8_t>(event.kind));
    out.PutString(event.phase);
    out.PutString(event.detail);
    out.PutDouble(event.original_value);
    out.PutDouble(event.adjusted_value);
  }
  return WrapFrame(out.TakeBytes());
}

Result<Request> DecodeRequest(std::span<const uint8_t> frame,
                              const CodecLimits& limits) {
  TRANSER_ASSIGN_OR_RETURN(std::span<const uint8_t> payload,
                           UnwrapFrame(frame, limits));
  artifact::Decoder in(payload);
  Request request;
  TRANSER_RETURN_IF_ERROR(
      DecodePrologue(&in, kRequestMessage, &request.request_id, &request.op));
  TRANSER_RETURN_IF_ERROR(in.GetU32(&request.deadline_ms));
  TRANSER_RETURN_IF_ERROR(in.GetStringVec(&request.feature_names));
  TRANSER_RETURN_IF_ERROR(in.GetU64(&request.rows));
  TRANSER_RETURN_IF_ERROR(in.GetDoubleVec(&request.features));
  TRANSER_RETURN_IF_ERROR(in.ExpectEnd());
  TRANSER_RETURN_IF_ERROR(ValidateRequest(request, limits));
  return request;
}

Result<Response> DecodeResponse(std::span<const uint8_t> frame,
                                const CodecLimits& limits) {
  TRANSER_ASSIGN_OR_RETURN(std::span<const uint8_t> payload,
                           UnwrapFrame(frame, limits));
  artifact::Decoder in(payload);
  Response response;
  TRANSER_RETURN_IF_ERROR(DecodePrologue(&in, kResponseMessage,
                                         &response.request_id, &response.op));
  uint8_t outcome = 0;
  uint8_t by_probe = 0;
  TRANSER_RETURN_IF_ERROR(in.GetU8(&outcome));
  if (outcome > static_cast<uint8_t>(ServeOutcome::kRejected)) {
    return Status::InvalidArgument(
        StrFormat("unknown serve outcome %u", outcome));
  }
  response.outcome = static_cast<ServeOutcome>(outcome);
  TRANSER_RETURN_IF_ERROR(in.GetString(&response.model_id));
  TRANSER_RETURN_IF_ERROR(in.GetU8(&by_probe));
  if (by_probe > 1) {
    return Status::InvalidArgument("probe flag is not 0/1");
  }
  response.selected_by_probe = by_probe == 1;
  TRANSER_RETURN_IF_ERROR(in.GetDouble(&response.probe_similarity));
  TRANSER_RETURN_IF_ERROR(in.GetDouble(&response.server_ms));
  TRANSER_RETURN_IF_ERROR(in.GetString(&response.error));
  TRANSER_RETURN_IF_ERROR(in.GetIntVec(&response.labels));
  TRANSER_RETURN_IF_ERROR(in.GetDoubleVec(&response.confidences));
  TRANSER_RETURN_IF_ERROR(in.GetString(&response.stats_text));
  uint64_t event_count = 0;
  TRANSER_RETURN_IF_ERROR(in.GetU64(&event_count));
  // Five fields of >= 1 byte each per event bounds the count by the
  // bytes actually remaining — a crafted count cannot over-allocate.
  if (event_count > in.remaining()) {
    return Status::InvalidArgument(
        StrFormat("event count %llu exceeds the remaining payload",
                  static_cast<unsigned long long>(event_count)));
  }
  response.events.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; i < event_count; ++i) {
    uint8_t kind = 0;
    DegradationEvent event;
    TRANSER_RETURN_IF_ERROR(in.GetU8(&kind));
    if (kind > kMaxEventKind) {
      return Status::InvalidArgument(
          StrFormat("unknown degradation kind %u in response", kind));
    }
    event.kind = static_cast<DegradationKind>(kind);
    TRANSER_RETURN_IF_ERROR(in.GetString(&event.phase));
    TRANSER_RETURN_IF_ERROR(in.GetString(&event.detail));
    TRANSER_RETURN_IF_ERROR(in.GetDouble(&event.original_value));
    TRANSER_RETURN_IF_ERROR(in.GetDouble(&event.adjusted_value));
    response.events.push_back(std::move(event));
  }
  TRANSER_RETURN_IF_ERROR(in.ExpectEnd());
  for (int label : response.labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("response label is not 0/1");
    }
  }
  if (!response.confidences.empty() &&
      response.confidences.size() != response.labels.size()) {
    return Status::InvalidArgument(
        "response confidences disagree with its labels");
  }
  return response;
}

void FrameReader::Feed(const uint8_t* data, size_t size) {
  if (corrupt_) return;  // the stream is already condemned
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameReader::Next FrameReader::Pop(std::vector<uint8_t>* frame) {
  if (corrupt_) return Next::kCorrupt;
  if (buffer_.size() < sizeof(kFrameMagic) + 4) return Next::kNeedMore;
  if (std::memcmp(buffer_.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    corrupt_ = true;
    error_ = Status::InvalidArgument(
        "stream does not start with the TSRV magic; cannot resync");
    return Next::kCorrupt;
  }
  const uint32_t payload_len = ReadU32At(buffer_, sizeof(kFrameMagic));
  const size_t frame_len = kFrameOverheadBytes + payload_len;
  if (frame_len > limits_.max_frame_bytes) {
    corrupt_ = true;
    error_ = Status::InvalidArgument(StrFormat(
        "stream declares a %zu-byte frame, over the %zu-byte limit",
        frame_len, limits_.max_frame_bytes));
    return Next::kCorrupt;
  }
  if (buffer_.size() < frame_len) return Next::kNeedMore;
  frame->assign(buffer_.begin(), buffer_.begin() + frame_len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + frame_len);
  return Next::kFrame;
}

}  // namespace serve
}  // namespace transer

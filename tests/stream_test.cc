// Tests for the crash-safe streaming subsystem (src/stream): the
// incremental blocking index and dynamic k-NN building blocks, the
// deterministic StreamResolver state machine (digest-checked replay
// determinism, thread invariance, poison quarantine), snapshot
// save/load/compaction with its fallback policy, and the live-serve
// continuity path (PublishTo -> ModelRepository hot swap). The
// SIGKILL-based crash matrix lives in stream_crash_test.cc; this file
// covers every recovery path reachable in-process.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "knn/brute_force.h"
#include "linalg/matrix.h"
#include "ml/model_store.h"
#include "serve/model_repository.h"
#include "stream/dynamic_knn.h"
#include "stream/incremental_blocking.h"
#include "stream/stream_ingestor.h"
#include "stream/stream_resolver.h"
#include "testing/fault_injection.h"
#include "util/diagnostics.h"
#include "util/status.h"
#include "util/string_util.h"

namespace transer {
namespace stream {
namespace {

namespace fs = std::filesystem;

std::string MakeStreamDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/stream_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void BumpMtime(const std::string& path) {
  const auto now = fs::last_write_time(path);
  fs::last_write_time(path, now + std::chrono::seconds(2));
}

/// The same deterministic synthetic stream the ingest tool drives:
/// record i describes entity i/2, odd records are dirty duplicates, and
/// the leading "gN" group token keys each record into a block holding a
/// mix of entities — both classes for the refresh path.
Record MakeStreamRecord(uint64_t i) {
  Record record;
  record.id = StrFormat("r%llu", static_cast<unsigned long long>(i));
  const uint64_t entity = i / 2;
  record.entity_id = static_cast<int64_t>(entity);
  static const char* kVenues[] = {"journal of streams",
                                  "data engineering letters",
                                  "entity resolution review"};
  const std::string title =
      StrFormat("g%llu topic %llu on streaming record linkage",
                static_cast<unsigned long long>(entity % 4),
                static_cast<unsigned long long>(entity));
  const std::string authors =
      StrFormat("author%llu and author%llu",
                static_cast<unsigned long long>(entity % 13),
                static_cast<unsigned long long>(entity % 7));
  const std::string venue = kVenues[entity % 3];
  const std::string year = StrFormat(
      "%llu", static_cast<unsigned long long>(1980 + (entity * 7) % 40));
  if (i % 2 == 0) {
    record.values = {title, authors, venue, year};
  } else {
    std::string dirty_title = title.substr(0, title.size() - 2);
    std::string dirty_venue = venue;
    dirty_venue[dirty_venue.size() / 2] = 'x';
    record.values = {dirty_title, authors + " et al", dirty_venue, year};
  }
  return record;
}

IngestEntry MakeEntry(uint64_t sequence) {
  IngestEntry entry;
  entry.sequence = sequence;
  entry.record = MakeStreamRecord(sequence - 1);
  return entry;
}

StreamResolverOptions FastResolverOptions(int threads = 1) {
  StreamResolverOptions options;
  options.schema = Schema{{"title", "jaro_winkler"},
                          {"authors", "word_jaccard"},
                          {"venue", "levenshtein"},
                          {"year", "year"}};
  options.blocking.key_attribute = 0;
  options.blocking.prefix_length = 2;  // the "gN" group token
  options.knn.rebuild_interval = 6;
  options.knn.num_threads = threads;
  options.match_threshold = 0.75;
  options.refresh_interval = 16;
  options.min_refresh_pairs = 4;
  return options;
}

StreamResolver MakeResolver(const StreamResolverOptions& options,
                            RunDiagnostics* diagnostics = nullptr) {
  auto created = StreamResolver::Create(options, diagnostics);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

void ApplyRange(StreamResolver* resolver, uint64_t first, uint64_t last,
                RunDiagnostics* diagnostics = nullptr) {
  for (uint64_t s = first; s <= last; ++s) {
    const Status applied = resolver->Apply(MakeEntry(s), diagnostics);
    ASSERT_TRUE(applied.ok()) << "seq " << s << ": " << applied.ToString();
  }
}

// ---------- IncrementalBlockingIndex ----------

TEST(IncrementalBlockingTest, EmitsAscendingCandidatesPerBlock) {
  IncrementalBlockingOptions options;
  options.key_attribute = 0;
  options.prefix_length = 3;
  IncrementalBlockingIndex index(options);

  Record aaa1{"a", 0, {"AAAx", "p"}};
  Record aaa2{"b", 0, {"aaay", "q"}};  // case-folds into the same block
  Record bbb{"c", 1, {"bbbz", "r"}};

  EXPECT_TRUE(index.InsertAndCollect(0, aaa1).empty());
  EXPECT_TRUE(index.InsertAndCollect(1, bbb).empty());
  const std::vector<size_t> candidates = index.InsertAndCollect(2, aaa2);
  EXPECT_EQ(candidates, (std::vector<size_t>{0}));
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.block_count(), 2u);
}

TEST(IncrementalBlockingTest, MissingAttributeKeysAsEmptyString) {
  IncrementalBlockingIndex index({2, 3, 256});
  Record short_record{"a", 0, {"only", "two"}};
  EXPECT_EQ(index.KeyOf(short_record), "");
}

TEST(IncrementalBlockingTest, OverCapBlockSuppressesCandidatesButCounts) {
  IncrementalBlockingOptions options;
  options.max_block_size = 2;
  IncrementalBlockingIndex index(options);
  Record record{"a", 0, {"same key", "x"}};

  EXPECT_TRUE(index.InsertAndCollect(0, record).empty());
  EXPECT_EQ(index.InsertAndCollect(1, record),
            (std::vector<size_t>{0}));
  // The block is now at the cap: further inserts are counted (the block
  // stays honest about its size) but emit no quadratic candidate work.
  EXPECT_TRUE(index.InsertAndCollect(2, record).empty());
  EXPECT_EQ(index.suppressed_inserts(), 1u);
  EXPECT_EQ(index.size(), 3u);
}

TEST(IncrementalBlockingTest, DigestTracksContent) {
  IncrementalBlockingIndex a, b;
  Record record{"a", 0, {"key value", "x"}};
  a.InsertAndCollect(0, record);
  EXPECT_NE(a.Digest(), b.Digest());
  b.InsertAndCollect(0, record);
  EXPECT_EQ(a.Digest(), b.Digest());
}

// ---------- DynamicKnn ----------

std::vector<double> MakePoint(size_t i, size_t dims) {
  std::vector<double> point(dims);
  for (size_t d = 0; d < dims; ++d) {
    point[d] = 0.25 * ((i * 7 + d * 3) % 11) - 1.0;
  }
  return point;
}

TEST(DynamicKnnTest, MatchesBruteForceAcrossRebuildBoundary) {
  const size_t kDims = 3;
  const size_t kPoints = 11;
  DynamicKnnOptions options;
  options.rebuild_interval = 4;  // tree + scanned-tail mix at 11 points
  DynamicKnn dynamic(options);
  Matrix all(kPoints, kDims);
  for (size_t i = 0; i < kPoints; ++i) {
    const std::vector<double> point = MakePoint(i, kDims);
    ASSERT_TRUE(dynamic.Insert(point).ok());
    for (size_t d = 0; d < kDims; ++d) all(i, d) = point[d];
  }
  ASSERT_GT(dynamic.rebuild_count(), 0u);
  ASSERT_LT(dynamic.indexed_size(), kPoints);  // a tail is being scanned

  // Both paths funnel through PushBoundedNeighbour over the same
  // decomposed kernel, so the answers are bit-identical, not just close.
  BruteForceKnn brute(all);
  for (size_t i = 0; i < kPoints; ++i) {
    const auto expected =
        brute.Query(dynamic.Point(i), 4, static_cast<ptrdiff_t>(i));
    const auto got =
        dynamic.Query(dynamic.Point(i), 4, static_cast<ptrdiff_t>(i));
    ASSERT_EQ(got.size(), expected.size()) << "query " << i;
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].index, expected[j].index) << "query " << i;
      EXPECT_EQ(got[j].distance, expected[j].distance) << "query " << i;
    }
  }
}

TEST(DynamicKnnTest, ThreadCountNeverChangesAnswers) {
  DynamicKnnOptions serial, parallel;
  serial.rebuild_interval = parallel.rebuild_interval = 5;
  serial.num_threads = 1;
  parallel.num_threads = 8;
  DynamicKnn a(serial), b(parallel);
  for (size_t i = 0; i < 23; ++i) {
    ASSERT_TRUE(a.Insert(MakePoint(i, 4)).ok());
    ASSERT_TRUE(b.Insert(MakePoint(i, 4)).ok());
  }
  for (size_t i = 0; i < 23; ++i) {
    const auto left = a.Query(a.Point(i), 5, static_cast<ptrdiff_t>(i));
    const auto right = b.Query(b.Point(i), 5, static_cast<ptrdiff_t>(i));
    ASSERT_EQ(left.size(), right.size());
    for (size_t j = 0; j < left.size(); ++j) {
      EXPECT_EQ(left[j].index, right[j].index);
      EXPECT_EQ(left[j].distance, right[j].distance);
    }
  }
}

TEST(DynamicKnnTest, RejectsDimensionMismatch) {
  DynamicKnn knn;
  ASSERT_TRUE(knn.Insert({1.0, 2.0}).ok());
  const Status mismatched = knn.Insert({1.0, 2.0, 3.0});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.code(), StatusCode::kInvalidArgument);
}

// ---------- StreamResolver determinism ----------

TEST(StreamResolverTest, ReplayIsBitIdenticalAndThreadInvariant) {
  RunDiagnostics diag_a, diag_b;
  StreamResolver serial = MakeResolver(FastResolverOptions(1), &diag_a);
  StreamResolver parallel = MakeResolver(FastResolverOptions(8), &diag_b);
  ApplyRange(&serial, 1, 40, &diag_a);
  ApplyRange(&parallel, 1, 40, &diag_b);

  EXPECT_EQ(serial.StateDigest(), parallel.StateDigest());
  EXPECT_GT(serial.matches().size(), 0u);
  EXPECT_GT(serial.comparison_count(), 0u);
  // The periodic refresh fired (the stream supplies both classes).
  EXPECT_GT(serial.refresh_count(), 0u);
  EXPECT_EQ(serial.refresh_count(), parallel.refresh_count());
}

TEST(StreamResolverTest, DigestDistinguishesDifferentStreams) {
  StreamResolver a = MakeResolver(FastResolverOptions());
  StreamResolver b = MakeResolver(FastResolverOptions());
  ApplyRange(&a, 1, 20);
  for (uint64_t s = 1; s <= 20; ++s) {
    IngestEntry entry = MakeEntry(s);
    if (s == 11) entry.record.values[0] = "a completely different title";
    ASSERT_TRUE(b.Apply(entry).ok());
  }
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(StreamResolverTest, SequenceGapFails) {
  StreamResolver resolver = MakeResolver(FastResolverOptions());
  ASSERT_TRUE(resolver.Apply(MakeEntry(1)).ok());
  const Status gap = resolver.Apply(MakeEntry(3));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(resolver.applied_sequence(), 1u);
}

TEST(StreamResolverTest, QuarantinesPoisonRecordsAndReplaysThemIdentically) {
  auto apply_with_poison = [](StreamResolver* resolver,
                              RunDiagnostics* diagnostics) {
    for (uint64_t s = 1; s <= 20; ++s) {
      IngestEntry entry = MakeEntry(s);
      if (s % 6 == 0) entry.record.values = {"poison"};  // wrong arity
      if (s == 13) entry.record.id.clear();              // missing id
      const Status applied = resolver->Apply(entry, diagnostics);
      ASSERT_TRUE(applied.ok()) << applied.ToString();
    }
  };
  RunDiagnostics diagnostics;
  StreamResolver a = MakeResolver(FastResolverOptions());
  apply_with_poison(&a, &diagnostics);

  const std::vector<uint64_t> expected = {6, 12, 13, 18};
  EXPECT_EQ(a.quarantined(), expected);
  EXPECT_EQ(a.applied_sequence(), 20u);
  EXPECT_EQ(a.records().size(), 20u - expected.size());
  EXPECT_EQ(
      diagnostics.CountKind(DegradationKind::kStreamRecordQuarantined),
      expected.size());

  // Replay quarantines the exact same set: poison cannot fork the state.
  StreamResolver b = MakeResolver(FastResolverOptions());
  apply_with_poison(&b, nullptr);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

// ---------- Snapshots ----------

TEST(StreamResolverTest, SnapshotRoundTripsAndContinuesIdentically) {
  const std::string dir = MakeStreamDir("snapshot_roundtrip");
  const std::string path = dir + "/state.tera";

  StreamResolver original = MakeResolver(FastResolverOptions());
  ApplyRange(&original, 1, 25);
  ASSERT_TRUE(original.SaveSnapshot(path).ok());

  auto loaded = StreamResolver::LoadSnapshot(path, FastResolverOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  StreamResolver restored = std::move(loaded).value();
  EXPECT_EQ(restored.StateDigest(), original.StateDigest());

  // The restored state is not a dead end: both copies evolve in
  // lockstep past rebuild, refresh and match boundaries.
  ApplyRange(&original, 26, 45);
  ApplyRange(&restored, 26, 45);
  EXPECT_EQ(restored.StateDigest(), original.StateDigest());
  EXPECT_EQ(restored.matches().size(), original.matches().size());
}

TEST(StreamResolverTest, SnapshotRejectsMismatchedOptions) {
  const std::string dir = MakeStreamDir("snapshot_options");
  const std::string path = dir + "/state.tera";
  StreamResolver resolver = MakeResolver(FastResolverOptions());
  ApplyRange(&resolver, 1, 10);
  ASSERT_TRUE(resolver.SaveSnapshot(path).ok());

  StreamResolverOptions different = FastResolverOptions();
  different.match_threshold = 0.5;  // would replay a different stream
  auto mismatched = StreamResolver::LoadSnapshot(path, different);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);

  StreamResolverOptions reschema = FastResolverOptions();
  reschema.schema = Schema{{"title", "jaro_winkler"}};
  auto wrong_schema = StreamResolver::LoadSnapshot(path, reschema);
  ASSERT_FALSE(wrong_schema.ok());
  EXPECT_EQ(wrong_schema.status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StreamResolverTest, SnapshotRejectsWrongKindAndBitRot) {
  const std::string dir = MakeStreamDir("snapshot_corrupt");
  StreamResolver resolver = MakeResolver(FastResolverOptions());
  ApplyRange(&resolver, 1, 12);

  // A valid TERA artifact of the wrong kind is refused by identity, not
  // by parse failure.
  const std::string pipeline_path = dir + "/pipeline.tera";
  ASSERT_TRUE(resolver.PublishTo(pipeline_path).ok());
  auto wrong_kind =
      StreamResolver::LoadSnapshot(pipeline_path, FastResolverOptions());
  ASSERT_FALSE(wrong_kind.ok());
  EXPECT_EQ(wrong_kind.status().code(), StatusCode::kInvalidArgument);

  const std::string path = dir + "/state.tera";
  ASSERT_TRUE(resolver.SaveSnapshot(path).ok());
  ASSERT_TRUE(fault::FlipFileByte(path, fs::file_size(path) / 2).ok());
  auto corrupt = StreamResolver::LoadSnapshot(path, FastResolverOptions());
  ASSERT_FALSE(corrupt.ok());
}

// ---------- Serving hand-off ----------

TEST(StreamResolverTest, PublishesLoadablePipelineState) {
  const std::string dir = MakeStreamDir("publish");
  StreamResolver resolver = MakeResolver(FastResolverOptions());
  ApplyRange(&resolver, 1, 30);

  const std::string path = dir + "/published.tera";
  ASSERT_TRUE(resolver.PublishTo(path).ok());
  auto loaded = LoadTransERPipelineState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().feature_names, resolver.feature_names());
  EXPECT_EQ(loaded.value().target_rows, resolver.comparison_count());
  EXPECT_NE(loaded.value().classifier_u, nullptr);
  EXPECT_EQ(loaded.value().target_centroid.size(),
            resolver.feature_names().size());
}

TEST(StreamResolverTest, WarmStartsFromPublishedArtifact) {
  const std::string dir = MakeStreamDir("warm_start");
  StreamResolver teacher = MakeResolver(FastResolverOptions());
  ApplyRange(&teacher, 1, 30);
  const std::string path = dir + "/teacher.tera";
  ASSERT_TRUE(teacher.PublishTo(path).ok());

  StreamResolverOptions warm = FastResolverOptions();
  warm.warm_start_path = path;
  RunDiagnostics diagnostics;
  auto created = StreamResolver::Create(warm, &diagnostics);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(diagnostics.CountKind(DegradationKind::kModelWarmStarted), 1u);

  // A missing warm-start artifact must fail loudly: a silently
  // cold-started replica would diverge from its peers.
  warm.warm_start_path = dir + "/does_not_exist.tera";
  auto missing = StreamResolver::Create(warm);
  ASSERT_FALSE(missing.ok());
}

// ---------- StreamIngestor recovery ----------

StreamIngestorOptions FastIngestorOptions(const std::string& dir,
                                          size_t snapshot_interval = 0) {
  StreamIngestorOptions options;
  options.directory = dir;
  options.resolver = FastResolverOptions();
  options.snapshot_interval = snapshot_interval;
  return options;
}

/// Path of the journal segment the ingestor is currently appending to.
std::string ActiveSegmentPath(const StreamIngestor& ingestor) {
  return ingestor.journal_directory() +
         StrFormat("/ingest.%06llu.wal",
                   static_cast<unsigned long long>(
                       ingestor.journal_stats().active_segment));
}

uint64_t RunCleanStream(const std::string& dir, uint64_t count,
                        size_t snapshot_interval = 0) {
  auto opened =
      StreamIngestor::Open(FastIngestorOptions(dir, snapshot_interval));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  StreamIngestor ingestor = std::move(opened).value();
  for (uint64_t i = 0; i < count; ++i) {
    EXPECT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
  }
  return ingestor.resolver().StateDigest();
}

TEST(StreamIngestorTest, ReopenAfterSnapshotReplaysOnlyTheTail) {
  const std::string dir = MakeStreamDir("reopen");
  const std::string control = MakeStreamDir("reopen_control");
  const uint64_t expected = RunCleanStream(control, 20);

  {
    auto opened = StreamIngestor::Open(FastIngestorOptions(dir, 8));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    StreamIngestor ingestor = std::move(opened).value();
    for (uint64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
    }
    EXPECT_EQ(ingestor.snapshot_count(), 2u);  // at sequences 8 and 16
  }
  RunDiagnostics diagnostics;
  auto reopened =
      StreamIngestor::Open(FastIngestorOptions(dir, 8), &diagnostics);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const StreamIngestor& ingestor = reopened.value();
  EXPECT_TRUE(ingestor.recovered_from_snapshot());
  EXPECT_EQ(ingestor.replayed_entries(), 4u);  // 17..20 past the snapshot
  EXPECT_EQ(ingestor.applied_sequence(), 20u);
  EXPECT_EQ(ingestor.resolver().StateDigest(), expected);
}

TEST(StreamIngestorTest, TornJournalTailIsDroppedAndReported) {
  const std::string dir = MakeStreamDir("torn_tail");
  const std::string control = MakeStreamDir("torn_tail_control");
  const uint64_t expected = RunCleanStream(control, 9);

  std::string journal_path;
  {
    auto opened = StreamIngestor::Open(FastIngestorOptions(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    StreamIngestor ingestor = std::move(opened).value();
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
    }
    journal_path = ActiveSegmentPath(ingestor);
  }
  // Tear the last few bytes off the final frame — the on-disk shape a
  // crash mid-append leaves.
  ASSERT_TRUE(
      fault::TruncateFile(journal_path, fs::file_size(journal_path) - 3)
          .ok());

  RunDiagnostics diagnostics;
  auto reopened =
      StreamIngestor::Open(FastIngestorOptions(dir), &diagnostics);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().applied_sequence(), 9u);
  EXPECT_EQ(reopened.value().resolver().StateDigest(), expected);
  EXPECT_EQ(
      diagnostics.CountKind(DegradationKind::kCheckpointTailDropped), 1u);
}

TEST(StreamIngestorTest, FsyncFailureNeverAcknowledgesARecord) {
  const std::string dir = MakeStreamDir("fsync_fault");
  const std::string control = MakeStreamDir("fsync_control");
  const uint64_t expected = RunCleanStream(control, 10);

  auto opened = StreamIngestor::Open(FastIngestorOptions(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamIngestor ingestor = std::move(opened).value();
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
  }
  {
    fault::ScopedFsyncFault fault;
    const Status failed = ingestor.Ingest(MakeStreamRecord(5));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_EQ(ingestor.applied_sequence(), 5u);  // not acknowledged
  }
  // Retry the same record once durability is back; the stream converges
  // on the uninterrupted digest.
  for (uint64_t i = 5; i < 10; ++i) {
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
  }
  EXPECT_EQ(ingestor.resolver().StateDigest(), expected);
}

TEST(StreamIngestorTest, DiskFullNeverAcknowledgesOrLosesARecord) {
  const std::string dir = MakeStreamDir("enospc");
  const std::string control = MakeStreamDir("enospc_control");
  const uint64_t expected = RunCleanStream(control, 10);

  StreamIngestorOptions options = FastIngestorOptions(dir);
  options.journal_retry.initial_backoff_ms = 0;  // no real sleeps in tests
  auto opened = StreamIngestor::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamIngestor ingestor = std::move(opened).value();
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
  }
  {
    fault::ScopedDiskFullFault fault(/*bytes_before_enospc=*/0);
    const Status failed = ingestor.Ingest(MakeStreamRecord(5));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_EQ(ingestor.applied_sequence(), 5u);  // the ack was refused
  }
  // Space is back: the retry lands on a fresh segment (the one that saw
  // ENOSPC was quarantined) and the stream converges on the clean digest.
  for (uint64_t i = 5; i < 10; ++i) {
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
  }
  EXPECT_EQ(ingestor.resolver().StateDigest(), expected);

  // Reopen replays to the same state: every acked record survived.
  auto reopened = StreamIngestor::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().applied_sequence(), 10u);
  EXPECT_EQ(reopened.value().resolver().StateDigest(), expected);
}

// ---------- Disk budget & retention ----------

TEST(StreamIngestorTest, JournalStaysWithinDiskBudget) {
  const std::string dir = MakeStreamDir("budget");
  const std::string control = MakeStreamDir("budget_control");
  const uint64_t kCount = 200;
  const uint64_t expected = RunCleanStream(control, kCount);

  StreamIngestorOptions options = FastIngestorOptions(dir);
  options.max_segment_bytes = 1024;
  options.max_journal_bytes = 4096;
  auto opened = StreamIngestor::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamIngestor ingestor = std::move(opened).value();

  size_t journaled_bytes = 0;
  for (uint64_t i = 0; i < kCount; ++i) {
    IngestEntry entry;
    entry.sequence = i + 1;
    entry.record = MakeStreamRecord(i);
    journaled_bytes += EncodeIngestEntry(entry).size() + 8;
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok()) << "record " << i;
    // The budget holds after EVERY ack, not just at the end.
    ASSERT_LE(ingestor.journal_stats().live_bytes, options.max_journal_bytes)
        << "record " << i;
  }
  // The run journaled several budgets' worth of bytes...
  EXPECT_GT(journaled_bytes, 4 * options.max_journal_bytes);
  // ...while the files actually on disk stayed within it.
  size_t on_disk = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".wal") on_disk += entry.file_size();
  }
  EXPECT_LE(on_disk, options.max_journal_bytes);

  const JournalStats stats = ingestor.journal_stats();
  EXPECT_GT(stats.segments_dropped, 0u);
  EXPECT_GT(ingestor.snapshot_count(), 0u);
  EXPECT_EQ(stats.retention_stalls, 0u);  // retention always caught up
  // Budget-triggered snapshots never perturb the deterministic state.
  EXPECT_EQ(ingestor.resolver().StateDigest(), expected);
}

TEST(StreamIngestorTest, BudgetStallDegradesStructurallyWithoutDataLoss) {
  const std::string dir = MakeStreamDir("budget_stall");
  const std::string control = MakeStreamDir("budget_stall_control");
  const uint64_t expected = RunCleanStream(control, 3);

  StreamIngestorOptions options = FastIngestorOptions(dir);
  // A budget smaller than a single entry: retention can never get back
  // under it, which must degrade to a structured stall event — and keep
  // ingesting — rather than refuse or drop data.
  options.max_journal_bytes = 64;
  RunDiagnostics diagnostics;
  auto opened = StreamIngestor::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamIngestor ingestor = std::move(opened).value();
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i), &diagnostics).ok());
  }
  EXPECT_EQ(ingestor.applied_sequence(), 3u);
  EXPECT_GE(ingestor.journal_stats().retention_stalls, 1u);
  EXPECT_GE(
      diagnostics.CountKind(DegradationKind::kJournalRetentionStalled), 1u);

  // "Stalled" means over budget, never lossy: a reopen replays to the
  // exact same state.
  auto reopened = StreamIngestor::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().applied_sequence(), 3u);
  EXPECT_EQ(reopened.value().resolver().StateDigest(), expected);
}

// ---------- Multi-writer ingest ----------

TEST(StreamIngestorTest, MultiWriterIngestMatchesSingleWriterBitForBit) {
  const uint64_t kCount = 60;
  auto run = [&](const std::string& name, size_t writers) -> uint64_t {
    const std::string dir = MakeStreamDir(name);
    StreamIngestorOptions options = FastIngestorOptions(dir);
    options.max_segment_bytes = 2048;  // rotations under the merge too
    auto opened = StreamIngestor::Open(options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    StreamIngestor ingestor = std::move(opened).value();
    const Status ran = RunMultiWriterIngest(
        &ingestor, writers, kCount,
        [](uint64_t i) { return MakeStreamRecord(i); });
    EXPECT_TRUE(ran.ok()) << ran.ToString();
    EXPECT_EQ(ingestor.applied_sequence(), kCount);
    return ingestor.resolver().StateDigest();
  };

  const uint64_t single = run("writers_1", 1);
  EXPECT_EQ(run("writers_4", 4), single);
  EXPECT_EQ(run("writers_7", 7), single);  // count not divisible by writers

  // And both equal the plain sequential loop.
  const std::string control = MakeStreamDir("writers_control");
  EXPECT_EQ(RunCleanStream(control, kCount), single);
}

TEST(StreamIngestorTest, MultiWriterIngestValidatesArguments) {
  const std::string dir = MakeStreamDir("writers_args");
  auto opened = StreamIngestor::Open(FastIngestorOptions(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamIngestor ingestor = std::move(opened).value();
  const Status zero_writers = RunMultiWriterIngest(
      &ingestor, 0, 4, [](uint64_t i) { return MakeStreamRecord(i); });
  ASSERT_FALSE(zero_writers.ok());
  EXPECT_EQ(zero_writers.code(), StatusCode::kInvalidArgument);
  const Status no_maker = RunMultiWriterIngest(&ingestor, 2, 4, nullptr);
  ASSERT_FALSE(no_maker.ok());
  EXPECT_EQ(no_maker.code(), StatusCode::kInvalidArgument);
}

TEST(StreamIngestorTest, CorruptSnapshotFallsBackToFullReplayWhenPossible) {
  const std::string dir = MakeStreamDir("fallback");
  const std::string control = MakeStreamDir("fallback_control");
  const uint64_t expected = RunCleanStream(control, 12);

  std::string snapshot_path;
  std::string segment_path;
  std::vector<uint8_t> full_segment;
  std::vector<uint8_t> manifest;
  {
    auto opened = StreamIngestor::Open(FastIngestorOptions(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    StreamIngestor ingestor = std::move(opened).value();
    for (uint64_t i = 0; i < 12; ++i) {
      ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
    }
    segment_path = ActiveSegmentPath(ingestor);
    ASSERT_TRUE(fault::ReadFileBytes(segment_path, &full_segment).ok());
    ASSERT_TRUE(
        fault::ReadFileBytes(dir + "/ingest.manifest", &manifest).ok());
    ASSERT_TRUE(ingestor.Snapshot().ok());  // snapshots, then retains
    snapshot_path = ingestor.snapshot_path();
  }
  // Crash scenario: the snapshot rotted but the journal still holds the
  // complete history (segment chain + manifest restored to their
  // pre-retention state; the newer post-rotation segment becomes an
  // orphan past the manifest's range and is deleted on recovery).
  ASSERT_TRUE(fault::WriteFileBytes(segment_path, full_segment).ok());
  ASSERT_TRUE(
      fault::WriteFileBytes(dir + "/ingest.manifest", manifest).ok());
  ASSERT_TRUE(
      fault::FlipFileByte(snapshot_path, fs::file_size(snapshot_path) / 2)
          .ok());

  RunDiagnostics diagnostics;
  auto reopened =
      StreamIngestor::Open(FastIngestorOptions(dir), &diagnostics);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened.value().recovered_from_snapshot());
  EXPECT_EQ(reopened.value().replayed_entries(), 12u);
  EXPECT_EQ(reopened.value().resolver().StateDigest(), expected);
  EXPECT_EQ(
      diagnostics.CountKind(DegradationKind::kStreamSnapshotFallback), 1u);
}

TEST(StreamIngestorTest, CorruptSnapshotAfterCompactionFailsLoudly) {
  const std::string dir = MakeStreamDir("fallback_refused");
  std::string snapshot_path;
  {
    auto opened = StreamIngestor::Open(FastIngestorOptions(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    StreamIngestor ingestor = std::move(opened).value();
    for (uint64_t i = 0; i < 12; ++i) {
      ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
    }
    ASSERT_TRUE(ingestor.Snapshot().ok());
    snapshot_path = ingestor.snapshot_path();
  }
  ASSERT_TRUE(
      fault::FlipFileByte(snapshot_path, fs::file_size(snapshot_path) / 2)
          .ok());
  // The journal was compacted: replaying from scratch would silently
  // lose the compacted history, so Open must refuse instead.
  auto reopened = StreamIngestor::Open(FastIngestorOptions(dir));
  ASSERT_FALSE(reopened.ok());
}

// ---------- Live-serve continuity: publish -> repository hot swap ----------

TEST(StreamIngestorTest, PublishedSnapshotsHotSwapIntoModelRepository) {
  const std::string dir = MakeStreamDir("continuity");
  const std::string models = MakeStreamDir("continuity_models");

  StreamIngestorOptions options = FastIngestorOptions(dir);
  options.publish_directory = models;
  auto opened = StreamIngestor::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  StreamIngestor ingestor = std::move(opened).value();
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
  }
  ASSERT_TRUE(ingestor.Snapshot().ok());
  ASSERT_TRUE(fs::exists(ingestor.publish_path()));

  serve::RepositoryOptions repo_options;
  repo_options.directory = models;
  repo_options.refresh_interval_seconds = 0.0;
  repo_options.min_rescan_interval_seconds = 0.0;
  serve::ModelRepository repository(repo_options);
  const serve::RefreshReport first = repository.ForceRescan();
  EXPECT_EQ(first.loaded, 1u);

  auto selected =
      repository.Select(ingestor.resolver().feature_names(), {});
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_TRUE(selected.value().by_fingerprint);
  const uint64_t rows_before = selected.value().model->state->target_rows;

  // The stream keeps ingesting; the next snapshot republishes and the
  // repository swaps the fresher model in on its next scan.
  for (uint64_t i = 20; i < 40; ++i) {
    ASSERT_TRUE(ingestor.Ingest(MakeStreamRecord(i)).ok());
  }
  ASSERT_TRUE(ingestor.Snapshot().ok());
  BumpMtime(ingestor.publish_path());
  const serve::RefreshReport second = repository.ForceRescan();
  EXPECT_EQ(second.reloaded, 1u);

  auto reselected =
      repository.Select(ingestor.resolver().feature_names(), {});
  ASSERT_TRUE(reselected.ok()) << reselected.status().ToString();
  EXPECT_GT(reselected.value().model->state->target_rows, rows_before);
}

}  // namespace
}  // namespace stream
}  // namespace transer

# Empty dependencies file for feature_space_test.
# This may be replaced when dependencies are built.

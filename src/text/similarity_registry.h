#ifndef TRANSER_TEXT_SIMILARITY_REGISTRY_H_
#define TRANSER_TEXT_SIMILARITY_REGISTRY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace transer {

/// A similarity function over two attribute values, returning [0, 1].
using SimilarityFn = std::function<double(std::string_view, std::string_view)>;

/// \brief Named similarity functions, so schemas can declare per-attribute
/// comparators by name ("jaro_winkler", "word_jaccard", ...). Homogeneous
/// transfer requires the *same* comparators in both domains; naming them
/// makes that contract explicit and checkable.
class SimilarityRegistry {
 public:
  /// Returns the process-wide registry, pre-populated with the built-ins:
  /// jaro, jaro_winkler, levenshtein, damerau_levenshtein, word_jaccard,
  /// qgram_jaccard, qgram_dice, lcs, monge_elkan, exact, soundex,
  /// year (max_diff 10), numeric_abs (max_diff 100).
  static SimilarityRegistry& Global();

  /// Registers (or replaces) a similarity function under `name`.
  void Register(const std::string& name, SimilarityFn fn);

  /// Looks up a similarity function. NotFound when unregistered.
  Result<SimilarityFn> Lookup(const std::string& name) const;

  /// True if a function is registered under `name`.
  bool Contains(const std::string& name) const;

  /// Sorted list of registered names.
  std::vector<std::string> Names() const;

 private:
  SimilarityRegistry();
  std::vector<std::pair<std::string, SimilarityFn>> entries_;
};

}  // namespace transer

#endif  // TRANSER_TEXT_SIMILARITY_REGISTRY_H_

file(REMOVE_RECURSE
  "CMakeFiles/figure5_decay.dir/figure5_decay.cc.o"
  "CMakeFiles/figure5_decay.dir/figure5_decay.cc.o.d"
  "figure5_decay"
  "figure5_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

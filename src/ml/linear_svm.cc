#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "linalg/kernels.h"
#include "ml/sparse_weights.h"
#include "util/artifact_io.h"
#include "util/logging.h"
#include "util/random.h"

namespace transer {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Squared hinge: loss = 0.5*sw*max(0, 1 - y*margin)^2, smooth enough
/// for a quasi-Newton solver (the plain hinge is not differentiable at
/// the margin boundary, which stalls L-BFGS line searches).
double SquaredHingeLoss(double margin, int label, double sample_w,
                        double* dmargin) {
  const double y = label == 1 ? 1.0 : -1.0;
  const double violation = 1.0 - y * margin;
  if (violation <= 0.0) {
    *dmargin = 0.0;
    return 0.0;
  }
  *dmargin = -sample_w * y * violation;
  return 0.5 * sample_w * violation * violation;
}

/// Below this the deferred Pegasos scale risks underflow; fold it into
/// the accumulator and reset.
constexpr double kMinDeferredScale = 1e-100;

}  // namespace

void LinearSvm::Fit(const Matrix& x, const std::vector<int>& y,
                    const std::vector<double>& weights) {
  FitView(FeatureView(x), y, weights);
}

void LinearSvm::FitView(const FeatureView& x, const std::vector<int>& y,
                        const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  TRANSER_CHECK(weights.empty() || weights.size() == y.size());
  weights_.assign(x.cols(), 0.0);
  bias_ = 0.0;
  platt_a_ = 1.0;
  platt_b_ = 0.0;
  if (x.rows() == 0) return;

  if (options_.solver == LinearSolver::kLbfgs) {
    FitLbfgs(x, y, weights);
  } else if (x.sparse()) {
    FitSgdSparse(x.sparse_matrix(), y, weights);
  } else {
    FitSgdDense(x.dense_matrix(), y, weights);
  }
  if (FitInterrupted()) return;  // caller surfaces the status via Check
  FitPlatt(x, y);
}

void LinearSvm::FitSgdDense(const Matrix& x, const std::vector<int>& y,
                            const std::vector<double>& weights) {
  const size_t n = x.rows();
  const size_t m = x.cols();

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  // Pegasos: step size 1/(lambda * (t + t0)); the t0 = n offset keeps the
  // first steps bounded so the unregularised bias cannot be thrown to an
  // unrecoverable magnitude by the first margin violations.
  size_t t = 0;
  const double t0 = static_cast<double>(n);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (FitInterrupted()) return;  // caller surfaces the status via Check
    rng.Shuffle(&order);
    for (size_t i : order) {
      ++t;
      const double eta =
          1.0 / (options_.lambda * (static_cast<double>(t) + t0));
      const std::span<const double> row(x.Row(i), m);
      const double label = y[i] == 1 ? 1.0 : -1.0;
      const double margin = bias_ + kernels::Dot(weights_, row);
      const double sample_w = weights.empty() ? 1.0 : weights[i];

      // Shrink (regularisation applies to w only, not bias).
      kernels::ScaleInPlace(weights_, 1.0 - eta * options_.lambda);
      if (label * margin < 1.0) {
        const double step = eta * label * sample_w;
        kernels::Axpy(step, row, weights_);
        bias_ += step;
      }
    }
  }
}

void LinearSvm::FitSgdSparse(const SparseFeatureMatrix& x,
                             const std::vector<int>& y,
                             const std::vector<double>& weights) {
  const size_t n = x.size();

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  // Deferred-scaling Pegasos: w = scale * v. The per-sample shrink is a
  // multiply on `scale`; the violation update touches only the row's
  // nonzeros, so one step costs O(nnz) instead of O(2^20).
  std::vector<double> v(x.num_features(), 0.0);
  double scale = 1.0;

  size_t t = 0;
  const double t0 = static_cast<double>(n);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (FitInterrupted()) break;
    rng.Shuffle(&order);
    for (size_t i : order) {
      ++t;
      const double eta =
          1.0 / (options_.lambda * (static_cast<double>(t) + t0));
      const SparseFeatureMatrix::RowView row = x.Row(i);
      const double label = y[i] == 1 ? 1.0 : -1.0;
      const double margin =
          bias_ + scale * kernels::SparseDenseDot(row.indices, row.values, v);
      const double sample_w = weights.empty() ? 1.0 : weights[i];

      // eta * lambda = 1/(t + t0) < 1, so the scale stays positive.
      scale *= 1.0 - eta * options_.lambda;
      if (scale < kMinDeferredScale) {
        kernels::ScaleInPlace(v, scale);
        scale = 1.0;
      }
      if (label * margin < 1.0) {
        const double step = eta * label * sample_w;
        kernels::SparseAxpy(step / scale, row.indices, row.values,
                            std::span<double>(v.data(), v.size()));
        bias_ += step;
      }
    }
  }
  kernels::ScaleInPlace(v, scale);
  weights_ = std::move(v);
}

void LinearSvm::FitLbfgs(const FeatureView& x, const std::vector<int>& y,
                         const std::vector<double>& weights) {
  const size_t m = x.cols();
  const ExecutionContext& context = execution_context() != nullptr
                                        ? *execution_context()
                                        : ExecutionContext::Unlimited();

  // Bias rides as the last coordinate; L2 applies to the first m only.
  std::vector<double> params(m + 1, 0.0);
  const double lambda = options_.lambda;
  auto objective = [&](std::span<const double> p,
                       std::span<double> g) -> Result<double> {
    double grad_bias = 0.0;
    auto loss = WeightedLinearLossGrad(x, y, weights, p.first(m), p[m],
                                       &SquaredHingeLoss, g.first(m),
                                       &grad_bias, context,
                                       /*num_threads=*/0);
    TRANSER_RETURN_IF_ERROR(loss.status());
    g[m] = grad_bias;
    double value = loss.value();
    for (size_t j = 0; j < m; ++j) {
      value += 0.5 * lambda * p[j] * p[j];
      g[j] += lambda * p[j];
    }
    return value;
  };

  LbfgsOptions lbfgs;
  lbfgs.max_iterations = options_.lbfgs_max_iterations;
  lbfgs.tolerance = options_.lbfgs_tolerance;
  MinimizeLbfgs(lbfgs, execution_context(),
                std::span<double>(params.data(), params.size()), objective);
  std::copy(params.begin(), params.begin() + static_cast<ptrdiff_t>(m),
            weights_.begin());
  bias_ = params[m];
}

double LinearSvm::DecisionFunction(std::span<const double> features) const {
  TRANSER_CHECK_EQ(features.size(), weights_.size());
  return bias_ + kernels::Dot(weights_, features);
}

double LinearSvm::DecisionFunctionSparse(
    const SparseFeatureMatrix::RowView& row) const {
  TRANSER_CHECK(row.indices.empty() || row.indices.back() < weights_.size());
  return bias_ + kernels::SparseDenseDot(row.indices, row.values, weights_);
}

void LinearSvm::FitPlatt(const FeatureView& x, const std::vector<int>& y) {
  const size_t n = x.rows();
  std::vector<double> margins(n);
  for (size_t i = 0; i < n; ++i) {
    margins[i] = bias_ + x.RowDot(i, weights_);
  }
  FitPlattOnMargins(margins, y);
}

void LinearSvm::FitPlattOnMargins(const std::vector<double>& margins,
                                  const std::vector<int>& y) {
  const size_t n = margins.size();
  // Newton iterations on the 2-parameter log-likelihood; separable
  // margins drive the slope high enough that core instances reach the
  // extreme confidences TransER's t_p threshold expects.
  double a = 1.0;
  double b = 0.0;
  for (int iter = 0; iter < 60; ++iter) {
    if (FitInterrupted()) break;  // keep the raw-margin fallback below
    double grad_a = 0.0, grad_b = 0.0;
    double h_aa = 1e-8, h_ab = 0.0, h_bb = 1e-8;
    for (size_t i = 0; i < n; ++i) {
      const double target = y[i] == 1 ? 1.0 : 0.0;
      const double p = Sigmoid(a * margins[i] + b);
      const double err = p - target;
      const double w = std::max(p * (1.0 - p), 1e-12);
      grad_a += err * margins[i];
      grad_b += err;
      h_aa += w * margins[i] * margins[i];
      h_ab += w * margins[i];
      h_bb += w;
    }
    const double det = h_aa * h_bb - h_ab * h_ab;
    if (std::fabs(det) < 1e-18) break;
    const double step_a = (h_bb * grad_a - h_ab * grad_b) / det;
    const double step_b = (h_aa * grad_b - h_ab * grad_a) / det;
    a -= step_a;
    b -= step_b;
    a = std::clamp(a, -1e4, 1e4);
    b = std::clamp(b, -1e4, 1e4);
    if (std::fabs(step_a) + std::fabs(step_b) < 1e-10) break;
  }
  // A degenerate (negative-slope) calibration would flip decisions; keep
  // the raw margin orientation in that case.
  platt_a_ = a > 0.0 ? a : 1.0;
  platt_b_ = a > 0.0 ? b : 0.0;
}

double LinearSvm::PredictProba(std::span<const double> features) const {
  return Sigmoid(platt_a_ * DecisionFunction(features) + platt_b_);
}

double LinearSvm::PredictProbaSparse(
    const SparseFeatureMatrix::RowView& row) const {
  return Sigmoid(platt_a_ * DecisionFunctionSparse(row) + platt_b_);
}

Status LinearSvm::SaveState(artifact::Encoder* out) const {
  out->PutDouble(options_.lambda);
  out->PutI64(options_.epochs);
  out->PutU64(options_.seed);
  EncodeWeightVector(out, weights_, options_.save_cull_epsilon);
  out->PutDouble(bias_);
  out->PutDouble(platt_a_);
  out->PutDouble(platt_b_);
  return Status::OK();
}

Status LinearSvm::LoadState(artifact::Decoder* in) {
  LinearSvmOptions options;
  int64_t epochs = 0;
  std::vector<double> weights;
  double bias = 0.0;
  double platt_a = 0.0;
  double platt_b = 0.0;
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&options.lambda));
  TRANSER_RETURN_IF_ERROR(in->GetI64(&epochs));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&options.seed));
  TRANSER_RETURN_IF_ERROR(DecodeWeightVector(in, &weights));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&bias));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&platt_a));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&platt_b));
  // Pegasos divides by lambda*t, so a refit of a loaded model must keep
  // lambda strictly positive.
  if (!(options.lambda > 0.0) || !std::isfinite(options.lambda) ||
      epochs < 0 || epochs > INT32_MAX || !std::isfinite(bias) ||
      !std::isfinite(platt_a) || !std::isfinite(platt_b)) {
    return Status::InvalidArgument("linear svm state out of range");
  }
  for (double w : weights) {
    if (!std::isfinite(w)) {
      return Status::InvalidArgument("linear svm weight is not finite");
    }
  }
  options.epochs = static_cast<int>(epochs);
  options_ = options;
  weights_ = std::move(weights);
  bias_ = bias;
  platt_a_ = platt_a;
  platt_b_ = platt_b;
  return Status::OK();
}

}  // namespace transer

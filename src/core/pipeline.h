#ifndef TRANSER_CORE_PIPELINE_H_
#define TRANSER_CORE_PIPELINE_H_

#include <string>

#include "blocking/minhash_lsh.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "features/comparator.h"
#include "features/feature_matrix.h"
#include "transfer/transfer_method.h"
#include "util/diagnostics.h"
#include "util/validation.h"

namespace transer {

/// \brief Options for the record-level ER pipeline of Figure 1:
/// blocking -> record-pair comparison -> (transfer) classification.
struct PipelineOptions {
  MinHashLshOptions blocking;
  ComparatorOptions comparison;
  /// Feature-matrix validation applied to both domains before transfer.
  /// The default repairs non-finite values in place (recording a
  /// DegradationEvent) rather than failing the whole linkage; set the
  /// policy to kStrict to reject dirty domains instead.
  ValidationOptions validation{.policy = RepairPolicy::kClampValues};
  /// Worker lanes for the comparison fill (0 = process default). The
  /// feature matrix is bit-identical for every value.
  int num_threads = 0;
};

/// \brief Blocking + comparison statistics of one linkage problem.
struct PipelineBuildInfo {
  size_t candidate_pairs = 0;
  size_t true_matches_in_candidates = 0;
  size_t true_matches_total = 0;

  /// Fraction of true matches surviving blocking (pairs completeness).
  double BlockingRecall() const {
    return true_matches_total == 0
               ? 0.0
               : static_cast<double>(true_matches_in_candidates) /
                     static_cast<double>(true_matches_total);
  }
};

/// Runs blocking and comparison on a linkage problem, producing the
/// labelled feature matrix of the domain. `info` (optional) receives
/// blocking statistics. `context` (optional) bounds the stage: blocking
/// observes its deadline / cancellation / memory budget, surfacing 'TE' /
/// 'ME' statuses; budget outcomes are recorded in `diagnostics` when set.
Result<FeatureMatrix> BuildDomainFeatures(
    const LinkageProblem& problem, const PipelineOptions& options,
    PipelineBuildInfo* info = nullptr,
    const ExecutionContext* context = nullptr,
    RunDiagnostics* diagnostics = nullptr);

/// \brief Result of an end-to-end transfer linkage.
struct EndToEndResult {
  LinkageQuality quality;
  PipelineBuildInfo source_info;
  PipelineBuildInfo target_info;
  size_t source_instances = 0;
  size_t target_instances = 0;
  /// Every graceful-degradation step of the run: validation repairs on
  /// either domain plus the transfer method's own events.
  RunDiagnostics diagnostics;
};

/// Full Figure-1 + Figure-3 run: build both domains' feature matrices from
/// raw records, transfer-classify the target with `method`, and evaluate
/// against the target's ground truth.
Result<EndToEndResult> RunTransferPipeline(
    const LinkageProblem& source_problem,
    const LinkageProblem& target_problem, const TransferMethod& method,
    const ClassifierFactory& make_classifier,
    const PipelineOptions& options = {},
    const TransferRunOptions& run_options = {});

}  // namespace transer

#endif  // TRANSER_CORE_PIPELINE_H_

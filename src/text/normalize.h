#ifndef TRANSER_TEXT_NORMALIZE_H_
#define TRANSER_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace transer {

/// \brief Options controlling attribute-value normalisation before
/// comparison. Matches the standard ER pre-processing step [Christen 2012].
struct NormalizeOptions {
  bool lowercase = true;
  bool strip_punctuation = true;    ///< punctuation -> space
  bool collapse_whitespace = true;  ///< runs of spaces -> one space
  bool trim = true;
};

/// Normalises an attribute value per `options`.
std::string NormalizeValue(std::string_view value,
                           const NormalizeOptions& options = {});

/// True if the value is empty after trimming (treated as missing).
bool IsMissing(std::string_view value);

}  // namespace transer

#endif  // TRANSER_TEXT_NORMALIZE_H_

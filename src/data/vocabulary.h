#ifndef TRANSER_DATA_VOCABULARY_H_
#define TRANSER_DATA_VOCABULARY_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace transer {

/// \brief Word pools used by the synthetic domain generators. Each list is
/// a curated set of realistic values so similarity distributions resemble
/// the real data sets (shared prefixes, varying lengths, common words).
class Vocabulary {
 public:
  static const std::vector<std::string>& GivenNames();
  static const std::vector<std::string>& Surnames();
  static const std::vector<std::string>& TitleWords();       ///< CS paper titles
  static const std::vector<std::string>& Venues();           ///< journals/confs
  static const std::vector<std::string>& SongWords();        ///< song titles
  static const std::vector<std::string>& ArtistNames();      ///< bands/artists
  static const std::vector<std::string>& AlbumWords();
  static const std::vector<std::string>& ScottishPlaces();   ///< parishes/towns
  static const std::vector<std::string>& Occupations();

  /// Uniform draw from `pool`.
  static const std::string& Pick(const std::vector<std::string>& pool,
                                 Rng* rng);

  /// Draws `count` words from `pool` (with replacement) joined by spaces.
  static std::string PickPhrase(const std::vector<std::string>& pool,
                                size_t count, Rng* rng);
};

}  // namespace transer

#endif  // TRANSER_DATA_VOCABULARY_H_

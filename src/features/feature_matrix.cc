#include "features/feature_matrix.h"

#include <cmath>

#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace transer {

namespace {

bool IsValidLabel(int label) {
  return label == kMatch || label == kNonMatch || label == kUnlabeled;
}

}  // namespace

void FeatureMatrix::Append(const std::vector<double>& features, int label,
                           PairRef ref) {
  TRANSER_CHECK_EQ(features.size(), num_features());
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
  pairs_.push_back(ref);
}

Matrix FeatureMatrix::ToMatrix() const {
  return Matrix::FromRowMajor(size(), num_features(), data_);
}

FeatureMatrix FeatureMatrix::Select(const std::vector<size_t>& rows) const {
  FeatureMatrix out(feature_names_);
  out.Reserve(rows.size());
  for (size_t row : rows) {
    TRANSER_CHECK_LT(row, size());
    out.Append(RowVector(row), labels_[row], pairs_[row]);
  }
  return out;
}

FeatureMatrix FeatureMatrix::WithoutLabels() const {
  FeatureMatrix out = *this;
  for (int& label : out.labels_) label = kUnlabeled;
  return out;
}

FeatureMatrix FeatureMatrix::WithLabels(const std::vector<int>& labels) const {
  TRANSER_CHECK_EQ(labels.size(), size());
  FeatureMatrix out = *this;
  out.labels_ = labels;
  return out;
}

size_t FeatureMatrix::CountMatches() const {
  size_t count = 0;
  for (int label : labels_) count += label == kMatch ? 1 : 0;
  return count;
}

size_t FeatureMatrix::CountNonMatches() const {
  size_t count = 0;
  for (int label : labels_) count += label == kNonMatch ? 1 : 0;
  return count;
}

size_t FeatureMatrix::CountUnlabeled() const {
  size_t count = 0;
  for (int label : labels_) count += label == kUnlabeled ? 1 : 0;
  return count;
}

void FeatureMatrix::Resize(size_t n) {
  data_.resize(n * num_features(), 0.0);
  labels_.resize(n, kUnlabeled);
  pairs_.resize(n);
}

void FeatureMatrix::Reserve(size_t n) {
  data_.reserve(n * num_features());
  labels_.reserve(n);
  pairs_.reserve(n);
}

Status FeatureMatrix::ToCsvFile(const std::string& path) const {
  CsvTable table;
  table.header = feature_names_;
  table.header.push_back("label");
  table.rows.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    std::vector<std::string> row;
    row.reserve(num_features() + 1);
    for (double v : Row(i)) row.push_back(StrFormat("%.6f", v));
    row.push_back(std::to_string(labels_[i]));
    table.rows.push_back(std::move(row));
  }
  return Csv::WriteFile(path, table);
}

Result<FeatureMatrix> FeatureMatrix::FromCsvFile(const std::string& path) {
  return FromCsvFile(path, IngestOptions{}, nullptr);
}

std::string FeatureMatrix::IngestReport::Summary() const {
  std::string out = StrFormat("%zu rows read, %zu kept", rows_read, rows_kept);
  if (rows_skipped > 0) out += StrFormat(", %zu skipped", rows_skipped);
  if (values_repaired > 0) {
    out += StrFormat(", %zu values repaired", values_repaired);
  }
  return out;
}

Result<FeatureMatrix> FeatureMatrix::FromCsvFile(const std::string& path,
                                                 const IngestOptions& options,
                                                 IngestReport* report,
                                                 RunDiagnostics* diagnostics) {
  const bool strict = options.policy == RepairPolicy::kStrict;
  const bool repair = options.policy == RepairPolicy::kClampValues;
  IngestReport local_report;

  CsvToleranceOptions tolerance;
  tolerance.skip_bad_rows = !strict;
  tolerance.max_bad_rows = options.max_bad_rows;
  std::vector<CsvRowError> csv_errors;
  auto table = Csv::ReadFile(path, /*has_header=*/true, tolerance,
                             &csv_errors);
  if (!table.ok()) return table.status();
  auto& parsed = table.value();
  if (parsed.header.size() < 2) {
    return Status::InvalidArgument(
        "feature CSV needs at least one feature column plus label");
  }
  local_report.rows_read = parsed.rows.size() + csv_errors.size();
  local_report.rows_skipped = csv_errors.size();
  local_report.errors = std::move(csv_errors);

  std::vector<std::string> names(parsed.header.begin(),
                                 parsed.header.end() - 1);
  FeatureMatrix out(std::move(names));
  out.Reserve(parsed.rows.size());
  // Skips the row in tolerant modes (recording `message`); in strict
  // mode the whole load fails.
  auto skip_or_fail = [&](size_t r, std::string message) -> Status {
    if (strict) return Status::InvalidArgument(std::move(message));
    ++local_report.rows_skipped;
    if (local_report.errors.size() < options.max_bad_rows) {
      // Physical-line attribution was lost at the Csv layer; report the
      // 1-based data-row index instead.
      local_report.errors.push_back(CsvRowError{r + 1, std::move(message)});
    }
    return Status::OK();
  };

  for (size_t r = 0; r < parsed.rows.size(); ++r) {
    const auto& row = parsed.rows[r];
    if (row.size() != parsed.header.size()) {
      TRANSER_RETURN_IF_ERROR(skip_or_fail(
          r, StrFormat("row %zu has %zu fields, expected %zu", r, row.size(),
                       parsed.header.size())));
      continue;
    }
    std::vector<double> features(out.num_features());
    bool row_ok = true;
    for (size_t c = 0; c < out.num_features() && row_ok; ++c) {
      if (!ParseDouble(row[c], &features[c])) {
        TRANSER_RETURN_IF_ERROR(skip_or_fail(
            r, StrFormat("row %zu col %zu: '%s' is not numeric", r, c,
                         row[c].c_str())));
        row_ok = false;
        break;
      }
      // "nan" / "inf" parse successfully; they are value-level faults.
      if (!strict && !std::isfinite(features[c])) {
        if (repair) {
          features[c] = std::isnan(features[c]) ? 0.0
                        : features[c] > 0.0     ? 1.0
                                                : 0.0;
          ++local_report.values_repaired;
        } else {
          TRANSER_RETURN_IF_ERROR(skip_or_fail(
              r, StrFormat("row %zu col %zu: non-finite value", r, c)));
          row_ok = false;
        }
      }
    }
    if (!row_ok) continue;
    int64_t label = 0;
    if (!ParseInt64(row.back(), &label)) {
      TRANSER_RETURN_IF_ERROR(
          skip_or_fail(r, StrFormat("row %zu: label '%s' is not an integer",
                                    r, row.back().c_str())));
      continue;
    }
    if (!strict && !IsValidLabel(static_cast<int>(label))) {
      if (repair) {
        label = kUnlabeled;
        ++local_report.values_repaired;
      } else {
        TRANSER_RETURN_IF_ERROR(skip_or_fail(
            r, StrFormat("row %zu: label %lld out of domain", r,
                         static_cast<long long>(label))));
        continue;
      }
    }
    out.Append(features, static_cast<int>(label));
  }
  local_report.rows_kept = out.size();
  if (local_report.rows_skipped > options.max_bad_rows) {
    return Status::InvalidArgument(StrFormat(
        "%zu bad rows exceed the tolerance of %zu", local_report.rows_skipped,
        options.max_bad_rows));
  }
  if (diagnostics != nullptr) {
    if (local_report.rows_skipped > 0) {
      diagnostics->Add(DegradationKind::kRowsDropped, "ingest",
                       StrFormat("%s: skipped %zu of %zu rows", path.c_str(),
                                 local_report.rows_skipped,
                                 local_report.rows_read),
                       static_cast<double>(local_report.rows_read),
                       static_cast<double>(local_report.rows_skipped));
    }
    if (local_report.values_repaired > 0) {
      diagnostics->Add(DegradationKind::kValuesRepaired, "ingest",
                       StrFormat("%s: repaired %zu values", path.c_str(),
                                 local_report.values_repaired),
                       static_cast<double>(local_report.rows_read),
                       static_cast<double>(local_report.values_repaired));
    }
  }
  if (report != nullptr) *report = std::move(local_report);
  return out;
}

Result<FeatureMatrix> FeatureMatrix::Validate(
    const ValidationOptions& options, ValidationReport* report,
    RunDiagnostics* diagnostics) const {
  ValidationReport local_report;
  local_report.rows_checked = size();
  const size_t m = num_features();

  std::vector<bool> row_bad(size(), false);
  std::vector<bool> column_constant(m, true);
  FeatureMatrix repaired;
  const bool clamp = options.policy == RepairPolicy::kClampValues;
  if (clamp) repaired = *this;

  for (size_t i = 0; i < size(); ++i) {
    const std::span<const double> row = Row(i);
    for (size_t c = 0; c < m; ++c) {
      const double v = row[c];
      if (options.require_finite && !std::isfinite(v)) {
        ++local_report.nonfinite_values;
        local_report.AddIssue(
            i, c, StrFormat("row %zu col %zu: non-finite value", i, c),
            options.max_issues);
        row_bad[i] = true;
        if (clamp) {
          repaired.data_[i * m + c] =
              std::isnan(v) ? 0.0 : (v > 0.0 ? 1.0 : 0.0);
          ++local_report.values_repaired;
        }
      } else if (options.check_unit_interval && (v < 0.0 || v > 1.0)) {
        ++local_report.out_of_range_values;
        local_report.AddIssue(
            i, c,
            StrFormat("row %zu col %zu: value %g outside [0, 1]", i, c, v),
            options.max_issues);
        row_bad[i] = true;
        if (clamp) {
          repaired.data_[i * m + c] = v < 0.0 ? 0.0 : 1.0;
          ++local_report.values_repaired;
        }
      }
      if (i > 0 && row[c] != data_[c]) column_constant[c] = false;
    }
    if (options.check_label_domain && !IsValidLabel(labels_[i])) {
      ++local_report.bad_labels;
      local_report.AddIssue(
          i, m, StrFormat("row %zu: label %d out of domain", i, labels_[i]),
          options.max_issues);
      row_bad[i] = true;
      if (clamp) {
        repaired.labels_[i] = kUnlabeled;
        ++local_report.values_repaired;
      }
    }
  }
  if (options.flag_constant_columns && size() > 1) {
    for (size_t c = 0; c < m; ++c) {
      if (column_constant[c]) local_report.constant_columns.push_back(c);
    }
    if (!local_report.constant_columns.empty()) {
      TRANSER_LOG(Warning) << local_report.constant_columns.size()
                           << " constant feature columns carry no signal";
    }
  }

  auto finish = [&](FeatureMatrix matrix) -> Result<FeatureMatrix> {
    if (diagnostics != nullptr && !local_report.clean()) {
      if (local_report.rows_dropped > 0) {
        diagnostics->Add(DegradationKind::kRowsDropped, "validate",
                         local_report.Summary(), 0.0,
                         static_cast<double>(local_report.rows_dropped));
      }
      if (local_report.values_repaired > 0) {
        diagnostics->Add(DegradationKind::kValuesRepaired, "validate",
                         local_report.Summary(), 0.0,
                         static_cast<double>(local_report.values_repaired));
      }
    }
    if (report != nullptr) *report = std::move(local_report);
    return matrix;
  };

  if (local_report.clean()) return finish(*this);

  switch (options.policy) {
    case RepairPolicy::kStrict: {
      const std::string summary = local_report.Summary();
      if (report != nullptr) *report = std::move(local_report);
      return Status::InvalidArgument("feature matrix failed validation: " +
                                     summary);
    }
    case RepairPolicy::kDropRows: {
      std::vector<size_t> keep;
      keep.reserve(size());
      for (size_t i = 0; i < size(); ++i) {
        if (!row_bad[i]) keep.push_back(i);
      }
      local_report.rows_dropped = size() - keep.size();
      return finish(Select(keep));
    }
    case RepairPolicy::kClampValues:
      return finish(std::move(repaired));
  }
  return Status::Internal("unreachable repair policy");
}

Status ValidateDomainPair(const FeatureMatrix& source,
                          const FeatureMatrix& target) {
  if (source.num_features() != target.num_features()) {
    return Status::InvalidArgument(StrFormat(
        "source and target feature spaces differ (%zu vs %zu features)",
        source.num_features(), target.num_features()));
  }
  if (source.empty()) {
    return Status::InvalidArgument("source domain is empty");
  }
  if (target.empty()) {
    return Status::InvalidArgument("target domain is empty");
  }
  if (source.CountMatches() == 0 || source.CountNonMatches() == 0) {
    return Status::FailedPrecondition(
        "source domain carries a single class; a binary classifier cannot "
        "be trained");
  }
  if (source.CountUnlabeled() > 0) {
    return Status::FailedPrecondition(
        StrFormat("source domain has %zu unlabeled instances; transfer "
                  "needs a fully labelled source",
                  source.CountUnlabeled()));
  }
  return Status::OK();
}

}  // namespace transer

// Tests for the deterministic parallel runtime: chunk planning, pool /
// region mechanics, ordered reduction, per-chunk seed derivation, and
// the end-to-end determinism contract — TransER reports, kNN answers
// and sweep journals bit-identical at --threads 1, 2 and 8.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/sweep_checkpoint.h"
#include "core/transer.h"
#include "data/feature_space_generator.h"
#include "knn/brute_force.h"
#include "knn/kd_tree.h"
#include "transfer/naive_transfer.h"
#include "util/parallel.h"
#include "util/random.h"

namespace transer {
namespace {

// ---------- chunk planning ----------

TEST(PlanChunksTest, CoversRangeExactlyAndInOrder) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{256},
                   size_t{1000}, size_t{100000}}) {
    const ChunkPlan plan = PlanChunks(n);
    size_t covered = 0;
    for (size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
      EXPECT_EQ(plan.Begin(chunk), covered);
      EXPECT_GT(plan.End(chunk), plan.Begin(chunk));
      covered = plan.End(chunk);
    }
    EXPECT_EQ(covered, n);
    EXPECT_LE(plan.num_chunks, kMaxChunksPerRegion);
  }
}

TEST(PlanChunksTest, RespectsMinItemsPerChunk) {
  const ChunkPlan plan = PlanChunks(1000, 64);
  EXPECT_GE(plan.chunk_size, 64u);
  for (size_t chunk = 0; chunk + 1 < plan.num_chunks; ++chunk) {
    EXPECT_GE(plan.End(chunk) - plan.Begin(chunk), 64u);
  }
}

TEST(PlanChunksTest, BoundariesIgnoreThreadCount) {
  // The plan is a pure function of (n, min_items_per_chunk); there is no
  // thread-count input at all. Guard the signature staying that way by
  // checking two identical calls agree after the default changes.
  const ChunkPlan before = PlanChunks(12345, 8);
  SetDefaultThreadCount(7);
  const ChunkPlan after = PlanChunks(12345, 8);
  SetDefaultThreadCount(0);
  EXPECT_EQ(before.chunk_size, after.chunk_size);
  EXPECT_EQ(before.num_chunks, after.num_chunks);
}

// ---------- ParallelFor ----------

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    ParallelOptions options;
    options.num_threads = threads;
    const Status status = ParallelFor(
        ExecutionContext::Unlimited(), "test", n,
        [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
          for (size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
          return Status::OK();
        },
        options);
    ASSERT_TRUE(status.ok()) << status.ToString();
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelForTest, FirstErrorWinsAndCancelsRemainingChunks) {
  std::atomic<int> executed{0};
  ParallelOptions options;
  options.num_threads = 4;
  const Status status = ParallelFor(
      ExecutionContext::Unlimited(), "test", 200,
      [&](size_t /*begin*/, size_t /*end*/, size_t /*chunk*/) -> Status {
        executed.fetch_add(1, std::memory_order_relaxed);
        return Status::InvalidArgument("boom");
      },
      options);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("boom"), std::string::npos);
  // Every lane fails its first chunk and the stop flag blocks further
  // claims, so at most one chunk per lane ever runs.
  EXPECT_LE(executed.load(), 4);
}

TEST(ParallelForTest, NestedRegionsRunSerially) {
  std::atomic<int> in_region{0};
  std::atomic<int> nested_threads{-1};
  ParallelOptions options;
  options.num_threads = 4;
  const Status status = ParallelFor(
      ExecutionContext::Unlimited(), "outer", 64,
      [&](size_t /*begin*/, size_t /*end*/, size_t /*chunk*/) -> Status {
        in_region.fetch_add(InParallelRegion() ? 1 : 0,
                            std::memory_order_relaxed);
        nested_threads.store(EffectiveThreadCount(8),
                             std::memory_order_relaxed);
        return Status::OK();
      },
      options);
  ASSERT_TRUE(status.ok());
  EXPECT_GT(in_region.load(), 0);        // the parallel path was taken
  EXPECT_EQ(nested_threads.load(), 1);   // and nesting serialises
}

TEST(ParallelForSeededTest, ChunkStreamsIgnoreThreadCount) {
  const size_t n = 500;
  const uint64_t seed = 4242;
  std::vector<std::vector<uint64_t>> draws_by_threads;
  for (int threads : {1, 2, 8}) {
    const ChunkPlan plan = PlanChunks(n);
    std::vector<uint64_t> draws(plan.num_chunks, 0);
    ParallelOptions options;
    options.num_threads = threads;
    const Status status = ParallelForSeeded(
        ExecutionContext::Unlimited(), "test", n, seed,
        [&](size_t /*begin*/, size_t /*end*/, size_t chunk,
            Rng& rng) -> Status {
          draws[chunk] = rng.NextUint64();
          return Status::OK();
        },
        options);
    ASSERT_TRUE(status.ok()) << status.ToString();
    draws_by_threads.push_back(std::move(draws));
  }
  EXPECT_EQ(draws_by_threads[0], draws_by_threads[1]);
  EXPECT_EQ(draws_by_threads[0], draws_by_threads[2]);
}

TEST(ParallelReduceTest, OrderedFoldIsBitIdenticalAcrossThreadCounts) {
  // Floating-point addition is not associative, so an unordered fold
  // would differ in the last bits between runs. The ordered combine must
  // not.
  const size_t n = 10007;
  std::vector<double> reductions;
  for (int threads : {1, 2, 8}) {
    ParallelOptions options;
    options.num_threads = threads;
    auto sum = ParallelReduce<double>(
        ExecutionContext::Unlimited(), "test", n, 0.0,
        [&](size_t begin, size_t end, size_t /*chunk*/,
            double* acc) -> Status {
          for (size_t i = begin; i < end; ++i) {
            *acc += std::sin(static_cast<double>(i)) * 1e-3;
          }
          return Status::OK();
        },
        [](double* into, double* part) { *into += *part; }, options);
    ASSERT_TRUE(sum.ok());
    reductions.push_back(sum.value());
  }
  EXPECT_EQ(reductions[0], reductions[1]);
  EXPECT_EQ(reductions[0], reductions[2]);
}

// ---------- kNN determinism ----------

Matrix RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix points(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) points(i, d) = rng.NextDouble();
  }
  return points;
}

TEST(KdTreeParallelTest, ParallelBuildAnswersMatchSerialBuild) {
  const Matrix points = RandomPoints(2000, 6, 17);
  const KdTree serial(points, 1);
  const KdTree parallel(points, 4);
  Rng rng(18);
  for (int q = 0; q < 50; ++q) {
    std::vector<double> query(6);
    for (double& v : query) v = rng.NextDouble();
    const auto a = serial.Query(query, 7);
    const auto b = parallel.Query(query, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST(KdTreeParallelTest, QueryBatchMatchesSingleQueriesAtAnyThreadCount) {
  const Matrix points = RandomPoints(600, 5, 23);
  const Matrix queries = RandomPoints(40, 5, 24);
  const KdTree tree(points);
  for (int threads : {1, 8}) {
    ParallelOptions options;
    options.num_threads = threads;
    auto batch = tree.QueryBatch(queries, 5, ExecutionContext::Unlimited(),
                                 "kd_tree", options);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch.value().size(), queries.rows());
    for (size_t q = 0; q < queries.rows(); ++q) {
      std::vector<double> query(queries.Row(q), queries.Row(q) + 5);
      const auto single = tree.Query(query, 5);
      ASSERT_EQ(batch.value()[q].size(), single.size());
      for (size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(batch.value()[q][i].index, single[i].index);
        EXPECT_EQ(batch.value()[q][i].distance, single[i].distance);
      }
    }
  }
}

TEST(KdTreeParallelTest, BruteForceAgreesWithKdTreeOnTies) {
  // Duplicate points force distance ties; both backends must resolve
  // them by (distance, index) and so return identical neighbour lists.
  Matrix points(8, 2);
  for (size_t i = 0; i < 8; ++i) {
    points(i, 0) = static_cast<double>(i % 2);
    points(i, 1) = 0.0;
  }
  const KdTree tree(points);
  const BruteForceKnn brute(points);
  const std::vector<double> query = {0.5, 0.0};
  const auto a = tree.Query(query, 4);
  const auto b = brute.Query(query, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

// ---------- end-to-end determinism ----------

TransferScenario MakeScenario(const std::string& name, size_t n,
                              uint64_t seed) {
  FeatureSpaceGenerator generator({4, 40, seed});
  FeatureDomainSpec source;
  source.num_instances = n;
  source.match_fraction = 0.30;
  source.ambiguous_fraction = 0.05;
  source.seed = seed + 1;
  FeatureDomainSpec target = source;
  target.mode_shift = -0.05;
  target.seed = seed + 2;
  TransferScenario scenario;
  scenario.name = name;
  scenario.source_name = "source";
  scenario.target_name = "target";
  scenario.source = generator.Generate(source);
  scenario.target = generator.Generate(target);
  return scenario;
}

TEST(ParallelDeterminismTest, TransERReportBitIdenticalAcrossThreadCounts) {
  const TransferScenario scenario = MakeScenario("A -> B", 240, 7);
  const FeatureMatrix target = scenario.target.WithoutLabels();
  const auto suite = DefaultClassifierSuite();

  std::vector<std::vector<int>> predictions;
  std::vector<TransERReport> reports;
  for (int threads : {1, 2, 8}) {
    TransferRunOptions run_options;
    run_options.seed = 91;
    run_options.num_threads = threads;
    TransER transer;
    TransERReport report;
    auto predicted = transer.RunWithReport(scenario.source, target,
                                           suite[1].make, run_options,
                                           &report);
    ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
    predictions.push_back(std::move(predicted).value());
    reports.push_back(std::move(report));
  }
  for (size_t i = 1; i < predictions.size(); ++i) {
    EXPECT_EQ(predictions[0], predictions[i]);
    EXPECT_EQ(reports[0].source_instances, reports[i].source_instances);
    EXPECT_EQ(reports[0].selected_instances, reports[i].selected_instances);
    EXPECT_EQ(reports[0].candidate_instances,
              reports[i].candidate_instances);
    EXPECT_EQ(reports[0].balanced_instances, reports[i].balanced_instances);
    EXPECT_EQ(reports[0].pseudo_matches, reports[i].pseudo_matches);
    EXPECT_EQ(reports[0].tcl_trained, reports[i].tcl_trained);
    EXPECT_EQ(reports[0].diagnostics.events.size(),
              reports[i].diagnostics.events.size());
  }
}

std::string TempJournalPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + name + ".jsonl";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

/// The journal with every runtime_seconds (the only wall-clock —
/// i.e. nondeterministic — field) zeroed, re-encoded line by line.
std::string NormalisedJournal(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto record = DecodeSweepCellRecord(line);
    EXPECT_TRUE(record.ok()) << line;
    if (!record.ok()) continue;
    record.value().runtime_seconds = 0.0;
    out << EncodeSweepCellRecord(record.value()) << '\n';
  }
  return out.str();
}

TEST(ParallelDeterminismTest, SweepJournalsIdenticalAcrossThreadCounts) {
  std::vector<TransferScenario> scenarios;
  scenarios.push_back(MakeScenario("A -> B", 150, 3));
  scenarios.push_back(MakeScenario("B -> A", 150, 5));
  std::vector<std::unique_ptr<TransferMethod>> methods;
  methods.push_back(std::make_unique<TransER>());
  methods.push_back(std::make_unique<NaiveTransfer>());
  const auto suite = DefaultClassifierSuite();

  std::vector<std::string> journals;
  std::vector<std::vector<MethodScenarioResult>> all_results;
  for (int threads : {1, 2, 8}) {
    const std::string path = TempJournalPath(
        "parallel_sweep_t" + std::to_string(threads));
    SweepOptions options;
    options.checkpoint_path = path;
    options.base_options.seed = 12033;
    options.base_options.num_threads = threads;
    auto results = RunCheckpointedSweep(methods, scenarios, suite, options);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    all_results.push_back(std::move(results).value());
    journals.push_back(NormalisedJournal(path));
  }

  // Journals are byte-identical once the wall-clock field is normalised:
  // same cells, same quality bits, same canonical order.
  EXPECT_FALSE(journals[0].empty());
  EXPECT_EQ(journals[0], journals[1]);
  EXPECT_EQ(journals[0], journals[2]);

  for (size_t v = 1; v < all_results.size(); ++v) {
    ASSERT_EQ(all_results[0].size(), all_results[v].size());
    for (size_t i = 0; i < all_results[0].size(); ++i) {
      EXPECT_EQ(all_results[0][i].method, all_results[v][i].method);
      EXPECT_EQ(all_results[0][i].scenario, all_results[v][i].scenario);
      EXPECT_EQ(all_results[0][i].completed_runs,
                all_results[v][i].completed_runs);
      ASSERT_EQ(all_results[0][i].per_classifier.size(),
                all_results[v][i].per_classifier.size());
      for (size_t j = 0; j < all_results[0][i].per_classifier.size(); ++j) {
        EXPECT_EQ(all_results[0][i].per_classifier[j].f_star,
                  all_results[v][i].per_classifier[j].f_star);
        EXPECT_EQ(all_results[0][i].per_classifier[j].precision,
                  all_results[v][i].per_classifier[j].precision);
      }
    }
  }
}

TEST(ParallelDeterminismTest, SerialResumeCompletesParallelJournal) {
  // A journal begun by a parallel sweep must be resumable by a serial
  // one (and vice versa): cells are keyed and seeded identically.
  std::vector<TransferScenario> scenarios;
  scenarios.push_back(MakeScenario("A -> B", 120, 11));
  std::vector<std::unique_ptr<TransferMethod>> methods;
  methods.push_back(std::make_unique<NaiveTransfer>());
  const auto suite = DefaultClassifierSuite();
  const std::string path = TempJournalPath("parallel_then_serial");

  SweepOptions options;
  options.checkpoint_path = path;
  options.base_options.seed = 12033;
  options.base_options.num_threads = 8;
  auto first = RunCheckpointedSweep(methods, scenarios, suite, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  options.base_options.num_threads = 1;
  auto second = RunCheckpointedSweep(methods, scenarios, suite, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(first.value().size(), second.value().size());
  for (size_t i = 0; i < first.value().size(); ++i) {
    EXPECT_EQ(first.value()[i].quality.f_star.mean,
              second.value()[i].quality.f_star.mean);
    // The resumed sweep reused every journaled cell instead of re-running.
    EXPECT_EQ(first.value()[i].completed_runs,
              second.value()[i].completed_runs);
  }
}

}  // namespace
}  // namespace transer

#ifndef TRANSER_LINALG_CHOLESKY_H_
#define TRANSER_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace transer {

/// \brief Cholesky factorisation A = L * L^T of a symmetric positive
/// definite matrix, plus triangular solves.
///
/// Used to reduce the generalized eigenproblem in TCA to a standard
/// symmetric one, and to invert covariance matrices.
class Cholesky {
 public:
  /// Factorises `a` (must be square, SPD). Fails with FailedPrecondition
  /// if a non-positive pivot is encountered.
  static Result<Cholesky> Factor(const Matrix& a);

  /// Lower-triangular factor L.
  const Matrix& L() const { return l_; }

  /// Solves L * y = b.
  std::vector<double> SolveLower(const std::vector<double>& b) const;

  /// Solves L^T * x = y.
  std::vector<double> SolveUpper(const std::vector<double>& y) const;

  /// Solves A * x = b via the two triangular solves.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves L * Y = B column-by-column.
  Matrix SolveLowerMatrix(const Matrix& b) const;

  /// Computes A^{-1} via n solves against identity columns.
  Matrix Inverse() const;

  /// log(det(A)) = 2 * sum(log(L_ii)).
  double LogDeterminant() const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace transer

#endif  // TRANSER_LINALG_CHOLESKY_H_

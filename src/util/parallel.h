#ifndef TRANSER_UTIL_PARALLEL_H_
#define TRANSER_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/execution_context.h"
#include "util/random.h"
#include "util/status.h"

namespace transer {

// ---------------------------------------------------------------------
// Thread-count policy
// ---------------------------------------------------------------------

/// The process-wide default parallelism used wherever a caller passes
/// num_threads = 0. Initially std::thread::hardware_concurrency()
/// (clamped to >= 1); binaries override it from their --threads flag.
int DefaultThreadCount();

/// Sets the process-wide default. `n <= 0` restores the hardware
/// default. Affects only regions started after the call.
void SetDefaultThreadCount(int n);

/// Resolves a requested thread count: `requested > 0` wins, otherwise
/// DefaultThreadCount(). Inside an already-running parallel region the
/// answer is always 1 — nested regions run serially on their calling
/// lane instead of oversubscribing the pool, which also means a
/// parallel sweep executes each cell exactly as a single-threaded run
/// would (the determinism contract of the Table 2/3 journals).
int EffectiveThreadCount(int requested);

/// True while the calling thread is executing inside a ParallelFor /
/// ParallelReduce lane (used by EffectiveThreadCount; exposed for
/// tests).
bool InParallelRegion();

// ---------------------------------------------------------------------
// Chunking
// ---------------------------------------------------------------------

/// \brief Static chunk plan over [0, n). Boundaries depend only on
/// (n, min_items_per_chunk) — never on the thread count — so per-chunk
/// RNG streams and ordered reductions are bit-identical for any
/// parallelism, including the serial path.
struct ChunkPlan {
  size_t items = 0;
  size_t chunk_size = 1;
  size_t num_chunks = 0;

  size_t Begin(size_t chunk) const { return chunk * chunk_size; }
  size_t End(size_t chunk) const {
    const size_t end = (chunk + 1) * chunk_size;
    return end < items ? end : items;
  }
};

/// Plans chunks of at least `min_items_per_chunk` items, targeting at
/// most kMaxChunksPerRegion chunks.
ChunkPlan PlanChunks(size_t n, size_t min_items_per_chunk = 1);

/// Upper bound on chunks per region; keeps scheduling overhead bounded
/// while leaving enough slack for load balancing at any sane thread
/// count.
inline constexpr size_t kMaxChunksPerRegion = 256;

// ---------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------

/// \brief Lazily-started shared worker pool. Threads are spawned on
/// first demand (never at static-init time) and grown as regions
/// request more lanes, up to a hard cap; they idle on a condition
/// variable between regions. Use through ParallelFor / ParallelReduce —
/// Run() is the low-level primitive.
class ThreadPool {
 public:
  /// The process-wide pool. First call constructs it; workers start
  /// only when a Run() actually needs them.
  static ThreadPool& Global();

  /// Executes `work` on up to `lanes` lanes: the calling thread always
  /// participates, and up to `lanes - 1` pool workers join. `work` must
  /// be callable concurrently; each lane calls it exactly once and the
  /// function typically drains an atomic chunk queue. Returns when the
  /// caller's call and every joined worker's call have finished.
  ///
  /// Safe to call from inside a worker lane (the nested call simply
  /// runs `work` on the calling lane; see EffectiveThreadCount) and
  /// from several threads at once.
  void Run(int lanes, const std::function<void()>& work);

  /// Workers currently alive (grown on demand; for tests/diagnostics).
  int worker_count() const;

  /// Hard cap on pool workers (oversubscription beyond the hardware
  /// width is allowed — determinism tests exercise --threads=8 on any
  /// machine).
  static constexpr int kMaxWorkers = 128;

  ~ThreadPool();

 private:
  ThreadPool() = default;

  struct Region;

  void EnsureWorkers(int wanted);
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<Region>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

// ---------------------------------------------------------------------
// Parallel loops
// ---------------------------------------------------------------------

/// \brief Tuning knobs for one parallel region.
struct ParallelOptions {
  /// 0 = DefaultThreadCount(). Always serial inside a parallel region.
  int num_threads = 0;
  /// Minimum items per chunk; raise it when the per-item body is tiny.
  /// Part of the static chunk plan, so it must not vary with thread
  /// count between runs that are expected to match bit-for-bit.
  size_t min_items_per_chunk = 1;
  /// Optional sink: when the region fails with a budget/cancellation
  /// status, the outcome is recorded once from the calling thread
  /// (workers never touch diagnostics — RunDiagnostics is not
  /// thread-safe).
  RunDiagnostics* diagnostics = nullptr;
};

/// Chunk body: process [begin, end); `chunk` is the chunk's index in
/// the static plan. Returning a non-OK status stops the region: the
/// first error wins and the remaining chunks are cancelled.
using ParallelChunkBody =
    std::function<Status(size_t begin, size_t end, size_t chunk)>;

/// Runs `body` over the static chunk plan of [0, n). Workers poll
/// `context` (deadline + cancellation) before every chunk and may
/// charge its memory budget from inside the body; the first non-OK
/// status — body error, TE, ME or cancellation — wins and cancels all
/// not-yet-started chunks. Chunk boundaries are independent of the
/// thread count, so any body that writes to per-item or per-chunk slots
/// produces bit-identical results at every parallelism level.
Status ParallelFor(const ExecutionContext& context, const std::string& scope,
                   size_t n, const ParallelChunkBody& body,
                   const ParallelOptions& options = {});

/// Seeded chunk body: as ParallelChunkBody plus a chunk-private Rng.
using SeededParallelChunkBody = std::function<Status(
    size_t begin, size_t end, size_t chunk, Rng& rng)>;

/// ParallelFor with a deterministic per-chunk RNG stream: chunk c draws
/// from Rng(seed).Fork(c), a function of (seed, c) alone — not of the
/// thread count, the execution order, or any other chunk's consumption.
Status ParallelForSeeded(const ExecutionContext& context,
                         const std::string& scope, size_t n, uint64_t seed,
                         const SeededParallelChunkBody& body,
                         const ParallelOptions& options = {});

/// \brief Ordered parallel reduction: `map` fills one accumulator per
/// chunk (each starts as a copy of `init`), and after every chunk
/// succeeded `combine(&result, &part)` folds the parts into `init`'s
/// copy strictly in chunk order on the calling thread. Floating-point
/// reductions are therefore bit-identical for any thread count.
///
/// map:     Status(size_t begin, size_t end, size_t chunk, T* acc)
/// combine: void(T* into, T* part) — applied for chunks 0, 1, 2, ...
template <typename T, typename MapFn, typename CombineFn>
Result<T> ParallelReduce(const ExecutionContext& context,
                         const std::string& scope, size_t n, T init,
                         MapFn map, CombineFn combine,
                         const ParallelOptions& options = {}) {
  const ChunkPlan plan = PlanChunks(n, options.min_items_per_chunk);
  std::vector<T> parts(plan.num_chunks, init);
  TRANSER_RETURN_IF_ERROR(ParallelFor(
      context, scope, n,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        return map(begin, end, chunk, &parts[chunk]);
      },
      options));
  T result = std::move(init);
  for (size_t chunk = 0; chunk < parts.size(); ++chunk) {
    combine(&result, &parts[chunk]);
  }
  return result;
}

}  // namespace transer

#endif  // TRANSER_UTIL_PARALLEL_H_

#ifndef TRANSER_UTIL_STATUS_H_
#define TRANSER_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace transer {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// \brief Lightweight success/error result used across fallible public APIs.
///
/// The library does not throw exceptions across its public API boundary.
/// Operations that can fail for non-programmer-error reasons (I/O, malformed
/// input) return a Status (or a value plus a Status-bearing Result).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers mirroring the StatusCode values.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-error pair. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value marks success.
  Result(T value)  // NOLINT(runtime/explicit): value-to-result is intended.
      : value_(std::move(value)) {}
  /// Implicit construction from a non-OK status marks failure.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace transer

/// Propagates a non-OK Status from the current function.
#define TRANSER_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::transer::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // TRANSER_UTIL_STATUS_H_

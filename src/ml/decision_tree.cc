#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "util/artifact_io.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace transer {

namespace {

// Weighted Gini impurity of a (match_weight, total_weight) census.
double Gini(double match_w, double total_w) {
  if (total_w <= 0.0) return 0.0;
  const double p = match_w / total_w;
  return 2.0 * p * (1.0 - p);
}

// Leaf probability is the raw weighted match fraction (as in sklearn);
// pure leaves report exactly 0 or 1, which the pseudo-label confidence
// threshold t_p of TransER's TCL phase relies on.
double LeafProbability(double match_w, double total_w) {
  if (total_w <= 0.0) return 0.5;
  return match_w / total_w;
}

}  // namespace

void DecisionTree::Fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  TRANSER_CHECK(weights.empty() || weights.size() == y.size());
  nodes_.clear();
  root_ = -1;
  num_features_ = x.cols();
  rng_state_ = options_.seed;
  if (x.rows() == 0) return;

  std::vector<double> w = weights;
  if (w.empty()) w.assign(x.rows(), 1.0);

  std::vector<size_t> indices(x.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  nodes_.reserve(2 * x.rows() / options_.min_samples_split + 4);
  root_ = Grow(x, y, w, &indices, 0, indices.size(), 0);
}

ptrdiff_t DecisionTree::Grow(const Matrix& x, const std::vector<int>& y,
                             const std::vector<double>& w,
                             std::vector<size_t>* indices, size_t begin,
                             size_t end, int depth) {
  double total_w = 0.0;
  double match_w = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t row = (*indices)[i];
    total_w += w[row];
    if (y[row] == 1) match_w += w[row];
  }

  Node node;
  node.match_probability = LeafProbability(match_w, total_w);

  const double parent_impurity = Gini(match_w, total_w);
  const bool can_split = depth < options_.max_depth &&
                         end - begin >= options_.min_samples_split &&
                         parent_impurity > 0.0;

  size_t best_feature = 0;
  double best_threshold = 0.0;
  double best_decrease = options_.min_impurity_decrease;
  bool found = false;

  // An interrupted Fit stops splitting: the subtree collapses to a leaf
  // with the census probability, and the caller surfaces the status.
  if (can_split && !FitInterrupted()) {
    // Candidate features: all, or a random subset for forests.
    std::vector<size_t> candidates;
    if (options_.max_features == 0 ||
        options_.max_features >= num_features_) {
      candidates.resize(num_features_);
      for (size_t f = 0; f < num_features_; ++f) candidates[f] = f;
    } else {
      Rng rng(rng_state_);
      rng_state_ = rng.NextUint64();
      candidates = rng.SampleWithoutReplacement(num_features_,
                                                options_.max_features);
    }

    std::vector<size_t> sorted(indices->begin() + static_cast<ptrdiff_t>(begin),
                               indices->begin() + static_cast<ptrdiff_t>(end));
    for (size_t feature : candidates) {
      std::sort(sorted.begin(), sorted.end(),
                [&x, feature](size_t a, size_t b) {
                  return x(a, feature) < x(b, feature);
                });
      // Sweep split points between consecutive distinct values.
      double left_w = 0.0;
      double left_match = 0.0;
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        const size_t row = sorted[i];
        left_w += w[row];
        if (y[row] == 1) left_match += w[row];
        const double value = x(row, feature);
        const double next = x(sorted[i + 1], feature);
        if (next <= value) continue;  // no boundary here
        const double right_w = total_w - left_w;
        const double right_match = match_w - left_match;
        if (left_w <= 0.0 || right_w <= 0.0) continue;
        const double child_impurity =
            (left_w * Gini(left_match, left_w) +
             right_w * Gini(right_match, right_w)) /
            total_w;
        const double decrease = parent_impurity - child_impurity;
        if (decrease > best_decrease) {
          // The midpoint of two nearly-adjacent doubles can round up to
          // `next`, which would make the `<= threshold` partition
          // degenerate; such boundaries are unsplittable.
          const double threshold = value + 0.5 * (next - value);
          if (!(threshold < next)) continue;
          best_decrease = decrease;
          best_feature = feature;
          best_threshold = threshold;
          found = true;
        }
      }
    }
  }

  if (!found) {
    nodes_.push_back(node);
    return static_cast<ptrdiff_t>(nodes_.size() - 1);
  }

  // Partition the index slice around the chosen split.
  auto mid_it = std::partition(
      indices->begin() + static_cast<ptrdiff_t>(begin),
      indices->begin() + static_cast<ptrdiff_t>(end),
      [&x, best_feature, best_threshold](size_t row) {
        return x(row, best_feature) <= best_threshold;
      });
  const size_t mid =
      static_cast<size_t>(mid_it - indices->begin());
  TRANSER_CHECK(mid > begin && mid < end);

  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const ptrdiff_t index = static_cast<ptrdiff_t>(nodes_.size() - 1);
  const ptrdiff_t left = Grow(x, y, w, indices, begin, mid, depth + 1);
  const ptrdiff_t right = Grow(x, y, w, indices, mid, end, depth + 1);
  nodes_[static_cast<size_t>(index)].left = left;
  nodes_[static_cast<size_t>(index)].right = right;
  return index;
}

double DecisionTree::PredictProba(std::span<const double> features) const {
  TRANSER_CHECK_EQ(features.size(), num_features_);
  if (root_ < 0) return 0.5;
  ptrdiff_t current = root_;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(current)];
    if (node.is_leaf) return node.match_probability;
    current = features[node.feature] <= node.threshold ? node.left
                                                       : node.right;
  }
}

Status DecisionTree::SaveState(artifact::Encoder* out) const {
  out->PutI64(options_.max_depth);
  out->PutU64(options_.min_samples_split);
  out->PutDouble(options_.min_impurity_decrease);
  out->PutU64(options_.max_features);
  out->PutU64(options_.seed);
  out->PutU64(num_features_);
  out->PutI64(root_);
  out->PutU64(nodes_.size());
  for (const Node& node : nodes_) {
    out->PutU8(node.is_leaf ? 1 : 0);
    out->PutU64(node.feature);
    out->PutDouble(node.threshold);
    out->PutI64(node.left);
    out->PutI64(node.right);
    out->PutDouble(node.match_probability);
  }
  return Status::OK();
}

Status DecisionTree::LoadState(artifact::Decoder* in) {
  DecisionTreeOptions options;
  int64_t max_depth = 0;
  uint64_t min_samples_split = 0;
  uint64_t max_features = 0;
  TRANSER_RETURN_IF_ERROR(in->GetI64(&max_depth));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&min_samples_split));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&options.min_impurity_decrease));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&max_features));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&options.seed));
  if (max_depth < 0 || max_depth > INT32_MAX || min_samples_split == 0 ||
      !std::isfinite(options.min_impurity_decrease)) {
    return Status::InvalidArgument("decision tree options out of range");
  }
  options.max_depth = static_cast<int>(max_depth);
  options.min_samples_split = static_cast<size_t>(min_samples_split);
  options.max_features = static_cast<size_t>(max_features);

  uint64_t num_features = 0;
  int64_t root = 0;
  uint64_t node_count = 0;
  TRANSER_RETURN_IF_ERROR(in->GetU64(&num_features));
  TRANSER_RETURN_IF_ERROR(in->GetI64(&root));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&node_count));
  // Smallest possible node encoding: 1 + 8 + 8 + 8 + 8 + 8 bytes.
  if (node_count > in->remaining() / 41) {
    return Status::InvalidArgument("decision tree node count exceeds payload");
  }
  std::vector<Node> nodes;
  nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    Node node;
    uint8_t is_leaf = 0;
    uint64_t feature = 0;
    int64_t left = 0;
    int64_t right = 0;
    TRANSER_RETURN_IF_ERROR(in->GetU8(&is_leaf));
    TRANSER_RETURN_IF_ERROR(in->GetU64(&feature));
    TRANSER_RETURN_IF_ERROR(in->GetDouble(&node.threshold));
    TRANSER_RETURN_IF_ERROR(in->GetI64(&left));
    TRANSER_RETURN_IF_ERROR(in->GetI64(&right));
    TRANSER_RETURN_IF_ERROR(in->GetDouble(&node.match_probability));
    if (is_leaf > 1 ||
        !(node.match_probability >= 0.0 && node.match_probability <= 1.0)) {
      return Status::InvalidArgument("decision tree node is malformed");
    }
    node.is_leaf = is_leaf == 1;
    node.feature = static_cast<size_t>(feature);
    node.left = static_cast<ptrdiff_t>(left);
    node.right = static_cast<ptrdiff_t>(right);
    if (node.is_leaf) {
      if (left != -1 || right != -1) {
        return Status::InvalidArgument("decision tree leaf has children");
      }
    } else {
      // Grow() always pushes a parent before its children, so child
      // indices strictly exceed the parent's: checking that here makes
      // every loaded tree provably acyclic (prediction terminates even
      // on a crafted artifact whose CRCs were re-stamped).
      if (node.feature >= num_features || !std::isfinite(node.threshold) ||
          left <= static_cast<int64_t>(i) || right <= static_cast<int64_t>(i) ||
          left >= static_cast<int64_t>(node_count) ||
          right >= static_cast<int64_t>(node_count)) {
        return Status::InvalidArgument(StrFormat(
            "decision tree node %llu has invalid split structure",
            static_cast<unsigned long long>(i)));
      }
    }
    nodes.push_back(node);
  }
  if (root < -1 || root >= static_cast<int64_t>(node_count) ||
      (root == -1 && node_count != 0)) {
    return Status::InvalidArgument("decision tree root is out of range");
  }

  options_ = options;
  num_features_ = static_cast<size_t>(num_features);
  root_ = static_cast<ptrdiff_t>(root);
  nodes_ = std::move(nodes);
  rng_state_ = options_.seed;
  return Status::OK();
}

size_t DecisionTree::Depth() const {
  if (root_ < 0) return 0;
  // Iterative DFS carrying depth.
  std::vector<std::pair<ptrdiff_t, size_t>> stack = {{root_, 1}};
  size_t depth = 0;
  while (!stack.empty()) {
    auto [index, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (!node.is_leaf) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return depth;
}

}  // namespace transer

#include "util/validation.h"

#include <sstream>

namespace transer {

const char* RepairPolicyName(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kStrict:
      return "strict";
    case RepairPolicy::kDropRows:
      return "drop";
    case RepairPolicy::kClampValues:
      return "clamp";
  }
  return "unknown";
}

Result<RepairPolicy> ParseRepairPolicy(std::string_view name) {
  if (name == "strict") return RepairPolicy::kStrict;
  if (name == "drop" || name == "skip") return RepairPolicy::kDropRows;
  if (name == "clamp" || name == "repair") return RepairPolicy::kClampValues;
  return Status::InvalidArgument("unknown repair policy '" +
                                 std::string(name) +
                                 "' (strict|drop|skip|clamp|repair)");
}

void ValidationReport::AddIssue(size_t row, size_t col, std::string message,
                                size_t max_issues) {
  if (issues.size() >= max_issues) return;
  issues.push_back(ValidationIssue{row, col, std::move(message)});
}

std::string ValidationReport::Summary() const {
  std::ostringstream out;
  out << rows_checked << " rows checked";
  if (clean() && constant_columns.empty()) {
    out << ", clean";
    return out.str();
  }
  if (nonfinite_values > 0) out << ", " << nonfinite_values << " non-finite";
  if (out_of_range_values > 0) {
    out << ", " << out_of_range_values << " out-of-range";
  }
  if (bad_labels > 0) out << ", " << bad_labels << " bad labels";
  if (rows_dropped > 0) out << ", " << rows_dropped << " rows dropped";
  if (values_repaired > 0) {
    out << ", " << values_repaired << " values repaired";
  }
  if (!constant_columns.empty()) {
    out << ", " << constant_columns.size() << " constant columns";
  }
  return out.str();
}

}  // namespace transer

#include "util/diagnostics.h"

#include <sstream>

#include "util/logging.h"

namespace transer {

const char* DegradationKindName(DegradationKind kind) {
  switch (kind) {
    case DegradationKind::kRowsDropped:
      return "rows_dropped";
    case DegradationKind::kValuesRepaired:
      return "values_repaired";
    case DegradationKind::kSelThresholdRelaxed:
      return "sel_threshold_relaxed";
    case DegradationKind::kSelFallbackNaive:
      return "sel_fallback_naive";
    case DegradationKind::kGenThresholdLowered:
      return "gen_threshold_lowered";
    case DegradationKind::kTclSkipped:
      return "tcl_skipped";
    case DegradationKind::kTimeLimitExceeded:
      return "time_limit_exceeded";
    case DegradationKind::kMemoryLimitExceeded:
      return "memory_limit_exceeded";
    case DegradationKind::kRunCancelled:
      return "run_cancelled";
    case DegradationKind::kCheckpointTailDropped:
      return "checkpoint_tail_dropped";
    case DegradationKind::kCheckpointCellRetried:
      return "checkpoint_cell_retried";
    case DegradationKind::kModelWarmStarted:
      return "model_warm_started";
    case DegradationKind::kModelArtifactRejected:
      return "model_artifact_rejected";
    case DegradationKind::kModelSaveFailed:
      return "model_save_failed";
    case DegradationKind::kServeRequestShed:
      return "serve_request_shed";
    case DegradationKind::kServeClassifyOnly:
      return "serve_classify_only";
    case DegradationKind::kServeRequestRejected:
      return "serve_request_rejected";
    case DegradationKind::kServeArtifactRetried:
      return "serve_artifact_retried";
    case DegradationKind::kStreamRecordQuarantined:
      return "stream_record_quarantined";
    case DegradationKind::kStreamSnapshotFallback:
      return "stream_snapshot_fallback";
    case DegradationKind::kStreamRefreshSkipped:
      return "stream_refresh_skipped";
    case DegradationKind::kSparseCenteringRefused:
      return "sparse_centering_refused";
    case DegradationKind::kSparseRowsDropped:
      return "sparse_rows_dropped";
    case DegradationKind::kSparseFitUnsupported:
      return "sparse_fit_unsupported";
    case DegradationKind::kJournalRetentionStalled:
      return "journal_retention_stalled";
    case DegradationKind::kAnnExactFallback:
      return "ann_exact_fallback";
  }
  return "unknown";
}

std::string DegradationEvent::ToString() const {
  std::ostringstream out;
  out << "[" << phase << "] " << DegradationKindName(kind) << ": " << detail;
  if (original_value != adjusted_value) {
    out << " (" << original_value << " -> " << adjusted_value << ")";
  }
  return out.str();
}

size_t RunDiagnostics::CountKind(DegradationKind kind) const {
  size_t count = 0;
  for (const DegradationEvent& event : events) {
    if (event.kind == kind) ++count;
  }
  return count;
}

void RunDiagnostics::Add(DegradationEvent event) {
  TRANSER_LOG(Warning) << "degradation " << event.ToString();
  events.push_back(std::move(event));
}

void RunDiagnostics::Add(DegradationKind kind, std::string phase,
                         std::string detail, double original_value,
                         double adjusted_value) {
  DegradationEvent event;
  event.kind = kind;
  event.phase = std::move(phase);
  event.detail = std::move(detail);
  event.original_value = original_value;
  event.adjusted_value = adjusted_value;
  Add(std::move(event));
}

void RunDiagnostics::Merge(const RunDiagnostics& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
}

std::string RunDiagnostics::Summary() const {
  if (events.empty()) return "no degradation";
  std::ostringstream out;
  out << events.size() << (events.size() == 1 ? " degradation event:"
                                              : " degradation events:");
  for (const DegradationEvent& event : events) {
    out << "\n  " << event.ToString();
  }
  return out.str();
}

}  // namespace transer

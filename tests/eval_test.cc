#include <cmath>

#include <gtest/gtest.h>

#include "eval/aggregate.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

namespace transer {
namespace {

// ---------- confusion + quality ----------

TEST(MetricsTest, CountsConfusionCells) {
  const std::vector<int> truth = {1, 1, 0, 0, 1};
  const std::vector<int> predicted = {1, 0, 1, 0, 1};
  const ConfusionCounts counts = CountConfusion(truth, predicted);
  EXPECT_EQ(counts.true_positives, 2u);
  EXPECT_EQ(counts.false_negatives, 1u);
  EXPECT_EQ(counts.false_positives, 1u);
  EXPECT_EQ(counts.true_negatives, 1u);
}

TEST(MetricsTest, QualityKnownValues) {
  ConfusionCounts counts;
  counts.true_positives = 8;
  counts.false_positives = 2;
  counts.false_negatives = 2;
  const LinkageQuality q = ComputeQuality(counts);
  EXPECT_DOUBLE_EQ(q.precision, 0.8);
  EXPECT_DOUBLE_EQ(q.recall, 0.8);
  EXPECT_DOUBLE_EQ(q.f1, 0.8);
  EXPECT_NEAR(q.f_star, 8.0 / 12.0, 1e-12);
}

TEST(MetricsTest, ZeroDenominatorsYieldZeroNotNan) {
  const LinkageQuality q = ComputeQuality(ConfusionCounts{});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
  EXPECT_DOUBLE_EQ(q.f_star, 0.0);
}

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<int> labels = {1, 0, 1, 0};
  const LinkageQuality q = EvaluateLinkage(labels, labels);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f_star, 1.0);
}

// Property: F* computed from counts equals the P/R identity
// F* = PR / (P + R - PR) [Hand, Christen & Kirielle 2021], and
// F* <= F1 always.
struct QualityCase {
  size_t tp, fp, fn;
};

class FStarIdentityTest : public ::testing::TestWithParam<QualityCase> {};

TEST_P(FStarIdentityTest, IdentityAndOrdering) {
  const QualityCase param = GetParam();
  ConfusionCounts counts;
  counts.true_positives = param.tp;
  counts.false_positives = param.fp;
  counts.false_negatives = param.fn;
  const LinkageQuality q = ComputeQuality(counts);
  EXPECT_NEAR(q.f_star, FStarFromPrecisionRecall(q.precision, q.recall),
              1e-12);
  EXPECT_LE(q.f_star, q.f1 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FStarIdentityTest,
    ::testing::Values(QualityCase{10, 0, 0}, QualityCase{10, 5, 0},
                      QualityCase{10, 0, 5}, QualityCase{1, 99, 99},
                      QualityCase{50, 25, 10}, QualityCase{0, 10, 10}));

TEST(MetricsTest, ToStringRendersPercentages) {
  LinkageQuality q;
  q.precision = 0.9278;
  q.recall = 0.969;
  q.f_star = 0.9002;
  q.f1 = 0.9469;
  EXPECT_EQ(q.ToString(), "P=92.78 R=96.90 F*=90.02 F1=94.69");
}

// ---------- aggregation ----------

TEST(AggregateTest, MeanAndStd) {
  const MeanStd agg = Aggregate({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(agg.mean, 2.5);
  EXPECT_NEAR(agg.stddev, std::sqrt(1.25), 1e-12);
}

TEST(AggregateTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Aggregate({}).mean, 0.0);
  const MeanStd one = Aggregate({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(AggregateTest, QualityAggregateOverClassifiers) {
  LinkageQuality a;
  a.precision = 0.9;
  a.recall = 0.8;
  LinkageQuality b;
  b.precision = 0.7;
  b.recall = 1.0;
  const QualityAggregate agg = AggregateQuality({a, b});
  EXPECT_DOUBLE_EQ(agg.precision.mean, 0.8);
  EXPECT_DOUBLE_EQ(agg.recall.mean, 0.9);
  EXPECT_NEAR(agg.precision.stddev, 0.1, 1e-12);
}

TEST(AggregateTest, MeanStdToStringPercent) {
  MeanStd agg;
  agg.mean = 0.9376;
  agg.stddev = 0.0101;
  EXPECT_EQ(agg.ToString(), " 93.76 ±  1.01");
}

// ---------- table printer ----------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name         value"), std::string::npos);
  EXPECT_NE(out.find("longer-name  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW({ table.Render(); });
}

TEST(TablePrinterTest, HandlesUtf8PlusMinus) {
  TablePrinter table({"m"});
  table.AddRow({"93.76 ± 1.01"});
  table.AddRow({"5.00 ± 0.10"});
  const std::string out = table.Render();
  // Both rows present; no crash on multi-byte width computation.
  EXPECT_NE(out.find("93.76"), std::string::npos);
  EXPECT_NE(out.find("5.00"), std::string::npos);
}

}  // namespace
}  // namespace transer

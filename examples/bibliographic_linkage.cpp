// End-to-end bibliographic linkage: the paper's DBLP-ACM -> DBLP-Scholar
// scenario from raw records.
//
// Two publication linkage problems are generated: a clean source pair
// (DBLP/ACM-like) and a heavily corrupted target pair (DBLP/Scholar-like
// with typos, abbreviations and dropped words). Both run the full
// Figure-1 pipeline — MinHash-LSH blocking, attribute-similarity
// comparison — and TransER classifies the target's candidate pairs using
// only the source's labels. The Naive baseline is shown for contrast.

#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "core/transer.h"
#include "data/bibliographic_generator.h"
#include "ml/random_forest.h"
#include "transfer/naive_transfer.h"

int main() {
  using namespace transer;

  // Source: two fairly clean bibliographic databases.
  BibliographicOptions source_options;
  source_options.left_name = "dblp";
  source_options.right_name = "acm";
  source_options.num_entities = 800;
  source_options.seed = 42;
  source_options.right_corruption.typo_probability = 0.15;
  const LinkageProblem source_problem = GenerateBibliographic(source_options);

  // Target: the right database is Scholar-like — misspellings, dropped
  // words, abbreviated author names (Section 5.1.2's "more challenging").
  BibliographicOptions target_options;
  target_options.left_name = "dblp";
  target_options.right_name = "scholar";
  target_options.num_entities = 800;
  target_options.seed = 43;
  target_options.right_corruption.typo_probability = 0.45;
  target_options.right_corruption.abbreviate_probability = 0.25;
  target_options.right_corruption.drop_word_probability = 0.15;
  target_options.right_corruption.missing_probability = 0.05;
  const LinkageProblem target_problem = GenerateBibliographic(target_options);

  const auto make_rf = []() -> std::unique_ptr<Classifier> {
    return std::make_unique<RandomForest>();
  };

  std::printf("Source: %s (%zu) vs %s (%zu)\n",
              source_problem.left.name().c_str(), source_problem.left.size(),
              source_problem.right.name().c_str(),
              source_problem.right.size());
  std::printf("Target: %s (%zu) vs %s (%zu)\n\n",
              target_problem.left.name().c_str(), target_problem.left.size(),
              target_problem.right.name().c_str(),
              target_problem.right.size());

  for (const bool use_transer : {true, false}) {
    std::unique_ptr<TransferMethod> method;
    if (use_transer) {
      method = std::make_unique<TransER>();
    } else {
      method = std::make_unique<NaiveTransfer>();
    }
    auto result = RunTransferPipeline(source_problem, target_problem,
                                      *method, make_rf);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    if (use_transer) {
      std::printf("blocking recall: source %.1f%%, target %.1f%%\n",
                  result.value().source_info.BlockingRecall() * 100.0,
                  result.value().target_info.BlockingRecall() * 100.0);
      std::printf("feature matrices: |X^S| = %zu, |X^T| = %zu\n\n",
                  result.value().source_instances,
                  result.value().target_instances);
    }
    std::printf("%-8s %s\n", method->name().c_str(),
                result.value().quality.ToString().c_str());
  }
  return 0;
}

// The kill-and-replay crash matrix: drives the transer_ingest_tool
// binary as a subprocess, SIGKILLs it after EVERY journal append and
// after every state apply, restarts it each time, and asserts the final
// state digest is bit-identical to one uninterrupted run — at 1 thread
// and at 8. This is the tentpole contract of the streaming subsystem
// verified end to end through real process death: no destructors, no
// flushes, only whatever the journal made durable.
//
// The tool path is injected at compile time (TRANSER_INGEST_TOOL_PATH,
// see tests/CMakeLists.txt), so the test always runs the binary built
// alongside it.

#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef TRANSER_INGEST_TOOL_PATH
#error "TRANSER_INGEST_TOOL_PATH must be defined by the build"
#endif

namespace transer {
namespace {

namespace fs = std::filesystem;

// The stream the whole matrix runs: small enough that ~150 subprocess
// runs stay fast, long enough to cross several snapshot/compaction,
// classifier-refresh, k-NN-rebuild and quarantine boundaries.
constexpr int kCount = 36;
constexpr const char* kStreamFlags =
    " --count=36 --seed=11 --snapshot-every=10 --refresh-every=12"
    " --rebuild-every=8 --poison-every=7";

struct ToolRun {
  bool killed = false;  ///< died by signal (the SIGKILL crash points)
  int exit_code = -1;   ///< valid only when !killed
  std::string stdout_text;
};

std::string MakeStreamDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/crash_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ToolRun RunTool(const std::string& flags) {
  const std::string command =
      std::string(TRANSER_INGEST_TOOL_PATH) + " " + flags + " 2>/dev/null";
  ToolRun run;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  size_t n = 0;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.stdout_text.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (WIFSIGNALED(status)) {
    run.killed = true;
  } else if (WIFEXITED(status)) {
    run.exit_code = WEXITSTATUS(status);
    // popen goes through /bin/sh, which reports a SIGKILLed child as
    // exit 128+9 rather than dying by the signal itself.
    if (run.exit_code == 128 + SIGKILL) run.killed = true;
  }
  return run;
}

/// The digest line is the tool's last stdout line:
/// "applied=<n> digest=<16 hex> matches=<m> quarantined=<q>".
std::string FinalLine(const std::string& text) {
  size_t end = text.find_last_not_of('\n');
  if (end == std::string::npos) return "";
  const size_t start = text.rfind('\n', end);
  return text.substr(start == std::string::npos ? 0 : start + 1,
                     end - (start == std::string::npos ? 0 : start + 1) + 1);
}

std::string RunUninterrupted(const std::string& dir, int threads) {
  const ToolRun run =
      RunTool("--dir=" + dir + kStreamFlags +
              " --threads=" + std::to_string(threads));
  EXPECT_FALSE(run.killed);
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  const std::string line = FinalLine(run.stdout_text);
  EXPECT_NE(line.find("digest="), std::string::npos) << line;
  return line;
}

class StreamCrashMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamCrashMatrixTest, KillAfterEveryBoundaryReplaysBitIdentically) {
  const int threads = GetParam();
  const std::string thread_flag = " --threads=" + std::to_string(threads);

  const std::string control_dir =
      MakeStreamDir("control_t" + std::to_string(threads));
  const std::string expected = RunUninterrupted(control_dir, threads);

  const std::string dir = MakeStreamDir("matrix_t" + std::to_string(threads));
  for (int k = 1; k <= kCount; ++k) {
    // Alternate the two crash windows: after the journal append is
    // durable but before the state applied the entry, and after the
    // apply (covering snapshot/compaction/publish boundaries too).
    const std::string point = (k % 2 == 1) ? "append" : "apply";
    const ToolRun crashed = RunTool(
        "--dir=" + dir + kStreamFlags + thread_flag +
        " --crash-after=" + std::to_string(k) + " --crash-point=" + point);
    ASSERT_TRUE(crashed.killed)
        << "crash-after=" << k << " point=" << point
        << " did not die by SIGKILL: exit=" << crashed.exit_code;
  }

  // After 36 kills at 36 distinct boundaries, one final run drains the
  // remaining records and must land on the uninterrupted digest.
  const ToolRun final_run =
      RunTool("--dir=" + dir + kStreamFlags + thread_flag);
  ASSERT_FALSE(final_run.killed);
  ASSERT_EQ(final_run.exit_code, 0) << final_run.stdout_text;
  EXPECT_EQ(FinalLine(final_run.stdout_text), expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, StreamCrashMatrixTest,
                         ::testing::Values(1, 8));

// Small segments plus a tight disk budget so the 36-record stream
// crosses several rotation, snapshot and retention boundaries.
constexpr size_t kJournalBudget = 4096;
constexpr const char* kSegmentFlags =
    " --segment-bytes=512 --max-journal-bytes=4096";

size_t JournalBytesOnDisk(const std::string& dir) {
  size_t on_disk = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".wal") on_disk += entry.file_size();
  }
  return on_disk;
}

// The segment-lifecycle kill sweep: SIGKILL inside rotation, post-
// snapshot-save and post-retention windows (which fire at the first
// lifecycle event at-or-past --crash-after, since those boundaries are
// not sequence-exact), then drain and compare against an uninterrupted
// run with DEFAULT segmentation — the digest must be invariant to
// segment size, rotation timing, retention and process death combined.
TEST_P(StreamCrashMatrixTest, SegmentLifecycleKillsReplayBitIdentically) {
  const int threads = GetParam();
  const std::string thread_flag = " --threads=" + std::to_string(threads);

  const std::string control_dir =
      MakeStreamDir("seg_control_t" + std::to_string(threads));
  const std::string expected = RunUninterrupted(control_dir, threads);

  int kills = 0;
  // One directory per lifecycle point: each point's sweep owns the full
  // stream, so its kill windows are not consumed by the other points.
  for (const char* point : {"rotate", "snapshot", "retain"}) {
    const std::string dir = MakeStreamDir(std::string("seg_matrix_") +
                                          point + "_t" +
                                          std::to_string(threads));
    for (int k = 2; k <= kCount; k += 5) {
      const ToolRun run = RunTool(
          "--dir=" + dir + kStreamFlags + kSegmentFlags + thread_flag +
          " --crash-after=" + std::to_string(k) +
          " --crash-point=" + point);
      if (run.killed) {
        ++kills;
      } else {
        // No lifecycle event at-or-past k occurred before the stream
        // drained (e.g. no snapshot boundary past the last one): the
        // run completed, and must have landed on the reference digest.
        ASSERT_EQ(run.exit_code, 0)
            << "crash-after=" << k << " point=" << point << ": "
            << run.stdout_text;
        EXPECT_EQ(FinalLine(run.stdout_text), expected)
            << "crash-after=" << k << " point=" << point;
      }
      // The disk budget holds across every crash/restart cycle (slack
      // of one segment: the budget check is pre-append).
      EXPECT_LE(JournalBytesOnDisk(dir), kJournalBudget + 512)
          << "crash-after=" << k << " point=" << point;
    }
    const ToolRun final_run = RunTool("--dir=" + dir + kStreamFlags +
                                      kSegmentFlags + thread_flag);
    ASSERT_FALSE(final_run.killed);
    ASSERT_EQ(final_run.exit_code, 0) << final_run.stdout_text;
    EXPECT_EQ(FinalLine(final_run.stdout_text), expected) << point;
  }
  // The sweep must have exercised real kill windows, not 21 clean runs.
  EXPECT_GE(kills, 8);
}

TEST(StreamCrashTest, MultiWriterCrashReplayMatchesSingleWriter) {
  const std::string control_dir = MakeStreamDir("writers_control");
  const std::string expected = RunUninterrupted(control_dir, 1);

  // Uninterrupted multi-writer run: same digest line, any writer count.
  const std::string clean_dir = MakeStreamDir("writers_clean");
  const ToolRun clean =
      RunTool("--dir=" + clean_dir + kStreamFlags + " --writers=4");
  ASSERT_FALSE(clean.killed);
  ASSERT_EQ(clean.exit_code, 0) << clean.stdout_text;
  EXPECT_EQ(FinalLine(clean.stdout_text), expected);

  // And through SIGKILLs: the sequencing appender preserves the no-
  // acked-loss contract at 4 producers exactly as at 1.
  const std::string dir = MakeStreamDir("writers_matrix");
  for (int k : {5, 17, 29}) {
    const ToolRun crashed = RunTool(
        "--dir=" + dir + kStreamFlags + kSegmentFlags +
        " --writers=4 --crash-after=" + std::to_string(k) +
        " --crash-point=append");
    ASSERT_TRUE(crashed.killed) << "crash-after=" << k;
  }
  const ToolRun drained = RunTool("--dir=" + dir + kStreamFlags +
                                  kSegmentFlags + " --writers=4");
  ASSERT_FALSE(drained.killed);
  ASSERT_EQ(drained.exit_code, 0) << drained.stdout_text;
  EXPECT_EQ(FinalLine(drained.stdout_text), expected);
}

TEST(StreamCrashTest, DigestIsThreadCountInvariant) {
  const std::string serial_dir = MakeStreamDir("invariance_t1");
  const std::string parallel_dir = MakeStreamDir("invariance_t8");
  EXPECT_EQ(RunUninterrupted(serial_dir, 1),
            RunUninterrupted(parallel_dir, 8));
}

TEST(StreamCrashTest, ReplayNeverReexecutesAJournaledAppend) {
  const std::string dir = MakeStreamDir("idempotent");
  // First run dies right after journaling sequence 5.
  const ToolRun crashed = RunTool("--dir=" + dir + kStreamFlags +
                                  " --crash-after=5 --crash-point=append");
  ASSERT_TRUE(crashed.killed);
  // Same crash flag again: recovery replays entry 5 from the journal
  // instead of re-ingesting it, so the append hook never fires and the
  // run completes.
  const ToolRun completed = RunTool("--dir=" + dir + kStreamFlags +
                                    " --crash-after=5 --crash-point=append");
  ASSERT_FALSE(completed.killed);
  ASSERT_EQ(completed.exit_code, 0) << completed.stdout_text;

  const std::string control_dir = MakeStreamDir("idempotent_control");
  EXPECT_EQ(FinalLine(completed.stdout_text),
            RunUninterrupted(control_dir, 1));
}

}  // namespace
}  // namespace transer

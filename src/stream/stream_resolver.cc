#include "stream/stream_resolver.h"

#include <algorithm>
#include <utility>

#include "linalg/matrix.h"
#include "ml/threshold_classifier.h"
#include "util/artifact_io.h"
#include "util/string_util.h"

namespace transer {
namespace stream {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvBytes(const std::vector<uint8_t>& bytes) {
  uint64_t hash = kFnvOffset;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnvPrime;
  }
  return hash;
}

/// How many of the newest records the digest probes through the k-NN
/// index, and with how many neighbours. A full all-rows probe would make
/// digesting quadratic; the rolling window still pins the index content
/// because every row was inside the window when it was digested upstream
/// of a snapshot/compare at least once during the crash matrix.
constexpr size_t kDigestProbeWindow = 32;
constexpr size_t kDigestProbeK = 4;

// Snapshot section names.
constexpr char kMetaSection[] = "meta";
constexpr char kRecordsSection[] = "records";
constexpr char kMatchesSection[] = "matches";
constexpr char kPairsSection[] = "pairs";
constexpr char kQuarantineSection[] = "quarantine";
constexpr char kClassifierSection[] = "classifier";

Status MissingSection(const std::string& name) {
  return Status::InvalidArgument("stream snapshot is missing section '" +
                                 name + "'");
}

/// Clones a classifier through its own serialisation (the only generic
/// copy the Classifier interface offers).
Result<std::unique_ptr<Classifier>> CloneClassifier(
    const std::string& family, const Classifier& classifier) {
  artifact::Encoder encoder;
  TRANSER_RETURN_IF_ERROR(classifier.SaveState(&encoder));
  TRANSER_ASSIGN_OR_RETURN(std::unique_ptr<Classifier> clone,
                           MakeClassifierByName(family));
  artifact::Decoder decoder(encoder.bytes());
  TRANSER_RETURN_IF_ERROR(clone->LoadState(&decoder));
  return clone;
}

}  // namespace

StreamResolver::StreamResolver(StreamResolverOptions options,
                               PairComparator comparator,
                               std::vector<std::string> feature_names)
    : options_(std::move(options)),
      comparator_(std::move(comparator)),
      feature_names_(std::move(feature_names)),
      embedder_(options_.embedding),
      blocking_(options_.blocking),
      knn_(options_.knn) {}

Result<StreamResolver> StreamResolver::Create(
    const StreamResolverOptions& options, RunDiagnostics* diagnostics) {
  if (options.schema.size() == 0) {
    return Status::InvalidArgument("stream resolver schema is empty");
  }
  if (options.match_threshold < 0.0 || options.match_threshold > 1.0) {
    return Status::InvalidArgument("match_threshold must be in [0, 1]");
  }
  TRANSER_ASSIGN_OR_RETURN(
      PairComparator comparator,
      PairComparator::Create(options.schema, options.schema));
  std::vector<std::string> feature_names = comparator.feature_names();
  StreamResolver resolver(options, std::move(comparator),
                          std::move(feature_names));

  if (!options.warm_start_path.empty()) {
    // A replica that silently cold-starts after failing to read its
    // warm-start model would resolve differently from its peers, so an
    // unusable artifact is an error, not a degradation.
    TRANSER_ASSIGN_OR_RETURN(
        TransERPipelineState state,
        LoadTransERPipelineState(options.warm_start_path));
    if (state.feature_names != resolver.feature_names_) {
      return Status::FailedPrecondition(
          "warm-start artifact was trained on a different feature schema "
          "than this stream produces");
    }
    resolver.classifier_family_ = state.classifier_name;
    resolver.classifier_ = state.classifier_v != nullptr
                               ? std::move(state.classifier_v)
                               : std::move(state.classifier_u);
    if (diagnostics != nullptr) {
      diagnostics->Add(DegradationKind::kModelWarmStarted, "stream",
                       "classifier warm-started from " +
                           options.warm_start_path);
    }
  } else {
    resolver.classifier_family_ = "threshold";
    resolver.classifier_ = std::make_unique<ThresholdClassifier>();
  }
  return resolver;
}

std::string StreamResolver::PoisonReason(const Record& record) const {
  if (record.id.empty()) return "record id is empty";
  if (record.values.size() != options_.schema.size()) {
    return StrFormat("record has %zu values, schema has %zu",
                     record.values.size(), options_.schema.size());
  }
  return std::string();
}

Status StreamResolver::Apply(const IngestEntry& entry,
                             RunDiagnostics* diagnostics) {
  if (entry.sequence != applied_sequence_ + 1) {
    return Status::FailedPrecondition(StrFormat(
        "stream entry sequence %llu does not follow applied sequence %llu "
        "(journal gap — state and journal disagree)",
        static_cast<unsigned long long>(entry.sequence),
        static_cast<unsigned long long>(applied_sequence_)));
  }
  const std::string poison = PoisonReason(entry.record);
  if (!poison.empty()) {
    quarantined_.push_back(entry.sequence);
    if (diagnostics != nullptr) {
      diagnostics->Add(DegradationKind::kStreamRecordQuarantined, "stream",
                       StrFormat("sequence %llu quarantined: %s",
                                 static_cast<unsigned long long>(
                                     entry.sequence),
                                 poison.c_str()),
                       0.0, static_cast<double>(quarantined_.size()));
    }
    applied_sequence_ = entry.sequence;
    return Status::OK();
  }
  TRANSER_RETURN_IF_ERROR(ApplyRecord(entry.record, diagnostics));
  applied_sequence_ = entry.sequence;
  ++applied_records_;
  MaybeRefresh(diagnostics);
  return Status::OK();
}

Status StreamResolver::ApplyRecord(const Record& record,
                                   RunDiagnostics* diagnostics) {
  (void)diagnostics;
  const size_t index = records_.size();
  TRANSER_RETURN_IF_ERROR(knn_.Insert(embedder_.EmbedFields(record.values)));
  const std::vector<size_t> candidates =
      blocking_.InsertAndCollect(index, record);
  for (size_t candidate : candidates) {
    const std::vector<double> features =
        comparator_.Compare(records_[candidate], record);
    const double score = classifier_->PredictProba(features);
    const int label = score >= options_.match_threshold ? 1 : 0;
    pair_features_.insert(pair_features_.end(), features.begin(),
                          features.end());
    pair_labels_.push_back(label);
    pair_confidences_.push_back(score);
    ++comparisons_;
    if (label == 1) {
      matches_.push_back(StreamMatch{candidate, index, score});
    }
  }
  records_.push_back(record);
  return Status::OK();
}

void StreamResolver::MaybeRefresh(RunDiagnostics* diagnostics) {
  if (options_.refresh_interval == 0 || applied_records_ == 0 ||
      applied_records_ % options_.refresh_interval != 0) {
    return;
  }
  const size_t rows = pair_labels_.size();
  const bool has_match =
      std::find(pair_labels_.begin(), pair_labels_.end(), 1) !=
      pair_labels_.end();
  const bool has_non_match =
      std::find(pair_labels_.begin(), pair_labels_.end(), 0) !=
      pair_labels_.end();
  if (rows < options_.min_refresh_pairs || !has_match || !has_non_match) {
    if (diagnostics != nullptr) {
      diagnostics->Add(
          DegradationKind::kStreamRefreshSkipped, "stream",
          StrFormat("refresh due at %llu records skipped: %zu pair(s), "
                    "single-class=%d",
                    static_cast<unsigned long long>(applied_records_), rows,
                    has_match != has_non_match ? 1 : 0),
          static_cast<double>(options_.min_refresh_pairs),
          static_cast<double>(rows));
    }
    return;
  }
  const Matrix x = Matrix::FromRowMajor(rows, feature_names_.size(),
                                        pair_features_);
  classifier_->Fit(x, pair_labels_);
  ++refresh_count_;
}

uint64_t StreamResolver::StateDigest() const {
  artifact::Encoder encoder;
  encoder.PutU64(applied_sequence_);
  encoder.PutU64(applied_records_);
  encoder.PutU64(refresh_count_);
  encoder.PutU64(comparisons_);
  encoder.PutU64(records_.size());
  for (const Record& record : records_) {
    encoder.PutString(record.id);
    encoder.PutI64(record.entity_id);
    encoder.PutStringVec(record.values);
  }
  encoder.PutU64(blocking_.Digest());
  encoder.PutU64(matches_.size());
  for (const StreamMatch& match : matches_) {
    encoder.PutU64(match.left);
    encoder.PutU64(match.right);
    encoder.PutDouble(match.score);
  }
  encoder.PutIntVec(pair_labels_);
  encoder.PutDoubleVec(pair_confidences_);
  encoder.PutDoubleVec(pair_features_);
  encoder.PutU64Vec(quarantined_);

  artifact::Encoder classifier_state;
  if (classifier_ != nullptr &&
      classifier_->SaveState(&classifier_state).ok()) {
    encoder.PutU64(classifier_state.bytes().size());
    for (uint8_t b : classifier_state.bytes()) encoder.PutU8(b);
  } else {
    encoder.PutU64(0);
  }

  // Probe the k-NN index through its public query path so the digest
  // covers the index the stream actually answers from (tree + tail),
  // not just the raw embeddings.
  const size_t total = knn_.size();
  const size_t window = std::min(kDigestProbeWindow, total);
  for (size_t row = total - window; row < total; ++row) {
    const std::vector<Neighbour> neighbours = knn_.Query(
        knn_.Point(row), kDigestProbeK, static_cast<ptrdiff_t>(row));
    encoder.PutU64(neighbours.size());
    for (const Neighbour& n : neighbours) {
      encoder.PutU64(n.index);
      encoder.PutDouble(n.distance);
    }
  }
  return FnvBytes(encoder.bytes());
}

uint64_t StreamResolver::OptionsFingerprint() const {
  artifact::Encoder encoder;
  for (const AttributeSpec& attr : options_.schema.attributes()) {
    encoder.PutString(attr.name);
    encoder.PutString(attr.similarity);
  }
  encoder.PutU64(options_.blocking.key_attribute);
  encoder.PutU64(options_.blocking.prefix_length);
  encoder.PutU64(options_.blocking.max_block_size);
  encoder.PutU64(options_.knn.rebuild_interval);
  encoder.PutU64(options_.embedding.dimension);
  encoder.PutU64(options_.embedding.min_n);
  encoder.PutU64(options_.embedding.max_n);
  encoder.PutU64(options_.embedding.seed);
  encoder.PutDouble(options_.match_threshold);
  encoder.PutU64(options_.refresh_interval);
  encoder.PutU64(options_.min_refresh_pairs);
  return FnvBytes(encoder.bytes());
}

Status StreamResolver::SaveSnapshot(const std::string& path) const {
  artifact::Header header;
  header.kind = kStreamSnapshotKind;
  header.schema_fingerprint =
      artifact::FingerprintFeatureSchema(feature_names_);

  artifact::Encoder meta;
  meta.PutU64(OptionsFingerprint());
  meta.PutU64(applied_sequence_);
  meta.PutU64(applied_records_);
  meta.PutU64(refresh_count_);
  meta.PutU64(comparisons_);
  meta.PutString(classifier_family_);

  artifact::Encoder records;
  records.PutU64(records_.size());
  for (const Record& record : records_) {
    records.PutString(record.id);
    records.PutI64(record.entity_id);
    records.PutStringVec(record.values);
  }

  artifact::Encoder matches;
  matches.PutU64(matches_.size());
  for (const StreamMatch& match : matches_) {
    matches.PutU64(match.left);
    matches.PutU64(match.right);
    matches.PutDouble(match.score);
  }

  artifact::Encoder pairs;
  pairs.PutU64(feature_names_.size());
  pairs.PutDoubleVec(pair_features_);
  pairs.PutIntVec(pair_labels_);
  pairs.PutDoubleVec(pair_confidences_);

  artifact::Encoder quarantine;
  quarantine.PutU64Vec(quarantined_);

  artifact::Encoder classifier;
  TRANSER_RETURN_IF_ERROR(classifier_->SaveState(&classifier));

  std::vector<artifact::Section> sections;
  sections.push_back({kMetaSection, meta.TakeBytes()});
  sections.push_back({kRecordsSection, records.TakeBytes()});
  sections.push_back({kMatchesSection, matches.TakeBytes()});
  sections.push_back({kPairsSection, pairs.TakeBytes()});
  sections.push_back({kQuarantineSection, quarantine.TakeBytes()});
  sections.push_back({kClassifierSection, classifier.TakeBytes()});
  return artifact::WriteArtifact(path, header, sections);
}

Result<StreamResolver> StreamResolver::LoadSnapshot(
    const std::string& path, const StreamResolverOptions& options,
    RunDiagnostics* diagnostics) {
  TRANSER_ASSIGN_OR_RETURN(const artifact::Artifact snapshot,
                           artifact::ReadArtifact(path));
  if (snapshot.header.kind != kStreamSnapshotKind) {
    return Status::InvalidArgument("artifact at " + path +
                                   " is not a stream snapshot (kind '" +
                                   snapshot.header.kind + "')");
  }

  // The classifier state is restored from the snapshot, so the resolver
  // skeleton is built without re-reading the warm-start artifact (which
  // may legitimately be gone by now).
  StreamResolverOptions skeleton = options;
  skeleton.warm_start_path.clear();
  TRANSER_ASSIGN_OR_RETURN(StreamResolver resolver,
                           Create(skeleton, diagnostics));
  resolver.options_ = options;

  if (snapshot.header.schema_fingerprint !=
      artifact::FingerprintFeatureSchema(resolver.feature_names_)) {
    return Status::FailedPrecondition(
        "stream snapshot was taken under a different feature schema");
  }

  const artifact::Section* meta = snapshot.Find(kMetaSection);
  if (meta == nullptr) return MissingSection(kMetaSection);
  artifact::Decoder meta_in(meta->payload);
  uint64_t options_fingerprint = 0;
  TRANSER_RETURN_IF_ERROR(meta_in.GetU64(&options_fingerprint));
  if (options_fingerprint != resolver.OptionsFingerprint()) {
    return Status::FailedPrecondition(
        "stream snapshot was taken under different resolver options; "
        "replaying it would produce a different stream");
  }
  uint64_t refresh_count = 0;
  uint64_t comparisons = 0;
  TRANSER_RETURN_IF_ERROR(meta_in.GetU64(&resolver.applied_sequence_));
  TRANSER_RETURN_IF_ERROR(meta_in.GetU64(&resolver.applied_records_));
  TRANSER_RETURN_IF_ERROR(meta_in.GetU64(&refresh_count));
  TRANSER_RETURN_IF_ERROR(meta_in.GetU64(&comparisons));
  TRANSER_RETURN_IF_ERROR(meta_in.GetString(&resolver.classifier_family_));
  TRANSER_RETURN_IF_ERROR(meta_in.ExpectEnd());
  resolver.refresh_count_ = refresh_count;
  resolver.comparisons_ = comparisons;

  const artifact::Section* records = snapshot.Find(kRecordsSection);
  if (records == nullptr) return MissingSection(kRecordsSection);
  artifact::Decoder records_in(records->payload);
  uint64_t record_count = 0;
  TRANSER_RETURN_IF_ERROR(records_in.GetU64(&record_count));
  resolver.records_.reserve(record_count);
  for (uint64_t i = 0; i < record_count; ++i) {
    Record record;
    TRANSER_RETURN_IF_ERROR(records_in.GetString(&record.id));
    TRANSER_RETURN_IF_ERROR(records_in.GetI64(&record.entity_id));
    TRANSER_RETURN_IF_ERROR(records_in.GetStringVec(&record.values));
    if (record.values.size() != options.schema.size()) {
      return Status::InvalidArgument(
          "stream snapshot record disagrees with the schema width");
    }
    resolver.records_.push_back(std::move(record));
  }
  TRANSER_RETURN_IF_ERROR(records_in.ExpectEnd());

  const artifact::Section* matches = snapshot.Find(kMatchesSection);
  if (matches == nullptr) return MissingSection(kMatchesSection);
  artifact::Decoder matches_in(matches->payload);
  uint64_t match_count = 0;
  TRANSER_RETURN_IF_ERROR(matches_in.GetU64(&match_count));
  resolver.matches_.reserve(match_count);
  for (uint64_t i = 0; i < match_count; ++i) {
    StreamMatch match;
    TRANSER_RETURN_IF_ERROR(matches_in.GetU64(&match.left));
    TRANSER_RETURN_IF_ERROR(matches_in.GetU64(&match.right));
    TRANSER_RETURN_IF_ERROR(matches_in.GetDouble(&match.score));
    if (match.left >= match.right || match.right >= record_count) {
      return Status::InvalidArgument(
          "stream snapshot match indices are out of range");
    }
    resolver.matches_.push_back(match);
  }
  TRANSER_RETURN_IF_ERROR(matches_in.ExpectEnd());

  const artifact::Section* pairs = snapshot.Find(kPairsSection);
  if (pairs == nullptr) return MissingSection(kPairsSection);
  artifact::Decoder pairs_in(pairs->payload);
  uint64_t pair_width = 0;
  TRANSER_RETURN_IF_ERROR(pairs_in.GetU64(&pair_width));
  TRANSER_RETURN_IF_ERROR(pairs_in.GetDoubleVec(&resolver.pair_features_));
  TRANSER_RETURN_IF_ERROR(pairs_in.GetIntVec(&resolver.pair_labels_));
  TRANSER_RETURN_IF_ERROR(
      pairs_in.GetDoubleVec(&resolver.pair_confidences_));
  TRANSER_RETURN_IF_ERROR(pairs_in.ExpectEnd());
  if (pair_width != resolver.feature_names_.size() ||
      resolver.pair_features_.size() !=
          pair_width * resolver.pair_labels_.size() ||
      resolver.pair_confidences_.size() != resolver.pair_labels_.size()) {
    return Status::InvalidArgument(
        "stream snapshot pair buffers are inconsistent");
  }

  const artifact::Section* quarantine = snapshot.Find(kQuarantineSection);
  if (quarantine == nullptr) return MissingSection(kQuarantineSection);
  artifact::Decoder quarantine_in(quarantine->payload);
  TRANSER_RETURN_IF_ERROR(
      quarantine_in.GetU64Vec(&resolver.quarantined_));
  TRANSER_RETURN_IF_ERROR(quarantine_in.ExpectEnd());

  const artifact::Section* classifier = snapshot.Find(kClassifierSection);
  if (classifier == nullptr) return MissingSection(kClassifierSection);
  TRANSER_ASSIGN_OR_RETURN(
      resolver.classifier_,
      MakeClassifierByName(resolver.classifier_family_));
  artifact::Decoder classifier_in(classifier->payload);
  TRANSER_RETURN_IF_ERROR(resolver.classifier_->LoadState(&classifier_in));

  // The blocking and k-NN indexes are not serialised: re-inserting the
  // records in order rebuilds them bit-identically (inserts are
  // deterministic in insert order, and the k-NN rebuild points are a
  // pure function of the insert count).
  for (size_t i = 0; i < resolver.records_.size(); ++i) {
    const Record& record = resolver.records_[i];
    TRANSER_RETURN_IF_ERROR(
        resolver.knn_.Insert(resolver.embedder_.EmbedFields(record.values)));
    resolver.blocking_.InsertAndCollect(i, record);
  }
  return resolver;
}

Result<TransERPipelineState> StreamResolver::ExportPipelineState() const {
  TransERPipelineState state;
  state.feature_names = feature_names_;
  state.seed = options_.embedding.seed;
  state.source_rows = applied_records_;
  state.target_rows = pair_labels_.size();
  state.pseudo_labels = pair_labels_;
  state.pseudo_confidences = pair_confidences_;
  if (!pair_labels_.empty()) {
    // Domain profile: per-feature mean of the compared pairs, the same
    // probe the serving repository uses for schema-less fallback.
    const size_t width = feature_names_.size();
    state.target_centroid.assign(width, 0.0);
    for (size_t row = 0; row < pair_labels_.size(); ++row) {
      for (size_t c = 0; c < width; ++c) {
        state.target_centroid[c] += pair_features_[row * width + c];
      }
    }
    for (double& v : state.target_centroid) {
      v /= static_cast<double>(pair_labels_.size());
    }
  }
  state.classifier_name = classifier_family_;
  TRANSER_ASSIGN_OR_RETURN(
      state.classifier_u, CloneClassifier(classifier_family_, *classifier_));
  return state;
}

Status StreamResolver::PublishTo(const std::string& path) const {
  TRANSER_ASSIGN_OR_RETURN(const TransERPipelineState state,
                           ExportPipelineState());
  return SaveTransERPipelineState(state, path);
}

}  // namespace stream
}  // namespace transer

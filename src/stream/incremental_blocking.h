#ifndef TRANSER_STREAM_INCREMENTAL_BLOCKING_H_
#define TRANSER_STREAM_INCREMENTAL_BLOCKING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/record.h"

namespace transer {
namespace stream {

/// \brief Options for the incremental blocking index.
struct IncrementalBlockingOptions {
  /// Attribute whose value derives the blocking key.
  size_t key_attribute = 0;
  /// Lower-cased prefix length of the key attribute (the same key family
  /// as StandardBlocker::AttributePrefixKey).
  size_t prefix_length = 3;
  /// Blocks past this size stop emitting candidate pairs — the streaming
  /// form of StandardBlockingOptions::max_block_size (a key shared by
  /// thousands of records is non-discriminative and would make ingest
  /// cost quadratic).
  size_t max_block_size = 256;
};

/// \brief Streaming counterpart of blocking/standard_blocking: records
/// are inserted one at a time and each insert returns the candidate
/// partners the new record must be compared against. The batch blocker
/// rebuilds its key map per call; this one is the long-lived index the
/// ingest loop owns. Inserts are deterministic in insert order, which is
/// the replay-determinism requirement (DESIGN.md §11).
class IncrementalBlockingIndex {
 public:
  explicit IncrementalBlockingIndex(IncrementalBlockingOptions options = {})
      : options_(options) {}

  /// The blocking key of `record` (lower-cased attribute prefix; records
  /// missing the key attribute key as the empty string).
  std::string KeyOf(const Record& record) const;

  /// Inserts the record under index `record_index` and returns the
  /// indices of previously inserted records in the same block, ascending.
  /// Once the block exceeds max_block_size the record is still inserted
  /// (the block keeps counting) but no candidates are emitted.
  std::vector<size_t> InsertAndCollect(size_t record_index,
                                       const Record& record);

  size_t size() const { return inserted_; }
  size_t block_count() const { return blocks_.size(); }
  /// Inserts whose block was over the cap (no candidates emitted).
  size_t suppressed_inserts() const { return suppressed_; }

  /// Order-insensitive-free digest of the full index state (keys and
  /// member indices, in key order) for the bit-identity checks.
  uint64_t Digest() const;

 private:
  IncrementalBlockingOptions options_;
  /// std::map, not unordered: Digest() iterates in key order so the
  /// digest is a pure function of the content.
  std::map<std::string, std::vector<size_t>> blocks_;
  size_t inserted_ = 0;
  size_t suppressed_ = 0;
};

}  // namespace stream
}  // namespace transer

#endif  // TRANSER_STREAM_INCREMENTAL_BLOCKING_H_

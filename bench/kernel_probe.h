#ifndef TRANSER_BENCH_KERNEL_PROBE_H_
#define TRANSER_BENCH_KERNEL_PROBE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "knn/brute_force.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "util/execution_context.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace transer {
namespace bench {

/// Keeps `value` observable so the measured expression is not folded
/// away. Same contract as google-benchmark's helper, local so the bench
/// binaries carry no external dependency.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Forces pending writes to be considered visible before the timer
/// stops.
inline void ClobberMemory() { asm volatile("" ::: "memory"); }

/// \brief Times `fn` and returns nanoseconds per operation, where one
/// call to `fn` performs `ops_per_call` operations. Repetitions are
/// calibrated until a sample runs at least `min_seconds`, then the best
/// of `samples` samples is taken — minimum, not mean, because
/// scheduling noise only ever adds time.
template <typename F>
inline double MeasureNsPerOp(F&& fn, double ops_per_call,
                             double min_seconds, int samples = 3) {
  fn();  // warm caches and thread pools outside the timed region
  size_t reps = 1;
  for (;;) {
    Stopwatch watch;
    for (size_t i = 0; i < reps; ++i) fn();
    ClobberMemory();
    const double seconds = watch.ElapsedSeconds();
    if (seconds >= min_seconds) {
      double best = seconds;
      for (int sample = 0; sample + 1 < samples; ++sample) {
        Stopwatch again;
        for (size_t i = 0; i < reps; ++i) fn();
        ClobberMemory();
        best = std::min(best, again.ElapsedSeconds());
      }
      return best * 1e9 / (static_cast<double>(reps) * ops_per_call);
    }
    // Aim 25% past the floor; growth is clamped to 16x so one noisy
    // fast sample cannot balloon the next round.
    const double target = min_seconds * 1.25;
    const size_t next =
        seconds > 0.0
            ? static_cast<size_t>(static_cast<double>(reps) * target /
                                  seconds) +
                  1
            : reps * 16;
    reps = std::clamp(next, reps + 1, reps * 16);
  }
}

/// Lanes for the multi-thread leg of the probe. An explicit
/// --threads > 1 is honoured; when the resolved value is 1 (the
/// hardware default on a single-core box) the probe oversubscribes four
/// worker lanes instead of silently repeating the 1-thread measurement.
/// The parallel dispatch path is then exercised and timed everywhere,
/// so the speedup extra is an honest ratio — near 1 (or below, from
/// scheduling overhead) on one core, near-linear on wide machines —
/// never a placeholder.
inline int ResolveProbeLanes(int threads) {
  return threads > 1 ? threads : 4;
}

/// \brief Thread-aware kernel measurements shared by micro_primitives
/// and the Table 3 sidecar: the dot kernel and the tiled batch k-NN at
/// one thread and at ResolveProbeLanes(threads) lanes.
struct KernelProbeResult {
  double dot_ns_per_op = 0.0;
  double knn_batch_ns_per_query_1t = 0.0;
  double knn_batch_ns_per_query_nt = 0.0;
  double knn_batch_speedup_vs_1_thread = 1.0;
  int probe_lanes = 1;  ///< lanes the _nt leg actually ran with
};

/// Runs the probe on synthetic data (fixed seed; the workload is the
/// measurement, not the values). `threads` is the resolved --threads
/// value; the multi-thread leg runs with ResolveProbeLanes(threads)
/// worker lanes.
inline KernelProbeResult ProbeKernelPerf(int threads, double min_seconds) {
  KernelProbeResult result;
  result.probe_lanes = ResolveProbeLanes(threads);

  Rng rng(12021);
  std::vector<double> a(64), b(64);
  for (double& x : a) x = rng.NextDouble() - 0.5;
  for (double& x : b) x = rng.NextDouble() - 0.5;
  result.dot_ns_per_op = MeasureNsPerOp(
      [&] { DoNotOptimize(kernels::Dot(a, b)); }, 1.0, min_seconds);

  const size_t points_n = 2000;
  const size_t queries_n = 256;
  const size_t dims = 12;
  const size_t k = 10;
  Matrix points(points_n, dims);
  Matrix queries(queries_n, dims);
  for (size_t i = 0; i < points_n; ++i) {
    for (size_t d = 0; d < dims; ++d) points(i, d) = rng.NextDouble();
  }
  for (size_t i = 0; i < queries_n; ++i) {
    for (size_t d = 0; d < dims; ++d) queries(i, d) = rng.NextDouble();
  }
  const BruteForceKnn index(points);
  const ExecutionContext& context = ExecutionContext::Unlimited();
  ParallelOptions serial;
  serial.num_threads = 1;
  result.knn_batch_ns_per_query_1t = MeasureNsPerOp(
      [&] {
        DoNotOptimize(
            index.QueryBatch(queries, k, context, "probe", serial));
      },
      static_cast<double>(queries_n), min_seconds);
  ParallelOptions wide;
  wide.num_threads = result.probe_lanes;
  result.knn_batch_ns_per_query_nt = MeasureNsPerOp(
      [&] {
        DoNotOptimize(
            index.QueryBatch(queries, k, context, "probe", wide));
      },
      static_cast<double>(queries_n), min_seconds);
  result.knn_batch_speedup_vs_1_thread =
      result.knn_batch_ns_per_query_nt > 0.0
          ? result.knn_batch_ns_per_query_1t /
                result.knn_batch_ns_per_query_nt
          : 1.0;
  return result;
}

}  // namespace bench
}  // namespace transer

#endif  // TRANSER_BENCH_KERNEL_PROBE_H_

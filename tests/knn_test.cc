#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "knn/brute_force.h"
#include "knn/kd_tree.h"
#include "linalg/kernels.h"
#include "util/random.h"

namespace transer {
namespace {

Matrix RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix points(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) points(i, d) = rng.NextDouble();
  }
  return points;
}

TEST(KdTreeTest, FindsExactPoint) {
  Matrix points = {{0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5}};
  KdTree tree(points);
  const auto result = tree.Query(std::vector<double>{1.0, 1.0}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 1u);
  EXPECT_DOUBLE_EQ(result[0].distance, 0.0);
}

TEST(KdTreeTest, ReturnsSortedByDistance) {
  Matrix points = RandomPoints(200, 3, 31);
  KdTree tree(points);
  const std::vector<double> query = {0.3, 0.7, 0.5};
  const auto result = tree.Query(query, 10);
  ASSERT_EQ(result.size(), 10u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(KdTreeTest, SkipIndexExcludesSelf) {
  Matrix points = {{0.1, 0.1}, {0.1, 0.1}, {0.9, 0.9}};
  KdTree tree(points);
  const auto result =
      tree.Query(std::vector<double>{0.1, 0.1}, 2, /*skip_index=*/0);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_NE(result[0].index, 0u);
  EXPECT_NE(result[1].index, 0u);
}

TEST(KdTreeTest, KLargerThanDataReturnsAll) {
  Matrix points = RandomPoints(5, 2, 32);
  KdTree tree(points);
  const auto result = tree.Query(std::vector<double>{0.5, 0.5}, 50);
  EXPECT_EQ(result.size(), 5u);
}

TEST(KdTreeTest, EmptyTreeAndZeroK) {
  Matrix none(0, 2);
  KdTree tree(none);
  EXPECT_TRUE(tree.Query(std::vector<double>{0.5, 0.5}, 3).empty());
  Matrix some = RandomPoints(10, 2, 33);
  KdTree tree2(some);
  EXPECT_TRUE(tree2.Query(std::vector<double>{0.5, 0.5}, 0).empty());
}

TEST(KdTreeTest, HandlesDuplicatePoints) {
  Matrix points(64, 2, 0.5);  // all identical
  KdTree tree(points);
  const auto result = tree.Query(std::vector<double>{0.5, 0.5}, 7);
  EXPECT_EQ(result.size(), 7u);
  for (const auto& nb : result) EXPECT_DOUBLE_EQ(nb.distance, 0.0);
}

// Property: KD-tree agrees with brute force on sizes, dims and k.
struct KnnCase {
  size_t n;
  size_t dims;
  size_t k;
  uint64_t seed;
};

class KdTreeEquivalenceTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(KdTreeEquivalenceTest, MatchesBruteForce) {
  const KnnCase param = GetParam();
  Matrix points = RandomPoints(param.n, param.dims, param.seed);
  KdTree tree(points);
  BruteForceKnn brute(points);
  Rng rng(param.seed + 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> query(param.dims);
    for (double& v : query) v = rng.NextDouble();
    const ptrdiff_t skip =
        trial % 3 == 0 ? static_cast<ptrdiff_t>(
                             rng.NextUint64Below(param.n))
                       : -1;
    const auto expected = brute.Query(query, param.k, skip);
    const auto actual = tree.Query(query, param.k, skip);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      // Ties can legitimately reorder equidistant points; compare
      // distances, which must be identical position by position.
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeEquivalenceTest,
    ::testing::Values(KnnCase{50, 2, 5, 41}, KnnCase{500, 4, 7, 42},
                      KnnCase{1000, 8, 3, 43}, KnnCase{300, 11, 10, 44},
                      KnnCase{17, 1, 17, 45}, KnnCase{2000, 5, 1, 46}));

// Reference for the bounded-heap Query: compute every distance with the
// same pairwise kernel, sort all n by (distance, index), take k. The
// heap rewrite must reproduce this exactly — ties included.
std::vector<Neighbour> FullSortTopK(const Matrix& points,
                                    std::span<const double> query, size_t k,
                                    ptrdiff_t skip_index) {
  std::vector<double> norms(points.rows());
  kernels::SquaredNorms(points.rows() > 0 ? points.Row(0) : nullptr,
                        points.rows(), points.cols(), norms.data());
  const double query_norm = kernels::SquaredNorm(query);
  std::vector<Neighbour> all;
  for (size_t row = 0; row < points.rows(); ++row) {
    if (static_cast<ptrdiff_t>(row) == skip_index) continue;
    const std::span<const double> p(points.Row(row), points.cols());
    all.push_back(Neighbour{
        row, std::sqrt(kernels::PairSquaredL2(query, query_norm, p,
                                              norms[row]))});
  }
  std::sort(all.begin(), all.end(), NeighbourBefore);
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(BruteForceTest, HeapQueryMatchesFullSortIncludingTies) {
  // A 5x5 integer grid replicated 3x: every query distance is massively
  // tied, so any heap mistake in tie ordering shows up immediately.
  Matrix points(75, 2);
  for (size_t copy = 0; copy < 3; ++copy) {
    for (size_t i = 0; i < 25; ++i) {
      points(copy * 25 + i, 0) = static_cast<double>(i % 5);
      points(copy * 25 + i, 1) = static_cast<double>(i / 5);
    }
  }
  const BruteForceKnn brute(points);
  Rng rng(91);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> query = {static_cast<double>(rng.NextUint64Below(5)),
                                 static_cast<double>(rng.NextUint64Below(5))};
    const size_t k = 1 + rng.NextUint64Below(75);
    const ptrdiff_t skip =
        trial % 2 == 0
            ? static_cast<ptrdiff_t>(rng.NextUint64Below(points.rows()))
            : -1;
    const auto expected = FullSortTopK(points, query, k, skip);
    const auto actual = brute.Query(query, k, skip);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index) << "trial " << trial;
      EXPECT_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

TEST(BruteForceTest, HeapQueryMatchesFullSortOnRandomData) {
  const Matrix points = RandomPoints(600, 5, 92);
  const BruteForceKnn brute(points);
  Rng rng(93);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> query(5);
    for (double& v : query) v = rng.NextDouble();
    const size_t k = 1 + rng.NextUint64Below(40);
    const auto expected = FullSortTopK(points, query, k, -1);
    const auto actual = brute.Query(query, k);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].index, expected[i].index);
      EXPECT_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

TEST(QueryBatchTest, SkipSelfMatchesPerRowQueryWithSkipIndex) {
  const Matrix points = RandomPoints(250, 4, 94);
  const BruteForceKnn brute(points);
  const KdTree tree(points);
  const ExecutionContext& context = ExecutionContext::Unlimited();
  const auto batch_brute = brute.QueryBatch(points, 6, context, "test", {},
                                            /*skip_self=*/true);
  const auto batch_tree = tree.QueryBatch(points, 6, context, "test", {},
                                          /*skip_self=*/true);
  ASSERT_TRUE(batch_brute.ok());
  ASSERT_TRUE(batch_tree.ok());
  for (size_t i = 0; i < points.rows(); ++i) {
    const std::span<const double> row(points.Row(i), points.cols());
    const auto single =
        brute.Query(row, 6, static_cast<ptrdiff_t>(i));
    ASSERT_EQ(batch_brute.value()[i].size(), single.size());
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_NE(batch_brute.value()[i][j].index, i);
      EXPECT_EQ(batch_brute.value()[i][j].index, single[j].index);
      EXPECT_EQ(batch_brute.value()[i][j].distance, single[j].distance);
      EXPECT_EQ(batch_tree.value()[i][j].index, single[j].index);
      EXPECT_EQ(batch_tree.value()[i][j].distance, single[j].distance);
    }
  }
}

}  // namespace
}  // namespace transer

#include "linalg/cholesky.h"

#include <cmath>

#include "util/logging.h"

namespace transer {

Result<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (pivot " + std::to_string(j) +
          " = " + std::to_string(diag) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return Cholesky(std::move(l));
}

std::vector<double> Cholesky::SolveLower(const std::vector<double>& b) const {
  const size_t n = l_.rows();
  TRANSER_CHECK_EQ(b.size(), n);
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::SolveUpper(const std::vector<double>& y) const {
  const size_t n = l_.rows();
  TRANSER_CHECK_EQ(y.size(), n);
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double acc = y[i];
    for (size_t k = i + 1; k < n; ++k) acc -= l_(k, i) * x[k];
    x[i] = acc / l_(i, i);
  }
  return x;
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  return SolveUpper(SolveLower(b));
}

Matrix Cholesky::SolveLowerMatrix(const Matrix& b) const {
  TRANSER_CHECK_EQ(b.rows(), l_.rows());
  Matrix out(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    std::vector<double> col = b.ColVector(c);
    std::vector<double> y = SolveLower(col);
    for (size_t r = 0; r < b.rows(); ++r) out(r, c) = y[r];
  }
  return out;
}

Matrix Cholesky::Inverse() const {
  const size_t n = l_.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    std::vector<double> x = Solve(e);
    for (size_t r = 0; r < n; ++r) inv(r, c) = x[r];
    e[c] = 0.0;
  }
  return inv;
}

double Cholesky::LogDeterminant() const {
  double acc = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace transer

#include "ml/naive_bayes.h"

#include <cmath>
#include <cstdint>

#include "util/artifact_io.h"
#include "util/logging.h"

namespace transer {

void GaussianNaiveBayes::Fit(const Matrix& x, const std::vector<int>& y,
                             const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  TRANSER_CHECK(weights.empty() || weights.size() == y.size());
  const size_t m = x.cols();
  double class_w[2] = {0.0, 0.0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(m, 0.0);
    variance_[c].assign(m, 0.0);
    has_class_[c] = false;
  }

  for (size_t i = 0; i < x.rows(); ++i) {
    const int c = y[i] == 1 ? 1 : 0;
    const double w = weights.empty() ? 1.0 : weights[i];
    class_w[c] += w;
    const double* row = x.Row(i);
    for (size_t f = 0; f < m; ++f) mean_[c][f] += w * row[f];
  }
  for (int c = 0; c < 2; ++c) {
    if (class_w[c] <= 0.0) continue;
    has_class_[c] = true;
    for (size_t f = 0; f < m; ++f) mean_[c][f] /= class_w[c];
  }
  for (size_t i = 0; i < x.rows(); ++i) {
    const int c = y[i] == 1 ? 1 : 0;
    const double w = weights.empty() ? 1.0 : weights[i];
    const double* row = x.Row(i);
    for (size_t f = 0; f < m; ++f) {
      const double d = row[f] - mean_[c][f];
      variance_[c][f] += w * d * d;
    }
  }
  for (int c = 0; c < 2; ++c) {
    if (!has_class_[c]) continue;
    for (size_t f = 0; f < m; ++f) {
      variance_[c][f] =
          std::max(variance_[c][f] / class_w[c], options_.variance_floor);
    }
  }

  const double total_w = class_w[0] + class_w[1];
  // Laplace-style prior smoothing keeps single-class fits finite.
  log_prior_match_ = std::log((class_w[1] + 1.0) / (total_w + 2.0));
  log_prior_nonmatch_ = std::log((class_w[0] + 1.0) / (total_w + 2.0));
}

double GaussianNaiveBayes::PredictProba(
    std::span<const double> features) const {
  if (!has_class_[0] && !has_class_[1]) return 0.5;
  if (!has_class_[1]) return 0.0;
  if (!has_class_[0]) return 1.0;
  TRANSER_CHECK_EQ(features.size(), mean_[0].size());

  double log_like[2] = {log_prior_nonmatch_, log_prior_match_};
  for (int c = 0; c < 2; ++c) {
    for (size_t f = 0; f < features.size(); ++f) {
      const double var = variance_[c][f];
      const double d = features[f] - mean_[c][f];
      log_like[c] += -0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
    }
  }
  // Softmax over the two log-joint scores.
  const double hi = std::max(log_like[0], log_like[1]);
  const double p1 = std::exp(log_like[1] - hi);
  const double p0 = std::exp(log_like[0] - hi);
  return p1 / (p0 + p1);
}

Status GaussianNaiveBayes::SaveState(artifact::Encoder* out) const {
  out->PutDouble(options_.variance_floor);
  out->PutDouble(log_prior_nonmatch_);
  out->PutDouble(log_prior_match_);
  for (int c = 0; c < 2; ++c) {
    out->PutU8(has_class_[c] ? 1 : 0);
    out->PutDoubleVec(mean_[c]);
    out->PutDoubleVec(variance_[c]);
  }
  return Status::OK();
}

Status GaussianNaiveBayes::LoadState(artifact::Decoder* in) {
  NaiveBayesOptions options;
  double log_prior_nonmatch = 0.0;
  double log_prior_match = 0.0;
  bool has_class[2] = {false, false};
  std::vector<double> mean[2];
  std::vector<double> variance[2];
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&options.variance_floor));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&log_prior_nonmatch));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&log_prior_match));
  for (int c = 0; c < 2; ++c) {
    uint8_t has = 0;
    TRANSER_RETURN_IF_ERROR(in->GetU8(&has));
    TRANSER_RETURN_IF_ERROR(in->GetDoubleVec(&mean[c]));
    TRANSER_RETURN_IF_ERROR(in->GetDoubleVec(&variance[c]));
    if (has > 1) {
      return Status::InvalidArgument("naive bayes class flag is malformed");
    }
    has_class[c] = has == 1;
  }
  if (!(options.variance_floor > 0.0) ||
      !std::isfinite(options.variance_floor) ||
      !std::isfinite(log_prior_nonmatch) || !std::isfinite(log_prior_match)) {
    return Status::InvalidArgument("naive bayes state out of range");
  }
  if (mean[0].size() != mean[1].size() ||
      variance[0].size() != variance[1].size() ||
      mean[0].size() != variance[0].size()) {
    return Status::InvalidArgument("naive bayes moment sizes disagree");
  }
  for (int c = 0; c < 2; ++c) {
    if (!has_class[c]) continue;
    for (size_t f = 0; f < mean[c].size(); ++f) {
      // PredictProba divides by the variance and takes its log: a fitted
      // class always has variance >= the (positive) floor.
      if (!std::isfinite(mean[c][f]) || !(variance[c][f] > 0.0) ||
          !std::isfinite(variance[c][f])) {
        return Status::InvalidArgument("naive bayes moments are malformed");
      }
    }
  }
  options_ = options;
  log_prior_nonmatch_ = log_prior_nonmatch;
  log_prior_match_ = log_prior_match;
  for (int c = 0; c < 2; ++c) {
    has_class_[c] = has_class[c];
    mean_[c] = std::move(mean[c]);
    variance_[c] = std::move(variance[c]);
  }
  return Status::OK();
}

}  // namespace transer

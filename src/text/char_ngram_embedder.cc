#include "text/char_ngram_embedder.h"

#include <cmath>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace transer {

namespace {

// FNV-1a 64-bit over the gram bytes mixed with a salt.
uint64_t HashGram(std::string_view gram, uint64_t salt) {
  uint64_t h = 14695981039346656037ULL ^ salt;
  for (char c : gram) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Deterministic pseudo-random double in [-1, 1] from a hash state.
double HashToUnit(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

}  // namespace

CharNgramEmbedder::CharNgramEmbedder(CharNgramEmbedderOptions options)
    : options_(options) {
  TRANSER_CHECK_GT(options_.dimension, 0u);
  TRANSER_CHECK_GE(options_.max_n, options_.min_n);
  TRANSER_CHECK_GT(options_.min_n, 0u);
}

void CharNgramEmbedder::AddNgram(std::string_view gram,
                                 std::vector<double>* acc) const {
  const uint64_t base = HashGram(gram, options_.seed);
  for (size_t d = 0; d < options_.dimension; ++d) {
    (*acc)[d] += HashToUnit(base + 0x9e3779b97f4a7c15ULL * (d + 1));
  }
}

std::vector<double> CharNgramEmbedder::Embed(std::string_view text) const {
  std::vector<double> acc(options_.dimension, 0.0);
  if (text.empty()) return acc;
  // Frame the string so boundary grams differ from interior grams.
  std::string framed = "<";
  framed.append(text);
  framed.push_back('>');
  for (size_t n = options_.min_n; n <= options_.max_n; ++n) {
    if (framed.size() < n) break;
    for (size_t i = 0; i + n <= framed.size(); ++i) {
      AddNgram(std::string_view(framed).substr(i, n), &acc);
    }
  }
  NormalizeInPlace(&acc);
  return acc;
}

std::vector<double> CharNgramEmbedder::EmbedFields(
    const std::vector<std::string>& fields) const {
  std::vector<double> out;
  out.reserve(options_.dimension * fields.size());
  for (const auto& field : fields) {
    const std::vector<double> e = Embed(field);
    out.insert(out.end(), e.begin(), e.end());
  }
  return out;
}

std::vector<double> CharNgramEmbedder::EmbedPair(
    const std::vector<std::string>& a, const std::vector<std::string>& b) const {
  TRANSER_CHECK_EQ(a.size(), b.size());
  std::vector<double> out;
  out.reserve(PairDimension(a.size()));
  for (size_t f = 0; f < a.size(); ++f) {
    const std::vector<double> ea = Embed(a[f]);
    const std::vector<double> eb = Embed(b[f]);
    for (size_t d = 0; d < options_.dimension; ++d) {
      out.push_back(std::fabs(ea[d] - eb[d]));
    }
    for (size_t d = 0; d < options_.dimension; ++d) {
      out.push_back(ea[d] * eb[d]);
    }
  }
  return out;
}

}  // namespace transer

#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace transer {

namespace internal_gbdt {

namespace {

// Weighted mean of residuals over indices[begin, end).
double WeightedMean(const std::vector<double>& residuals,
                    const std::vector<double>& weights,
                    const std::vector<size_t>& indices, size_t begin,
                    size_t end) {
  double total = 0.0;
  double total_w = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t row = indices[i];
    total += weights[row] * residuals[row];
    total_w += weights[row];
  }
  return total_w > 0.0 ? total / total_w : 0.0;
}

}  // namespace

ptrdiff_t RegressionTree::Grow(const Matrix& x,
                               const std::vector<double>& residuals,
                               const std::vector<double>& weights,
                               std::vector<size_t>* indices, size_t begin,
                               size_t end, int depth, int max_depth,
                               size_t min_samples_leaf, int num_threads) {
  Node node;
  node.value = WeightedMean(residuals, weights, *indices, begin, end);

  // Find the squared-error-optimal split if the node may be split.
  bool found = false;
  size_t best_feature = 0;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  if (depth < max_depth && end - begin >= 2 * min_samples_leaf) {
    // Every feature scores from this pristine copy of the node's row
    // order, so its result is independent of which other features ran
    // (or in what order) — the basis of the parallel search's
    // determinism.
    const std::vector<size_t> base(
        indices->begin() + static_cast<ptrdiff_t>(begin),
        indices->begin() + static_cast<ptrdiff_t>(end));
    double total_sw = 0.0, total_swr = 0.0;
    for (size_t row : base) {
      total_sw += weights[row];
      total_swr += weights[row] * residuals[row];
    }

    struct BestSplit {
      bool found = false;
      double gain = 1e-12;
      size_t feature = 0;
      double threshold = 0.0;
    };
    ParallelOptions par;
    par.num_threads = num_threads;
    auto best = ParallelReduce<BestSplit>(
        ExecutionContext::Unlimited(), "gbdt_split", x.cols(), BestSplit{},
        [&](size_t f_begin, size_t f_end, size_t /*chunk*/,
            BestSplit* acc) -> Status {
          std::vector<size_t> sorted;
          for (size_t feature = f_begin; feature < f_end; ++feature) {
            sorted = base;
            std::sort(sorted.begin(), sorted.end(),
                      [&x, feature](size_t a, size_t b) {
                        return x(a, feature) < x(b, feature);
                      });
            double left_sw = 0.0, left_swr = 0.0;
            for (size_t i = 0; i + 1 < sorted.size(); ++i) {
              const size_t row = sorted[i];
              left_sw += weights[row];
              left_swr += weights[row] * residuals[row];
              if (i + 1 < min_samples_leaf ||
                  sorted.size() - i - 1 < min_samples_leaf) {
                continue;
              }
              const double value = x(row, feature);
              const double next = x(sorted[i + 1], feature);
              if (next <= value) continue;
              const double right_sw = total_sw - left_sw;
              const double right_swr = total_swr - left_swr;
              if (left_sw <= 0.0 || right_sw <= 0.0) continue;
              // Variance-reduction gain: sum of (weighted mean)^2 * weight.
              const double gain = left_swr * left_swr / left_sw +
                                  right_swr * right_swr / right_sw -
                                  total_swr * total_swr / total_sw;
              // Strict >: within the ascending feature scan the lowest
              // feature index wins gain ties, exactly as the serial
              // loop resolved them.
              if (gain > acc->gain) {
                const double threshold = value + 0.5 * (next - value);
                if (!(threshold < next)) continue;
                acc->gain = gain;
                acc->feature = feature;
                acc->threshold = threshold;
                acc->found = true;
              }
            }
          }
          return Status::OK();
        },
        [](BestSplit* into, BestSplit* part) {
          // Chunks fold in ascending feature order; strict > preserves
          // the lowest-index tie-break across chunk boundaries.
          if (part->found && part->gain > into->gain) *into = *part;
        },
        par);
    TRANSER_CHECK(best.ok());
    found = best.value().found;
    best_feature = best.value().feature;
    best_threshold = best.value().threshold;
    best_gain = best.value().gain;
  }
  (void)best_gain;

  if (!found) {
    nodes.push_back(node);
    return static_cast<ptrdiff_t>(nodes.size() - 1);
  }

  auto mid_it = std::partition(
      indices->begin() + static_cast<ptrdiff_t>(begin),
      indices->begin() + static_cast<ptrdiff_t>(end),
      [&x, best_feature, best_threshold](size_t row) {
        return x(row, best_feature) <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices->begin());
  TRANSER_CHECK(mid > begin && mid < end);

  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes.push_back(node);
  const ptrdiff_t index = static_cast<ptrdiff_t>(nodes.size() - 1);
  const ptrdiff_t left = Grow(x, residuals, weights, indices, begin, mid,
                              depth + 1, max_depth, min_samples_leaf,
                              num_threads);
  const ptrdiff_t right = Grow(x, residuals, weights, indices, mid, end,
                               depth + 1, max_depth, min_samples_leaf,
                               num_threads);
  nodes[static_cast<size_t>(index)].left = left;
  nodes[static_cast<size_t>(index)].right = right;
  return index;
}

void RegressionTree::Fit(const Matrix& x,
                         const std::vector<double>& residuals,
                         const std::vector<double>& weights, int max_depth,
                         size_t min_samples_leaf, int num_threads) {
  nodes.clear();
  root = -1;
  if (x.rows() == 0) return;
  std::vector<size_t> indices(x.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  root = Grow(x, residuals, weights, &indices, 0, indices.size(), 0,
              max_depth, min_samples_leaf, num_threads);
}

double RegressionTree::Predict(std::span<const double> features) const {
  if (root < 0) return 0.0;
  ptrdiff_t current = root;
  for (;;) {
    const Node& node = nodes[static_cast<size_t>(current)];
    if (node.is_leaf) return node.value;
    current =
        features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

}  // namespace internal_gbdt

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void GradientBoosting::Fit(const Matrix& x, const std::vector<int>& y,
                           const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  TRANSER_CHECK(weights.empty() || weights.size() == y.size());
  trees_.clear();
  num_features_ = x.cols();
  base_logit_ = 0.0;
  const size_t n = x.rows();
  if (n == 0) return;

  std::vector<double> w = weights;
  if (w.empty()) w.assign(n, 1.0);

  // Base score: log-odds of the (weighted) match rate, clamped so a
  // single-class fit stays finite.
  double match_w = 0.0, total_w = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total_w += w[i];
    if (y[i] == 1) match_w += w[i];
  }
  const double p0 = std::clamp(match_w / std::max(total_w, 1e-12), 1e-4,
                               1.0 - 1e-4);
  base_logit_ = std::log(p0 / (1.0 - p0));

  std::vector<double> logits(n, base_logit_);
  std::vector<double> residuals(n);
  for (size_t round = 0; round < options_.num_rounds; ++round) {
    if (FitInterrupted()) return;  // caller surfaces the status via Check
    for (size_t i = 0; i < n; ++i) {
      residuals[i] = static_cast<double>(y[i]) - Sigmoid(logits[i]);
    }
    internal_gbdt::RegressionTree tree;
    tree.Fit(x, residuals, w, options_.max_depth, options_.min_samples_leaf,
             options_.num_threads);
    double max_abs_update = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double update =
          options_.learning_rate *
          tree.Predict(std::span<const double>(x.Row(i), num_features_));
      logits[i] += update;
      max_abs_update = std::max(max_abs_update, std::fabs(update));
    }
    trees_.push_back(std::move(tree));
    if (max_abs_update < 1e-7) break;  // converged: residuals exhausted
  }
}

double GradientBoosting::PredictProba(
    std::span<const double> features) const {
  TRANSER_CHECK_EQ(features.size(), num_features_);
  double logit = base_logit_;
  for (const auto& tree : trees_) {
    logit += options_.learning_rate * tree.Predict(features);
  }
  return Sigmoid(logit);
}

}  // namespace transer

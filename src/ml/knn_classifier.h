#ifndef TRANSER_ML_KNN_CLASSIFIER_H_
#define TRANSER_ML_KNN_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "knn/kd_tree.h"
#include "ml/classifier.h"

namespace transer {

/// \brief Hyper-parameters for the k-NN classifier.
struct KnnClassifierOptions {
  size_t k = 7;
  /// Weight neighbours by inverse distance rather than uniformly.
  bool distance_weighted = true;
};

/// \brief k-nearest-neighbour classifier over a KD-tree. PredictProba is
/// the (optionally distance-weighted) match fraction among the k nearest
/// training instances; sample weights multiply the vote weights. A simple
/// extra classifier family whose local semantics mirror TransER's own
/// neighbourhood reasoning.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnClassifierOptions options = {})
      : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<double>& weights) override;
  using Classifier::Fit;

  double PredictProba(std::span<const double> features) const override;

  std::string name() const override { return "knn"; }

  /// Persists the training set (points, labels, weights); LoadState
  /// rebuilds the KD-tree deterministically from the stored points.
  Status SaveState(artifact::Encoder* out) const override;
  Status LoadState(artifact::Decoder* in) override;

 private:
  KnnClassifierOptions options_;
  std::unique_ptr<KdTree> tree_;
  std::vector<int> labels_;
  std::vector<double> weights_;
};

}  // namespace transer

#endif  // TRANSER_ML_KNN_CLASSIFIER_H_

#ifndef TRANSER_CORE_SWEEP_CHECKPOINT_H_
#define TRANSER_CORE_SWEEP_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/metrics.h"
#include "util/diagnostics.h"
#include "util/status.h"

namespace transer {

/// \brief Identity of one sweep cell: a (method, scenario, classifier)
/// triple, the unit of work Tables 2 / 3 iterate over.
struct SweepCellKey {
  std::string method;
  std::string scenario;
  std::string classifier;

  bool operator==(const SweepCellKey& other) const {
    return method == other.method && scenario == other.scenario &&
           classifier == other.classifier;
  }
};

/// \brief Journal entry for one completed sweep cell.
struct SweepCellRecord {
  SweepCellKey key;
  /// The exact per-run seed the cell was executed with; a resumed sweep
  /// re-runs (or skips) the cell under the same seed, which is what makes
  /// resumed aggregates bit-identical to uninterrupted ones.
  uint64_t seed = 0;
  /// Empty on success; "TE" / "ME" for the paper's deterministic budget
  /// failures (skipped on resume); anything else is a transient failure
  /// eligible for one retry.
  std::string failure;
  LinkageQuality quality;  ///< valid only when `failure` is empty
  double runtime_seconds = 0.0;
};

/// Serialises a record as one JSON line. Doubles use %.17g so decoding
/// round-trips them exactly.
std::string EncodeSweepCellRecord(const SweepCellRecord& record);

/// Parses one journal line. Returns InvalidArgument on any malformation
/// (the caller treats that as a torn tail write and truncates).
Result<SweepCellRecord> DecodeSweepCellRecord(const std::string& line);

/// \brief Append-only JSONL journal of completed sweep cells, giving
/// experiment sweeps crash-safe restartability.
///
/// Durability model: every Record() rewrites the journal to a temp file in
/// the same directory and renames it over the old one, so the journal on
/// disk is always a complete, well-formed prefix of the sweep — a crash
/// mid-write can at worst leave a torn *trailing* line, which Open()
/// drops (reporting kCheckpointTailDropped) and the sweep re-runs.
class SweepCheckpoint {
 public:
  /// Loads the journal at `path`, creating an empty one if absent. A
  /// corrupt trailing line is tolerated: the journal is truncated to the
  /// last well-formed record and the drop is recorded in `diagnostics`.
  /// Corruption *before* the tail (more than one bad line) fails instead
  /// of silently discarding completed work.
  static Result<SweepCheckpoint> Open(const std::string& path,
                                      RunDiagnostics* diagnostics = nullptr);

  /// Latest record for `key`, or nullptr if the cell has not completed.
  const SweepCellRecord* Find(const SweepCellKey& key) const;

  /// Journals `record` durably (write-temp-then-rename) before returning.
  /// Re-recording a key (a retried cell) supersedes the earlier entry.
  Status Record(const SweepCellRecord& record);

  /// Rewrites the journal in canonical (scenario, method, classifier)
  /// name order. A parallel sweep journals cells in completion order,
  /// which depends on scheduling; canonicalising at the end of a
  /// completed sweep makes the final journal independent of how many
  /// threads ran it (runtime_seconds fields aside).
  Status Canonicalize();

  size_t size() const { return records_.size(); }
  const std::string& path() const { return path_; }
  const std::vector<SweepCellRecord>& records() const { return records_; }

 private:
  explicit SweepCheckpoint(std::string path) : path_(std::move(path)) {}

  Status Flush() const;  ///< atomic rewrite of the whole journal

  static std::string IndexKey(const SweepCellKey& key);

  std::string path_;
  std::vector<SweepCellRecord> records_;
  std::unordered_map<std::string, size_t> index_;  ///< IndexKey -> records_
};

}  // namespace transer

#endif  // TRANSER_CORE_SWEEP_CHECKPOINT_H_

#include "transfer/tradaboost.h"

#include <cmath>
#include <memory>

#include "transfer/transfer_method.h"
#include "util/logging.h"

namespace transer {

Result<std::vector<int>> TrAdaBoost::Run(
    const FeatureMatrix& source, const FeatureMatrix& target_labeled,
    const FeatureMatrix& target_unlabeled,
    const ClassifierFactory& make_classifier) const {
  if (source.num_features() != target_labeled.num_features() ||
      source.num_features() != target_unlabeled.num_features()) {
    return Status::InvalidArgument("feature spaces differ");
  }
  if (source.empty() || target_labeled.empty()) {
    return Status::InvalidArgument(
        "TrAdaBoost needs labelled source and labelled target instances");
  }

  const size_t n_source = source.size();
  const size_t n_target = target_labeled.size();
  const size_t n = n_source + n_target;

  // Combined training set: rows [0, n_source) are source.
  const Matrix x = Matrix::VStack(source.ToMatrix(),
                                  target_labeled.ToMatrix());
  std::vector<int> y = transfer_internal::RequireLabels(source);
  const std::vector<int> y_target =
      transfer_internal::RequireLabels(target_labeled);
  y.insert(y.end(), y_target.begin(), y_target.end());

  std::vector<double> weights(n, 1.0);
  // Fixed source down-weighting rate (Dai et al., Eq. for beta).
  const double beta =
      1.0 / (1.0 + std::sqrt(2.0 * std::log(static_cast<double>(n_source)) /
                             static_cast<double>(options_.num_rounds)));

  struct Round {
    std::unique_ptr<Classifier> classifier;
    double vote = 0.0;  // ln(1 / beta_t)
  };
  std::vector<Round> rounds;
  rounds.reserve(options_.num_rounds);

  for (size_t t = 0; t < options_.num_rounds; ++t) {
    // Normalise weights.
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) break;
    std::vector<double> normalized(n);
    for (size_t i = 0; i < n; ++i) normalized[i] = weights[i] / total;

    auto classifier = make_classifier();
    classifier->Fit(x, y, normalized);
    const std::vector<int> predicted = classifier->PredictAll(x);

    // Weighted error on the labelled target part only.
    double target_w = 0.0;
    double error_w = 0.0;
    for (size_t i = n_source; i < n; ++i) {
      target_w += normalized[i];
      if (predicted[i] != y[i]) error_w += normalized[i];
    }
    double epsilon = target_w > 0.0 ? error_w / target_w : 0.0;
    // Clamp away from 0 and 1/2 so the vote stays finite and positive.
    epsilon = std::min(epsilon, 0.499);
    const double beta_t = std::max(epsilon / (1.0 - epsilon), 1e-6);

    // Update weights: source errors shrink, target errors grow.
    for (size_t i = 0; i < n; ++i) {
      if (predicted[i] == y[i]) continue;
      weights[i] *= i < n_source ? beta : 1.0 / beta_t;
    }

    rounds.push_back({std::move(classifier), std::log(1.0 / beta_t)});
  }
  if (rounds.empty()) {
    return Status::Internal("TrAdaBoost trained no rounds");
  }

  // Final hypothesis: weighted vote over the later half of the rounds.
  const size_t start = rounds.size() / 2;
  const Matrix x_test = target_unlabeled.ToMatrix();
  std::vector<int> out(target_unlabeled.size());
  for (size_t i = 0; i < target_unlabeled.size(); ++i) {
    const std::span<const double> row(x_test.Row(i), x_test.cols());
    double vote = 0.0;
    double total_vote = 0.0;
    for (size_t t = start; t < rounds.size(); ++t) {
      total_vote += rounds[t].vote;
      if (rounds[t].classifier->Predict(row) == 1) vote += rounds[t].vote;
    }
    out[i] = (total_vote > 0.0 && vote >= 0.5 * total_vote) ? 1 : 0;
  }
  return out;
}

}  // namespace transer

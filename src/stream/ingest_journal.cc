#include "stream/ingest_journal.h"

#include <utility>

#include "util/artifact_io.h"
#include "util/string_util.h"

namespace transer {
namespace stream {

namespace {

/// Payload version inside a frame, so the entry layout can evolve
/// independently of the framing.
constexpr uint8_t kEntryVersion = 1;

}  // namespace

std::vector<uint8_t> EncodeIngestEntry(const IngestEntry& entry) {
  artifact::Encoder encoder;
  encoder.PutU8(kEntryVersion);
  encoder.PutU64(entry.sequence);
  encoder.PutString(entry.record.id);
  encoder.PutI64(entry.record.entity_id);
  encoder.PutStringVec(entry.record.values);
  return encoder.TakeBytes();
}

Result<IngestEntry> DecodeIngestEntry(std::span<const uint8_t> payload) {
  artifact::Decoder decoder(payload);
  uint8_t version = 0;
  TRANSER_RETURN_IF_ERROR(decoder.GetU8(&version));
  if (version != kEntryVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported ingest entry version %u", version));
  }
  IngestEntry entry;
  TRANSER_RETURN_IF_ERROR(decoder.GetU64(&entry.sequence));
  TRANSER_RETURN_IF_ERROR(decoder.GetString(&entry.record.id));
  TRANSER_RETURN_IF_ERROR(decoder.GetI64(&entry.record.entity_id));
  TRANSER_RETURN_IF_ERROR(decoder.GetStringVec(&entry.record.values));
  TRANSER_RETURN_IF_ERROR(decoder.ExpectEnd());
  if (entry.sequence == 0) {
    return Status::InvalidArgument("ingest entry sequence 0 is reserved");
  }
  return entry;
}

Result<IngestJournal> IngestJournal::Open(const std::string& path,
                                          IngestJournalRecovery* recovery) {
  if (recovery == nullptr) {
    return Status::InvalidArgument("ingest journal recovery out-param is null");
  }
  *recovery = IngestJournalRecovery{};
  journal::FrameRecovery frames;
  TRANSER_ASSIGN_OR_RETURN(
      journal::FrameJournal journal,
      journal::FrameJournal::Open(path, kIngestJournalMagic, &frames));
  recovery->tail_dropped = frames.tail_dropped;
  recovery->dropped_bytes = frames.dropped_bytes;
  recovery->entries.reserve(frames.frames.size());
  uint64_t last_sequence = 0;
  for (size_t i = 0; i < frames.frames.size(); ++i) {
    auto entry = DecodeIngestEntry(frames.frames[i]);
    if (!entry.ok()) {
      // The frame CRC passed, so this is not bit rot: the payload layout
      // itself is wrong. That is never a torn tail — refuse.
      return Status::FailedPrecondition(StrFormat(
          "%s: frame %zu is not a valid ingest entry: %s", path.c_str(),
          i + 1, entry.status().message().c_str()));
    }
    if (entry.value().sequence <= last_sequence) {
      return Status::FailedPrecondition(StrFormat(
          "%s: frame %zu has sequence %llu after %llu (journal order "
          "violated)",
          path.c_str(), i + 1,
          static_cast<unsigned long long>(entry.value().sequence),
          static_cast<unsigned long long>(last_sequence)));
    }
    last_sequence = entry.value().sequence;
    recovery->entries.push_back(std::move(entry).value());
  }
  return IngestJournal(std::move(journal));
}

Status IngestJournal::Append(const IngestEntry& entry) {
  const std::vector<uint8_t> payload = EncodeIngestEntry(entry);
  return journal_.Append(payload);
}

Status IngestJournal::Compact(const std::vector<IngestEntry>& keep) {
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(keep.size());
  for (const IngestEntry& entry : keep) {
    frames.push_back(EncodeIngestEntry(entry));
  }
  const std::string path = journal_.path();
  // The rewrite replaces the inode; close our fd first so the appends
  // after re-open go to the new file.
  journal_.Close();
  TRANSER_RETURN_IF_ERROR(
      journal::FrameJournal::Rewrite(path, kIngestJournalMagic, frames));
  TRANSER_ASSIGN_OR_RETURN(
      journal_, journal::FrameJournal::Open(path, kIngestJournalMagic));
  return Status::OK();
}

}  // namespace stream
}  // namespace transer

#include <gtest/gtest.h>

#include "features/ambiguity.h"
#include "features/comparator.h"
#include "features/feature_matrix.h"

namespace transer {
namespace {

FeatureMatrix TwoFeatureMatrix() {
  FeatureMatrix x({"a", "b"});
  x.Append({0.1, 0.2}, kNonMatch, {0, 0});
  x.Append({0.9, 0.8}, kMatch, {1, 2});
  x.Append({0.5, 0.5}, kUnlabeled, {3, 4});
  return x;
}

// ---------- FeatureMatrix ----------

TEST(FeatureMatrixTest, AppendAndAccess) {
  const FeatureMatrix x = TwoFeatureMatrix();
  EXPECT_EQ(x.size(), 3u);
  EXPECT_EQ(x.num_features(), 2u);
  EXPECT_DOUBLE_EQ(x.Row(1)[0], 0.9);
  EXPECT_EQ(x.label(1), kMatch);
  EXPECT_EQ(x.pair(2).left_index, 3u);
  EXPECT_EQ(x.CountMatches(), 1u);
  EXPECT_EQ(x.CountNonMatches(), 1u);
  EXPECT_EQ(x.CountUnlabeled(), 1u);
}

TEST(FeatureMatrixTest, ToMatrixCopiesData) {
  const FeatureMatrix x = TwoFeatureMatrix();
  const Matrix m = x.ToMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(2, 1), 0.5);
}

TEST(FeatureMatrixTest, SelectKeepsLabelsAndPairs) {
  const FeatureMatrix x = TwoFeatureMatrix();
  const FeatureMatrix sub = x.Select({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), kUnlabeled);
  EXPECT_EQ(sub.pair(0).right_index, 4u);
  EXPECT_DOUBLE_EQ(sub.Row(1)[0], 0.1);
}

TEST(FeatureMatrixTest, WithoutLabelsHidesEverything) {
  const FeatureMatrix hidden = TwoFeatureMatrix().WithoutLabels();
  EXPECT_EQ(hidden.CountUnlabeled(), 3u);
}

TEST(FeatureMatrixTest, WithLabelsOverrides) {
  const FeatureMatrix relabeled =
      TwoFeatureMatrix().WithLabels({kMatch, kMatch, kNonMatch});
  EXPECT_EQ(relabeled.CountMatches(), 2u);
  EXPECT_EQ(relabeled.label(2), kNonMatch);
}

TEST(FeatureMatrixTest, CsvRoundTrip) {
  const std::string path = testing::TempDir() + "/transer_features.csv";
  ASSERT_TRUE(TwoFeatureMatrix().ToCsvFile(path).ok());
  auto loaded = FeatureMatrix::FromCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().feature_names(),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_NEAR(loaded.value().Row(1)[1], 0.8, 1e-6);
  EXPECT_EQ(loaded.value().label(2), kUnlabeled);
}

// ---------- PairComparator ----------

Schema BibSchema() {
  return Schema({{"title", "word_jaccard"}, {"year", "year"}});
}

TEST(PairComparatorTest, ComputesDeclaredSimilarities) {
  auto comparator = PairComparator::Create(BibSchema(), BibSchema());
  ASSERT_TRUE(comparator.ok());
  Record a{"a", 0, {"Entity Resolution Methods", "1970"}};
  Record b{"b", 0, {"entity resolution", "1971"}};
  const auto features = comparator.value().Compare(a, b);
  ASSERT_EQ(features.size(), 2u);
  EXPECT_NEAR(features[0], 2.0 / 3.0, 1e-12);  // word jaccard after norm
  EXPECT_NEAR(features[1], 0.9, 1e-12);        // |1970-1971| / 10
}

TEST(PairComparatorTest, MissingValuesScoreZeroByDefault) {
  auto comparator = PairComparator::Create(BibSchema(), BibSchema());
  ASSERT_TRUE(comparator.ok());
  Record a{"a", 0, {"", "1970"}};
  Record b{"b", 0, {"anything", "1970"}};
  const auto features = comparator.value().Compare(a, b);
  EXPECT_DOUBLE_EQ(features[0], 0.0);
  EXPECT_DOUBLE_EQ(features[1], 1.0);
}

TEST(PairComparatorTest, RejectsIncompatibleSchemas) {
  Schema other({{"title", "jaro"}, {"year", "year"}});
  EXPECT_FALSE(PairComparator::Create(BibSchema(), other).ok());
}

TEST(PairComparatorTest, RejectsUnknownSimilarity) {
  Schema bad({{"title", "definitely_not_registered"}});
  EXPECT_FALSE(PairComparator::Create(bad, bad).ok());
}

TEST(PairComparatorTest, CompareAllLabelsFromEntityIds) {
  Dataset left("l", BibSchema());
  Dataset right("r", BibSchema());
  left.Add({"l0", 7, {"entity resolution", "1999"}});
  right.Add({"r0", 7, {"entity resolution", "1999"}});
  right.Add({"r1", 8, {"graph mining", "2001"}});
  auto comparator = PairComparator::Create(BibSchema(), BibSchema());
  ASSERT_TRUE(comparator.ok());
  const FeatureMatrix features = comparator.value().CompareAll(
      left, right, {{0, 0}, {0, 1}});
  ASSERT_EQ(features.size(), 2u);
  EXPECT_EQ(features.label(0), kMatch);
  EXPECT_EQ(features.label(1), kNonMatch);
  EXPECT_DOUBLE_EQ(features.Row(0)[0], 1.0);
}

// ---------- AmbiguityAnalyzer ----------

TEST(AmbiguityTest, KeyRoundsToRequestedDecimals) {
  AmbiguityAnalyzer analyzer(2);
  const std::vector<double> row = {0.123, 0.126};
  EXPECT_EQ(analyzer.Key(std::span<const double>(row.data(), 2)),
            "0.12|0.13|");
}

TEST(AmbiguityTest, DetectsAmbiguousVectors) {
  FeatureMatrix x({"f"});
  x.Append({0.5}, kMatch);
  x.Append({0.5}, kNonMatch);  // same vector, both labels
  x.Append({0.9}, kMatch);
  x.Append({0.1}, kNonMatch);
  const AmbiguityStats stats = AmbiguityAnalyzer().Analyze(x);
  EXPECT_EQ(stats.total_instances, 4u);
  EXPECT_EQ(stats.distinct_vectors, 3u);
  EXPECT_DOUBLE_EQ(stats.ambiguous_fraction, 0.5);
  EXPECT_DOUBLE_EQ(stats.match_fraction, 0.25);
  EXPECT_DOUBLE_EQ(stats.nonmatch_fraction, 0.25);
}

TEST(AmbiguityTest, RoundingMergesCloseVectors) {
  FeatureMatrix x({"f"});
  x.Append({0.501}, kMatch);
  x.Append({0.499}, kNonMatch);  // rounds to the same 0.50
  const AmbiguityStats stats = AmbiguityAnalyzer(2).Analyze(x);
  EXPECT_EQ(stats.distinct_vectors, 1u);
  EXPECT_DOUBLE_EQ(stats.ambiguous_fraction, 1.0);
}

TEST(AmbiguityTest, CommonVectorClassification) {
  FeatureMatrix a({"f"});
  a.Append({0.9}, kMatch);     // common, same class
  a.Append({0.5}, kMatch);     // common, diff class
  a.Append({0.3}, kMatch);     // common, ambiguous in b
  a.Append({0.7}, kMatch);     // only in a
  FeatureMatrix b({"f"});
  b.Append({0.9}, kMatch);
  b.Append({0.5}, kNonMatch);
  b.Append({0.3}, kMatch);
  b.Append({0.3}, kNonMatch);
  const CommonVectorStats stats =
      AmbiguityAnalyzer().AnalyzeCommon(a, b);
  EXPECT_EQ(stats.common_distinct_vectors, 3u);
  EXPECT_NEAR(stats.same_class_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.diff_class_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.ambiguous_fraction, 1.0 / 3.0, 1e-12);
}

TEST(AmbiguityTest, EmptyMatrixProducesZeroStats) {
  FeatureMatrix x({"f"});
  const AmbiguityStats stats = AmbiguityAnalyzer().Analyze(x);
  EXPECT_EQ(stats.total_instances, 0u);
  EXPECT_DOUBLE_EQ(stats.ambiguous_fraction, 0.0);
}

}  // namespace
}  // namespace transer

#include <gtest/gtest.h>

#include "knn/brute_force.h"
#include "knn/kd_tree.h"
#include "util/random.h"

namespace transer {
namespace {

Matrix RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix points(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) points(i, d) = rng.NextDouble();
  }
  return points;
}

TEST(KdTreeTest, FindsExactPoint) {
  Matrix points = {{0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5}};
  KdTree tree(points);
  const auto result = tree.Query(std::vector<double>{1.0, 1.0}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 1u);
  EXPECT_DOUBLE_EQ(result[0].distance, 0.0);
}

TEST(KdTreeTest, ReturnsSortedByDistance) {
  Matrix points = RandomPoints(200, 3, 31);
  KdTree tree(points);
  const std::vector<double> query = {0.3, 0.7, 0.5};
  const auto result = tree.Query(query, 10);
  ASSERT_EQ(result.size(), 10u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(KdTreeTest, SkipIndexExcludesSelf) {
  Matrix points = {{0.1, 0.1}, {0.1, 0.1}, {0.9, 0.9}};
  KdTree tree(points);
  const auto result =
      tree.Query(std::vector<double>{0.1, 0.1}, 2, /*skip_index=*/0);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_NE(result[0].index, 0u);
  EXPECT_NE(result[1].index, 0u);
}

TEST(KdTreeTest, KLargerThanDataReturnsAll) {
  Matrix points = RandomPoints(5, 2, 32);
  KdTree tree(points);
  const auto result = tree.Query(std::vector<double>{0.5, 0.5}, 50);
  EXPECT_EQ(result.size(), 5u);
}

TEST(KdTreeTest, EmptyTreeAndZeroK) {
  Matrix none(0, 2);
  KdTree tree(none);
  EXPECT_TRUE(tree.Query(std::vector<double>{0.5, 0.5}, 3).empty());
  Matrix some = RandomPoints(10, 2, 33);
  KdTree tree2(some);
  EXPECT_TRUE(tree2.Query(std::vector<double>{0.5, 0.5}, 0).empty());
}

TEST(KdTreeTest, HandlesDuplicatePoints) {
  Matrix points(64, 2, 0.5);  // all identical
  KdTree tree(points);
  const auto result = tree.Query(std::vector<double>{0.5, 0.5}, 7);
  EXPECT_EQ(result.size(), 7u);
  for (const auto& nb : result) EXPECT_DOUBLE_EQ(nb.distance, 0.0);
}

// Property: KD-tree agrees with brute force on sizes, dims and k.
struct KnnCase {
  size_t n;
  size_t dims;
  size_t k;
  uint64_t seed;
};

class KdTreeEquivalenceTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(KdTreeEquivalenceTest, MatchesBruteForce) {
  const KnnCase param = GetParam();
  Matrix points = RandomPoints(param.n, param.dims, param.seed);
  KdTree tree(points);
  BruteForceKnn brute(points);
  Rng rng(param.seed + 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> query(param.dims);
    for (double& v : query) v = rng.NextDouble();
    const ptrdiff_t skip =
        trial % 3 == 0 ? static_cast<ptrdiff_t>(
                             rng.NextUint64Below(param.n))
                       : -1;
    const auto expected = brute.Query(query, param.k, skip);
    const auto actual = tree.Query(query, param.k, skip);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      // Ties can legitimately reorder equidistant points; compare
      // distances, which must be identical position by position.
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeEquivalenceTest,
    ::testing::Values(KnnCase{50, 2, 5, 41}, KnnCase{500, 4, 7, 42},
                      KnnCase{1000, 8, 3, 43}, KnnCase{300, 11, 10, 44},
                      KnnCase{17, 1, 17, 45}, KnnCase{2000, 5, 1, 46}));

}  // namespace
}  // namespace transer

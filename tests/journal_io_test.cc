// Tests for the shared journal layer (util/journal_io): the one
// torn-tail recovery policy behind both the line-based sweep checkpoint
// and the binary CRC-framed ingest WAL. The heavy lifting is two fuzz
// families run over BOTH call sites — truncate-at-every-byte-prefix
// (every possible crash point of an append) and flip-every-byte (bit
// rot anywhere in the file) — plus the fsync-fault proofs that a
// journal append and an artifact publish surface fsync failure as a
// write error instead of acknowledging unsynced bytes.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sweep_checkpoint.h"
#include "stream/ingest_journal.h"
#include "testing/fault_injection.h"
#include "util/artifact_io.h"
#include "util/journal_io.h"
#include "util/status.h"

namespace transer {
namespace {

namespace fs = std::filesystem;

constexpr char kTestMagic[4] = {'T', 'J', 'T', '1'};
constexpr size_t kHeaderBytes = 12;  // magic + version + header CRC

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

/// Fresh empty directory for segmented-journal tests.
std::string TempDirPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

/// Deterministic variable-length payload for frame `i`.
std::vector<uint8_t> MakePayload(size_t i) {
  std::vector<uint8_t> payload(5 + 3 * i);
  for (size_t j = 0; j < payload.size(); ++j) {
    payload[j] = static_cast<uint8_t>((i * 31 + j * 7 + 1) & 0xFF);
  }
  return payload;
}

/// Writes a fresh journal of `n` MakePayload frames and returns the
/// byte offset at which each frame ends (boundaries[0] == header end).
std::vector<size_t> WriteFrames(const std::string& path, size_t n) {
  std::vector<size_t> boundaries = {kHeaderBytes};
  auto opened = journal::FrameJournal::Open(path, kTestMagic);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  journal::FrameJournal journal = std::move(opened).value();
  for (size_t i = 0; i < n; ++i) {
    const std::vector<uint8_t> payload = MakePayload(i);
    EXPECT_TRUE(journal.Append(payload).ok());
    boundaries.push_back(boundaries.back() + 8 + payload.size());
  }
  return boundaries;
}

std::vector<uint8_t> FileBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(fault::ReadFileBytes(path, &bytes).ok());
  return bytes;
}

// ---------- FrameJournal basics ----------

TEST(FrameJournalTest, RoundTripsFramesInAppendOrder) {
  const std::string path = TempPath("frame_roundtrip.wal");
  WriteFrames(path, 6);

  journal::FrameRecovery recovery;
  auto reopened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(recovery.tail_dropped);
  ASSERT_EQ(recovery.frames.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(recovery.frames[i], MakePayload(i)) << "frame " << i;
  }
  EXPECT_EQ(reopened.value().frame_count(), 6u);
}

TEST(FrameJournalTest, CreatesEmptyJournalWithHeaderOnly) {
  const std::string path = TempPath("frame_fresh.wal");
  journal::FrameRecovery recovery;
  auto opened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(recovery.frames.empty());
  EXPECT_FALSE(recovery.tail_dropped);
  EXPECT_EQ(fs::file_size(path), kHeaderBytes);
}

TEST(FrameJournalTest, RejectsWrongMagic) {
  const std::string path = TempPath("frame_magic.wal");
  WriteFrames(path, 2);
  constexpr char kOtherMagic[4] = {'N', 'O', 'P', 'E'};
  auto opened = journal::FrameJournal::Open(path, kOtherMagic);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameJournalTest, RejectsFutureFormatVersion) {
  const std::string path = TempPath("frame_version.wal");
  WriteFrames(path, 1);
  // Bump the version field (offset 4) and re-stamp the header CRC so
  // only the version check can object.
  std::vector<uint8_t> bytes = FileBytes(path);
  bytes[4] = 0x7F;
  const uint32_t crc = artifact::Crc32(bytes.data(), 8);
  for (int i = 0; i < 4; ++i) {
    bytes[8 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  ASSERT_TRUE(fault::WriteFileBytes(path, bytes).ok());
  auto opened = journal::FrameJournal::Open(path, kTestMagic);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FrameJournalTest, RejectsOversizedFrame) {
  const std::string path = TempPath("frame_oversize.wal");
  journal::FrameJournalOptions options;
  options.max_frame_bytes = 16;
  auto opened = journal::FrameJournal::Open(path, kTestMagic,
                                            /*recovery=*/nullptr, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  journal::FrameJournal journal = std::move(opened).value();
  EXPECT_TRUE(journal.Append(std::vector<uint8_t>(16, 1)).ok());
  const Status too_big = journal.Append(std::vector<uint8_t>(17, 1));
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(journal.frame_count(), 1u);
}

TEST(FrameJournalTest, RewriteReplacesContentAtomically) {
  const std::string path = TempPath("frame_rewrite.wal");
  WriteFrames(path, 5);
  const std::vector<std::vector<uint8_t>> kept = {MakePayload(9)};
  ASSERT_TRUE(journal::FrameJournal::Rewrite(path, kTestMagic, kept).ok());

  journal::FrameRecovery recovery;
  auto reopened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.frames.size(), 1u);
  EXPECT_EQ(recovery.frames[0], MakePayload(9));
  EXPECT_FALSE(recovery.tail_dropped);
}

// ---------- Fuzz family 1: truncate at every byte prefix ----------

// Every byte length the file can have after a crash mid-append. The
// contract: below the header it is not a journal (error); at or past
// the header, recovery yields exactly the frames wholly contained in
// the prefix, reports a torn tail iff the cut is not on a frame
// boundary, persists the truncation, and leaves the journal appendable.
TEST(FrameJournalFuzzTest, TruncateAtEveryPrefixRecoversCleanPrefix) {
  const std::string master = TempPath("frame_trunc_master.wal");
  const size_t kFrames = 6;
  const std::vector<size_t> boundaries = WriteFrames(master, kFrames);
  const std::vector<uint8_t> original = FileBytes(master);
  ASSERT_EQ(original.size(), boundaries.back());

  const std::string path = TempPath("frame_trunc.wal");
  for (size_t cut = 0; cut <= original.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::vector<uint8_t> prefix(original.begin(),
                                      original.begin() + cut);
    ASSERT_TRUE(fault::WriteFileBytes(path, prefix).ok());

    journal::FrameRecovery recovery;
    auto opened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
    if (cut < kHeaderBytes) {
      ASSERT_FALSE(opened.ok());
      EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();

    // The longest frame prefix wholly inside the cut.
    size_t intact = 0;
    while (intact < kFrames && boundaries[intact + 1] <= cut) ++intact;
    ASSERT_EQ(recovery.frames.size(), intact);
    for (size_t i = 0; i < intact; ++i) {
      EXPECT_EQ(recovery.frames[i], MakePayload(i));
    }
    const bool on_boundary = cut == boundaries[intact];
    EXPECT_EQ(recovery.tail_dropped, !on_boundary);
    EXPECT_EQ(recovery.dropped_bytes, cut - boundaries[intact]);
    // The torn bytes are gone from disk, not merely ignored.
    EXPECT_EQ(fs::file_size(path), boundaries[intact]);

    // The recovered journal accepts appends at the truncated tail.
    journal::FrameJournal journal = std::move(opened).value();
    const std::vector<uint8_t> resumed = MakePayload(100);
    ASSERT_TRUE(journal.Append(resumed).ok());
    journal.Close();

    journal::FrameRecovery after;
    auto reread = journal::FrameJournal::Open(path, kTestMagic, &after);
    ASSERT_TRUE(reread.ok()) << reread.status().ToString();
    ASSERT_EQ(after.frames.size(), intact + 1);
    EXPECT_EQ(after.frames.back(), resumed);
    EXPECT_FALSE(after.tail_dropped);
  }
}

// ---------- Fuzz family 2: flip every byte ----------

// A flipped byte anywhere must never surface corrupt data: recovery
// either fails (header damage, mid-file damage) or returns a bit-exact
// strict prefix of the original frames with the drop reported.
TEST(FrameJournalFuzzTest, FlipEveryByteNeverYieldsCorruptFrames) {
  const std::string master = TempPath("frame_flip_master.wal");
  const size_t kFrames = 6;
  WriteFrames(master, kFrames);
  const std::vector<uint8_t> original = FileBytes(master);

  const std::string path = TempPath("frame_flip.wal");
  for (size_t offset = 0; offset < original.size(); ++offset) {
    SCOPED_TRACE("offset=" + std::to_string(offset));
    std::vector<uint8_t> mutated = original;
    mutated[offset] ^= 0xFF;
    ASSERT_TRUE(fault::WriteFileBytes(path, mutated).ok());

    journal::FrameRecovery recovery;
    auto opened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
    if (offset < kHeaderBytes) {
      // Header damage is always fatal (magic or header CRC).
      ASSERT_FALSE(opened.ok());
      continue;
    }
    if (!opened.ok()) {
      // Mid-file damage detected: the only acceptable refusal.
      EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    // Accepted: the flip fell in (or re-delimited into) the tail. The
    // recovered frames must be an untouched strict prefix.
    ASSERT_LT(recovery.frames.size(), kFrames);
    EXPECT_TRUE(recovery.tail_dropped);
    for (size_t i = 0; i < recovery.frames.size(); ++i) {
      EXPECT_EQ(recovery.frames[i], MakePayload(i)) << "frame " << i;
    }
  }
}

// ---------- Line-journal call site: the sweep checkpoint ----------

SweepCellRecord MakeCell(size_t i) {
  SweepCellRecord record;
  record.key = {"method" + std::to_string(i % 2), "A -> B",
                "clf" + std::to_string(i)};
  record.seed = 1000 + i;
  record.quality.precision = 1.0 / (3.0 + i);
  record.quality.recall = 0.5 + 0.01 * i;
  record.quality.f1 = 1.0 / (7.0 + i);
  record.quality.f_star = 0.25;
  record.runtime_seconds = 0.001 * (i + 1);
  return record;
}

std::string WriteCheckpoint(const std::string& name, size_t n) {
  const std::string path = TempPath(name);
  auto opened = SweepCheckpoint::Open(path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  SweepCheckpoint checkpoint = std::move(opened).value();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(checkpoint.Record(MakeCell(i)).ok());
  }
  return path;
}

// The same every-prefix sweep against the line-journal call site: a
// truncation can only damage the trailing line, so Open must succeed at
// EVERY cut, recover exactly the newline-terminated records, and report
// the partial trailing line as a dropped tail.
TEST(SweepCheckpointFuzzTest, TruncateAtEveryPrefixRecoversCleanPrefix) {
  const size_t kCells = 4;
  const std::string master =
      WriteCheckpoint("sweep_trunc_master.jsonl", kCells);
  const std::vector<uint8_t> original = FileBytes(master);
  ASSERT_FALSE(original.empty());

  std::vector<size_t> newlines;
  for (size_t i = 0; i < original.size(); ++i) {
    if (original[i] == '\n') newlines.push_back(i);
  }
  ASSERT_EQ(newlines.size(), kCells);

  const std::string path = TempPath("sweep_trunc.jsonl");
  for (size_t cut = 0; cut <= original.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::vector<uint8_t> prefix(original.begin(),
                                      original.begin() + cut);
    ASSERT_TRUE(fault::WriteFileBytes(path, prefix).ok());

    // A line survives once its full content is inside the prefix — the
    // trailing newline itself is optional (getline still yields the
    // complete final line). The tail is partial only when the cut lands
    // strictly inside a line's content.
    size_t complete = 0;
    bool partial_tail = cut > 0;
    for (size_t nl : newlines) {
      if (nl <= cut) ++complete;
      if (cut == nl || cut == nl + 1) partial_tail = false;
    }

    RunDiagnostics diagnostics;
    auto opened = SweepCheckpoint::Open(path, &diagnostics);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const SweepCheckpoint& checkpoint = opened.value();
    ASSERT_EQ(checkpoint.size(), complete);
    for (size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(EncodeSweepCellRecord(checkpoint.records()[i]),
                EncodeSweepCellRecord(MakeCell(i)));
    }
    EXPECT_EQ(
        diagnostics.CountKind(DegradationKind::kCheckpointTailDropped),
        partial_tail ? 1u : 0u);
    if (partial_tail) {
      // The drop was persisted: a second Open sees a clean journal.
      RunDiagnostics again;
      auto reopened = SweepCheckpoint::Open(path, &again);
      ASSERT_TRUE(reopened.ok());
      EXPECT_EQ(reopened.value().size(), complete);
      EXPECT_EQ(
          again.CountKind(DegradationKind::kCheckpointTailDropped), 0u);
    }
  }
}

// Structural damage before the tail must refuse, not silently drop
// completed work — the policy RecoverJournalLines enforces for every
// line-journal client.
TEST(SweepCheckpointFuzzTest, MidFileCorruptionFailsInsteadOfDropping) {
  const std::string path = WriteCheckpoint("sweep_midfile.jsonl", 4);
  ASSERT_TRUE(fault::FlipFileByte(path, 0).ok());  // first line's '{'
  auto opened = SweepCheckpoint::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SweepCheckpointFuzzTest, FlipEveryByteNeverCrashesOrOverReads) {
  const size_t kCells = 3;
  const std::string master =
      WriteCheckpoint("sweep_flip_master.jsonl", kCells);
  const std::vector<uint8_t> original = FileBytes(master);

  const std::string path = TempPath("sweep_flip.jsonl");
  for (size_t offset = 0; offset < original.size(); ++offset) {
    SCOPED_TRACE("offset=" + std::to_string(offset));
    std::vector<uint8_t> mutated = original;
    mutated[offset] ^= 0xFF;
    ASSERT_TRUE(fault::WriteFileBytes(path, mutated).ok());

    RunDiagnostics diagnostics;
    auto opened = SweepCheckpoint::Open(path, &diagnostics);
    if (!opened.ok()) {
      // Only the mid-file refusal is acceptable as a failure.
      EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    // JSON lines carry no CRC, so a flip inside a string value can
    // survive as a (changed) valid record — but recovery must never
    // invent records or mis-handle the tail.
    EXPECT_LE(opened.value().size(), kCells);
  }
}

// ---------- SegmentedJournal: rotation, manifest, retention ----------

/// Opens the test segmented journal in `dir` with a tiny rotation
/// threshold so a handful of MakePayload frames spans several segments.
journal::SegmentedJournalOptions SmallSegments(size_t max_bytes = 64) {
  journal::SegmentedJournalOptions options;
  options.max_segment_bytes = max_bytes;
  return options;
}

TEST(SegmentedJournalTest, RotatesAtSizeCapAndRecoversAcrossSegments) {
  const std::string dir = TempDirPath("seg_rotate");
  const size_t kFrames = 10;
  {
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  nullptr, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::SegmentedJournal journal = std::move(opened).value();
    for (size_t i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(journal.Append(MakePayload(i)).ok());
    }
    EXPECT_GT(journal.segment_count(), 2u);
    // total_bytes tracks every live segment, not just the active one.
    size_t on_disk = 0;
    for (uint64_t id = journal.first_segment_id();
         id <= journal.active_segment_id(); ++id) {
      on_disk += fs::file_size(journal.SegmentPath(id));
    }
    EXPECT_EQ(journal.total_bytes(), on_disk);
  }
  journal::SegmentedRecovery recovery;
  auto reopened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  &recovery, SmallSegments());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(recovery.tail_dropped);
  std::vector<std::vector<uint8_t>> flat;
  for (const journal::SegmentRecovery& segment : recovery.segments) {
    for (const auto& frame : segment.frames) flat.push_back(frame);
  }
  ASSERT_EQ(flat.size(), kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(flat[i], MakePayload(i)) << "frame " << i;
  }
}

TEST(SegmentedJournalTest, DropSegmentsBeforeUnlinksCoveredFiles) {
  const std::string dir = TempDirPath("seg_retention");
  auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                nullptr, SmallSegments());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  journal::SegmentedJournal journal = std::move(opened).value();
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(journal.Append(MakePayload(i)).ok());
  }
  const uint64_t active = journal.active_segment_id();
  ASSERT_GT(active, 2u);

  auto dropped = journal.DropSegmentsBefore(active);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped.value(), static_cast<size_t>(active - 1));
  EXPECT_EQ(journal.first_segment_id(), active);
  EXPECT_EQ(journal.segment_count(), 1u);
  for (uint64_t id = 1; id < active; ++id) {
    EXPECT_FALSE(fs::exists(journal.SegmentPath(id))) << "segment " << id;
  }
  // The active segment is never dropped, even when asked.
  auto again = journal.DropSegmentsBefore(active + 100);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
  EXPECT_TRUE(fs::exists(journal.SegmentPath(active)));
  journal.Close();

  // Recovery sees only what retention kept.
  journal::SegmentedRecovery recovery;
  auto reopened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  &recovery, SmallSegments());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.segments.size(), 1u);
  EXPECT_EQ(recovery.segments[0].id, active);
}

// Torn tail on the LAST segment: the one crash window the append
// protocol allows. Truncate the active segment at every byte prefix;
// recovery must truncate, report, and resume — exactly the FrameJournal
// contract, lifted through the chain.
TEST(SegmentedJournalTest, TornTailOnLastSegmentTruncatesAndResumes) {
  const std::string dir = TempDirPath("seg_torn_last");
  {
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  nullptr, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::SegmentedJournal journal = std::move(opened).value();
    for (size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(journal.Append(MakePayload(i)).ok());
    }
    ASSERT_GT(journal.segment_count(), 1u);
  }
  // Identify the active segment and count the frames before it.
  journal::SegmentedRecovery before;
  std::string last_path;
  {
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  &before, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    last_path = opened.value().SegmentPath(opened.value().active_segment_id());
  }
  ASSERT_TRUE(fs::exists(last_path));
  const std::vector<uint8_t> original = FileBytes(last_path);
  size_t sealed_frames = 0;
  for (size_t i = 0; i + 1 < before.segments.size(); ++i) {
    sealed_frames += before.segments[i].frames.size();
  }

  for (size_t cut = kHeaderBytes; cut < original.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::vector<uint8_t> prefix(original.begin(),
                                      original.begin() + cut);
    ASSERT_TRUE(fault::WriteFileBytes(last_path, prefix).ok());

    journal::SegmentedRecovery recovery;
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  &recovery, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    // Sealed segments are untouched; only the tail shrinks.
    size_t flat = 0;
    for (const auto& segment : recovery.segments) {
      flat += segment.frames.size();
    }
    EXPECT_GE(flat, sealed_frames);
    EXPECT_LE(flat, sealed_frames + before.segments.back().frames.size());
  }
  // Restore for other assertions' sake.
  ASSERT_TRUE(fault::WriteFileBytes(last_path, original).ok());
}

// Damage to a SEALED segment is mid-chain damage: entries after it
// exist in later segments, so silently dropping it would lose
// acknowledged data. Recovery must refuse.
TEST(SegmentedJournalTest, TornSealedSegmentFailsInsteadOfDropping) {
  const std::string dir = TempDirPath("seg_torn_sealed");
  {
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  nullptr, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::SegmentedJournal journal = std::move(opened).value();
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(journal.Append(MakePayload(i)).ok());
    }
    ASSERT_GT(journal.segment_count(), 1u);
  }
  const std::string first_segment = dir + "/seg.000001.wal";
  ASSERT_TRUE(fs::exists(first_segment));
  // Chop the sealed segment's last 3 bytes — a "torn tail" shape that
  // would be recoverable on the last segment, but not mid-chain.
  ASSERT_TRUE(
      fault::TruncateFile(first_segment, fs::file_size(first_segment) - 3)
          .ok());
  auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                nullptr, SmallSegments());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);

  // A missing sealed segment is the same refusal.
  ASSERT_TRUE(fs::remove(first_segment));
  auto missing = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                 nullptr, SmallSegments());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SegmentedJournalTest, SegmentsWithoutManifestAreRefused) {
  const std::string dir = TempDirPath("seg_no_manifest");
  {
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  nullptr, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::SegmentedJournal journal = std::move(opened).value();
    ASSERT_TRUE(journal.Append(MakePayload(0)).ok());
  }
  ASSERT_TRUE(fs::remove(dir + "/seg.manifest"));
  auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                nullptr, SmallSegments());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

// A crash between temp write and rename (manifest publish, segment
// creation) leaves a stale `.tmp` behind. Recovery must ignore its
// content entirely and delete it, and the next atomic publish must not
// be confused by it.
TEST(SegmentedJournalTest, StaleTempFilesAreIgnoredAndRemoved) {
  const std::string dir = TempDirPath("seg_stale_tmp");
  {
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  nullptr, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::SegmentedJournal journal = std::move(opened).value();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(journal.Append(MakePayload(i)).ok());
    }
  }
  // Plant torn temp files a crash could have left at both publish
  // sites: the manifest and a segment creation.
  const std::vector<uint8_t> garbage = {0x00, 0x01, 0x02};
  ASSERT_TRUE(
      fault::WriteFileBytes(dir + "/seg.manifest.tmp", garbage).ok());
  ASSERT_TRUE(
      fault::WriteFileBytes(dir + "/seg.000099.wal.tmp", garbage).ok());

  journal::SegmentedRecovery recovery;
  auto reopened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  &recovery, SmallSegments());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE(recovery.orphans_removed, 2u);
  EXPECT_FALSE(fs::exists(dir + "/seg.manifest.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/seg.000099.wal.tmp"));
  size_t flat = 0;
  for (const auto& segment : recovery.segments) {
    flat += segment.frames.size();
  }
  EXPECT_EQ(flat, 4u);
}

// The same stale-temp discipline for a single-file FrameJournal: Open
// must not read the `.tmp`, and Rewrite (temp + rename) must leave no
// temp behind — the stale one is overwritten and consumed.
TEST(FrameJournalTest, RewriteCleansUpStaleTempFile) {
  const std::string path = TempPath("frame_stale_tmp.wal");
  WriteFrames(path, 3);
  const std::vector<uint8_t> garbage = {0xBA, 0xD1, 0xDE, 0xA5};
  ASSERT_TRUE(fault::WriteFileBytes(path + ".tmp", garbage).ok());

  journal::FrameRecovery recovery;
  auto opened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(recovery.frames.size(), 3u);  // the .tmp played no part
  opened.value().Close();

  ASSERT_TRUE(
      journal::FrameJournal::Rewrite(path, kTestMagic, {MakePayload(7)})
          .ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  journal::FrameRecovery after;
  auto reread = journal::FrameJournal::Open(path, kTestMagic, &after);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(after.frames.size(), 1u);
  EXPECT_EQ(after.frames[0], MakePayload(7));
}

TEST(SegmentedJournalTest, RotationOrphanPastManifestIsDeleted) {
  const std::string dir = TempDirPath("seg_orphan");
  {
    auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  nullptr, SmallSegments());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::SegmentedJournal journal = std::move(opened).value();
    ASSERT_TRUE(journal.Append(MakePayload(0)).ok());
    const uint64_t active = journal.active_segment_id();
    journal.Close();
    // Simulate the rotation crash window: the next segment's file was
    // created but the manifest never published it.
    auto orphan = journal::FrameJournal::Open(
        journal.SegmentPath(active + 1), kTestMagic);
    ASSERT_TRUE(orphan.ok());
  }
  journal::SegmentedRecovery recovery;
  auto reopened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  &recovery, SmallSegments());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE(recovery.orphans_removed, 1u);
  EXPECT_FALSE(fs::exists(dir + "/seg.000002.wal"));
  EXPECT_EQ(reopened.value().active_segment_id(), 1u);
}

// ---------- Binary call site: the ingest WAL ----------

stream::IngestEntry MakeEntry(uint64_t sequence) {
  stream::IngestEntry entry;
  entry.sequence = sequence;
  entry.record.id = "r" + std::to_string(sequence);
  entry.record.entity_id = static_cast<int64_t>(sequence / 2);
  entry.record.values = {"title " + std::to_string(sequence), "author",
                         "venue", "1999"};
  return entry;
}

stream::IngestJournalOptions IngestOptions(const std::string& dir,
                                           size_t max_segment_bytes = 96) {
  stream::IngestJournalOptions options;
  options.directory = dir;
  options.max_segment_bytes = max_segment_bytes;
  options.sleep = [](double) {};  // tests never wait out a backoff
  return options;
}

TEST(IngestJournalTest, RoundTripsEntriesAcrossSegmentsAndRetains) {
  const std::string dir = TempDirPath("ingest_roundtrip");
  {
    stream::IngestJournalRecovery recovery;
    auto opened = stream::IngestJournal::Open(IngestOptions(dir), &recovery);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    stream::IngestJournal journal = std::move(opened).value();
    EXPECT_TRUE(recovery.entries.empty());
    for (uint64_t s = 1; s <= 8; ++s) {
      ASSERT_TRUE(journal.Append(MakeEntry(s)).ok());
    }
    EXPECT_GT(journal.segment_count(), 1u);
  }
  stream::IngestJournalRecovery recovery;
  auto reopened = stream::IngestJournal::Open(IngestOptions(dir), &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.entries.size(), 8u);
  for (uint64_t s = 1; s <= 8; ++s) {
    EXPECT_EQ(recovery.entries[s - 1].sequence, s);
    EXPECT_EQ(recovery.entries[s - 1].record.id, MakeEntry(s).record.id);
    EXPECT_EQ(recovery.entries[s - 1].record.values,
              MakeEntry(s).record.values);
  }

  // Retention after a snapshot covering everything: whole segments go,
  // nothing is rewritten, and the journal keeps accepting appends.
  stream::IngestJournal journal = std::move(reopened).value();
  const size_t segments_before = journal.segment_count();
  auto dropped = journal.RetainCoveredBy(8);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_GE(dropped.value(), segments_before - 1);
  EXPECT_EQ(journal.segment_count(), 1u);
  ASSERT_TRUE(journal.Append(MakeEntry(9)).ok());

  stream::IngestJournalRecovery after;
  auto last = stream::IngestJournal::Open(IngestOptions(dir), &after);
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  ASSERT_EQ(after.entries.size(), 1u);
  EXPECT_EQ(after.entries[0].sequence, 9u);
}

TEST(IngestJournalTest, RetainKeepsSegmentsWithUncoveredEntries) {
  const std::string dir = TempDirPath("ingest_partial_retain");
  {
    stream::IngestJournalRecovery recovery;
    auto opened = stream::IngestJournal::Open(IngestOptions(dir), &recovery);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    stream::IngestJournal journal = std::move(opened).value();
    for (uint64_t s = 1; s <= 12; ++s) {
      ASSERT_TRUE(journal.Append(MakeEntry(s)).ok());
    }
    ASSERT_GT(journal.segment_count(), 2u);

    // A snapshot at 5 may only drop segments whose entries are ALL <= 5.
    auto dropped = journal.RetainCoveredBy(5);
    ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  }

  stream::IngestJournalRecovery after;
  auto reopened = stream::IngestJournal::Open(IngestOptions(dir), &after);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_FALSE(after.entries.empty());
  // Every entry past the snapshot survived; nothing uncovered was lost.
  uint64_t next_required = 6;
  for (const stream::IngestEntry& entry : after.entries) {
    if (entry.sequence >= 6) {
      EXPECT_EQ(entry.sequence, next_required);
      ++next_required;
    }
  }
  EXPECT_EQ(next_required, 13u);
}

TEST(IngestJournalTest, RejectsUndecodablePayloadEvenWithValidCrc) {
  const std::string dir = TempDirPath("ingest_garbage");
  {
    stream::IngestJournalRecovery recovery;
    auto created =
        stream::IngestJournal::Open(IngestOptions(dir), &recovery);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }
  {
    auto opened = journal::FrameJournal::Open(dir + "/ingest.000001.wal",
                                              stream::kIngestJournalMagic);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::FrameJournal raw = std::move(opened).value();
    const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
    ASSERT_TRUE(raw.Append(garbage).ok());  // frame CRC is valid
  }
  stream::IngestJournalRecovery recovery;
  auto opened = stream::IngestJournal::Open(IngestOptions(dir), &recovery);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IngestJournalTest, RejectsNonIncreasingSequences) {
  const std::string dir = TempDirPath("ingest_sequence");
  {
    stream::IngestJournalRecovery recovery;
    auto created =
        stream::IngestJournal::Open(IngestOptions(dir), &recovery);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }
  {
    auto opened = journal::FrameJournal::Open(dir + "/ingest.000001.wal",
                                              stream::kIngestJournalMagic);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    journal::FrameJournal raw = std::move(opened).value();
    ASSERT_TRUE(raw.Append(stream::EncodeIngestEntry(MakeEntry(3))).ok());
    ASSERT_TRUE(raw.Append(stream::EncodeIngestEntry(MakeEntry(3))).ok());
  }
  stream::IngestJournalRecovery recovery;
  auto opened = stream::IngestJournal::Open(IngestOptions(dir), &recovery);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

// Every-prefix truncation of the ACTIVE segment through the full
// IngestJournal stack: the recovered entries must be a clean sequence
// prefix and the journal must keep accepting appends at the tail.
TEST(IngestJournalFuzzTest, TruncateAtEveryPrefixRecoversSequencePrefix) {
  const std::string master = TempDirPath("ingest_trunc");
  const size_t kEntries = 5;
  {
    auto opened = stream::IngestJournal::Open(IngestOptions(master), nullptr);
    // Open requires the recovery out-param; use the documented call.
    ASSERT_FALSE(opened.ok());
  }
  {
    stream::IngestJournalRecovery recovery;
    // One big segment so every entry lives in the active (truncatable)
    // segment — the sealed-segment case is the refusal test above.
    auto opened = stream::IngestJournal::Open(
        IngestOptions(master, /*max_segment_bytes=*/1 << 20), &recovery);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    stream::IngestJournal journal = std::move(opened).value();
    for (uint64_t s = 1; s <= kEntries; ++s) {
      ASSERT_TRUE(journal.Append(MakeEntry(s)).ok());
    }
  }
  const std::string segment = master + "/ingest.000001.wal";
  const std::vector<uint8_t> original = FileBytes(segment);

  for (size_t cut = kHeaderBytes; cut <= original.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::vector<uint8_t> prefix(original.begin(),
                                      original.begin() + cut);
    ASSERT_TRUE(fault::WriteFileBytes(segment, prefix).ok());

    stream::IngestJournalRecovery recovery;
    auto opened = stream::IngestJournal::Open(
        IngestOptions(master, /*max_segment_bytes=*/1 << 20), &recovery);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    for (size_t i = 0; i < recovery.entries.size(); ++i) {
      EXPECT_EQ(recovery.entries[i].sequence, i + 1);
      EXPECT_EQ(recovery.entries[i].record.values,
                MakeEntry(i + 1).record.values);
    }
    // Resume exactly where the recovered prefix stops.
    stream::IngestJournal journal = std::move(opened).value();
    const uint64_t next = recovery.entries.size() + 1;
    ASSERT_TRUE(journal.Append(MakeEntry(next)).ok());
  }
}

// ---------- fsync faults: durability failures surface as errors ----------

TEST(JournalFsyncFaultTest, AppendSurfacesFsyncFailureAndStaysUsable) {
  const std::string path = TempPath("fsync_append.wal");
  auto opened = journal::FrameJournal::Open(path, kTestMagic);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  journal::FrameJournal journal = std::move(opened).value();
  ASSERT_TRUE(journal.Append(MakePayload(0)).ok());

  {
    fault::ScopedFsyncFault fault;
    const Status failed = journal.Append(MakePayload(1));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_GE(fault.injected_failures(), 1u);
    // The failed frame was not acknowledged and is not on disk.
    EXPECT_EQ(journal.frame_count(), 1u);
  }

  // The disk recovered; the same journal object keeps working.
  ASSERT_TRUE(journal.Append(MakePayload(2)).ok());
  journal.Close();

  journal::FrameRecovery recovery;
  auto reopened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.frames.size(), 2u);
  EXPECT_EQ(recovery.frames[0], MakePayload(0));
  EXPECT_EQ(recovery.frames[1], MakePayload(2));
  EXPECT_FALSE(recovery.tail_dropped);
}

TEST(JournalFsyncFaultTest, ArtifactWriteSurfacesFsyncFailure) {
  const std::string path = TempPath("fsync_artifact.tera");
  artifact::Header header;
  header.kind = "fsync_probe";
  artifact::Section section;
  section.name = "payload";
  section.payload = MakePayload(3);

  {
    fault::ScopedFsyncFault fault;
    const Status failed = artifact::WriteArtifact(path, header, {section});
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_GE(fault.injected_failures(), 1u);
  }
  // Nothing was published: no artifact, no leftover temp file.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // And the identical write succeeds once fsync works again.
  ASSERT_TRUE(artifact::WriteArtifact(path, header, {section}).ok());
  auto read = artifact::ReadArtifact(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().header.kind, "fsync_probe");
}

// ---------- disk-full faults: ENOSPC surfaces, prefixes stay clean ----------

TEST(DiskFullFaultTest, JournalAppendSurfacesEnospcWithRecoverablePrefix) {
  const std::string path = TempPath("enospc_append.wal");
  auto opened = journal::FrameJournal::Open(path, kTestMagic);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  journal::FrameJournal journal = std::move(opened).value();
  ASSERT_TRUE(journal.Append(MakePayload(0)).ok());

  {
    // Allow a few bytes so the failure lands mid-frame: a partial write
    // followed by ENOSPC, the worst case for prefix cleanliness.
    fault::ScopedDiskFullFault fault(/*bytes_before_enospc=*/3);
    const Status failed = journal.Append(MakePayload(1));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_GE(fault.injected_failures(), 1u);
    EXPECT_EQ(journal.frame_count(), 1u);  // the failed frame is gone

    // Space frees up; the same descriptor keeps working.
    fault.Refill(1u << 20);
    ASSERT_TRUE(journal.Append(MakePayload(2)).ok());
  }
  journal.Close();

  journal::FrameRecovery recovery;
  auto reopened = journal::FrameJournal::Open(path, kTestMagic, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.frames.size(), 2u);
  EXPECT_EQ(recovery.frames[0], MakePayload(0));
  EXPECT_EQ(recovery.frames[1], MakePayload(2));
  EXPECT_FALSE(recovery.tail_dropped);
}

TEST(DiskFullFaultTest, ArtifactWriteSurfacesEnospcWithoutPublishing) {
  const std::string path = TempPath("enospc_artifact.tera");
  artifact::Header header;
  header.kind = "enospc_probe";
  artifact::Section section;
  section.name = "payload";
  section.payload = MakePayload(4);

  {
    fault::ScopedDiskFullFault fault(/*bytes_before_enospc=*/8);
    const Status failed = artifact::WriteArtifact(path, header, {section});
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_GE(fault.injected_failures(), 1u);
  }
  // The atomic-publish contract holds under ENOSPC exactly as under
  // fsync failure: no artifact, no leftover temp file.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  ASSERT_TRUE(artifact::WriteArtifact(path, header, {section}).ok());
  auto read = artifact::ReadArtifact(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().header.kind, "enospc_probe");
}

// A failed append quarantines the active segment: the next append goes
// to a fresh segment file rather than reusing a descriptor that just
// saw an I/O error.
TEST(DiskFullFaultTest, SegmentedAppendQuarantinesAndRotatesOnRetry) {
  const std::string dir = TempDirPath("enospc_quarantine");
  auto opened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                nullptr, SmallSegments(1024));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  journal::SegmentedJournal journal = std::move(opened).value();
  ASSERT_TRUE(journal.Append(MakePayload(0)).ok());
  const uint64_t before = journal.active_segment_id();

  {
    fault::ScopedDiskFullFault fault(/*bytes_before_enospc=*/0);
    const Status failed = journal.Append(MakePayload(1));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_EQ(journal.active_segment_id(), before);  // no rotate mid-failure
  }

  // Space is back; the retry lands on a fresh segment.
  ASSERT_TRUE(journal.Append(MakePayload(1)).ok());
  EXPECT_EQ(journal.active_segment_id(), before + 1);
  journal.Close();

  journal::SegmentedRecovery recovery;
  auto reopened = journal::SegmentedJournal::Open(dir, "seg", kTestMagic,
                                                  &recovery, SmallSegments(1024));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<std::vector<uint8_t>> flat;
  for (const auto& segment : recovery.segments) {
    for (const auto& frame : segment.frames) flat.push_back(frame);
  }
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat[0], MakePayload(0));
  EXPECT_EQ(flat[1], MakePayload(1));
}

// The full ingest append path rides RetryWithBackoff over a transient
// ENOSPC: the backoff sleep models the operator freeing space, and the
// entry is acknowledged only once it is durable on a fresh segment.
TEST(DiskFullFaultTest, IngestAppendRecoversViaRetryWhenSpaceFrees) {
  const std::string dir = TempDirPath("enospc_ingest_retry");
  stream::IngestJournalOptions options = IngestOptions(dir);
  fault::ScopedDiskFullFault* active_fault = nullptr;
  options.sleep = [&](double) {
    if (active_fault != nullptr) active_fault->Refill(1u << 20);
  };

  stream::IngestJournalRecovery recovery;
  auto opened = stream::IngestJournal::Open(options, &recovery);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  stream::IngestJournal journal = std::move(opened).value();
  ASSERT_TRUE(journal.Append(MakeEntry(1)).ok());

  RunDiagnostics diagnostics;
  {
    fault::ScopedDiskFullFault fault(/*bytes_before_enospc=*/0);
    active_fault = &fault;
    ASSERT_TRUE(journal.Append(MakeEntry(2), &diagnostics).ok());
    active_fault = nullptr;
    EXPECT_GE(fault.injected_failures(), 1u);
  }

  stream::IngestJournalRecovery after;
  auto reopened = stream::IngestJournal::Open(IngestOptions(dir), &after);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(after.entries.size(), 2u);
  EXPECT_EQ(after.entries[0].sequence, 1u);
  EXPECT_EQ(after.entries[1].sequence, 2u);
}

}  // namespace
}  // namespace transer

#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace transer {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string buf = Trim(text);
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string buf = Trim(text);
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace transer

#include "transfer/coral.h"

#include "linalg/covariance.h"
#include "linalg/eigen.h"

namespace transer {

Result<Matrix> CoralTransfer::AlignSource(const Matrix& x_source,
                                          const Matrix& x_target) const {
  Matrix cov_s = SampleCovariance(x_source);
  Matrix cov_t = SampleCovariance(x_target);
  cov_s.AddDiagonal(options_.regularization);
  cov_t.AddDiagonal(options_.regularization);

  auto whitener = SymmetricMatrixPower(cov_s, -0.5);
  if (!whitener.ok()) return whitener.status();
  auto recolor = SymmetricMatrixPower(cov_t, 0.5);
  if (!recolor.ok()) return recolor.status();

  // Xs * Cs^{-1/2} * Ct^{1/2}.
  return x_source.Multiply(whitener.value()).Multiply(recolor.value());
}

Result<std::vector<int>> CoralTransfer::Run(
    const FeatureMatrix& source, const FeatureMatrix& target,
    const ClassifierFactory& make_classifier,
    const TransferRunOptions& run_options) const {
  if (source.num_features() != target.num_features()) {
    return Status::InvalidArgument(
        "source and target feature spaces differ");
  }
  // The m x m eigen-problems are negligible; the domain copies and the
  // classifier fit still observe the shared budget.
  std::optional<ExecutionContext> local_context;
  const ExecutionContext& context =
      ResolveExecutionContext(run_options, &local_context);
  TRANSER_RETURN_IF_ERROR(context.Check("coral", run_options.diagnostics));
  ScopedReservation working_set;
  TRANSER_RETURN_IF_ERROR(working_set.Acquire(
      context, "coral",
      transfer_internal::DomainWorkingSetBytes(source, target),
      run_options.diagnostics));

  const Matrix x_target = target.ToMatrix();
  auto aligned = AlignSource(source.ToMatrix(), x_target);
  if (!aligned.ok()) return aligned.status();
  TRANSER_RETURN_IF_ERROR(context.Check("coral", run_options.diagnostics));

  auto classifier = make_classifier();
  classifier->set_execution_context(&context);
  classifier->Fit(aligned.value(),
                  transfer_internal::RequireLabels(source));
  TRANSER_RETURN_IF_ERROR(context.Check("coral", run_options.diagnostics));
  return classifier->PredictAll(x_target);
}

}  // namespace transer

#include "util/parallel.h"

#include <algorithm>
#include <atomic>

namespace transer {

namespace {

/// Process-wide default parallelism; 0 means "hardware width, resolved
/// lazily" so SetDefaultThreadCount(0) and the untouched initial state
/// behave identically.
std::atomic<int> g_default_threads{0};

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Depth of ParallelFor lanes on this thread; > 0 while executing a
/// chunk body (on pool workers and the calling thread alike).
thread_local int tls_region_depth = 0;

class ScopedRegionMark {
 public:
  ScopedRegionMark() { ++tls_region_depth; }
  ~ScopedRegionMark() { --tls_region_depth; }
  ScopedRegionMark(const ScopedRegionMark&) = delete;
  ScopedRegionMark& operator=(const ScopedRegionMark&) = delete;
};

}  // namespace

int DefaultThreadCount() {
  const int configured = g_default_threads.load(std::memory_order_relaxed);
  return configured > 0 ? configured : HardwareThreads();
}

void SetDefaultThreadCount(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

bool InParallelRegion() { return tls_region_depth > 0; }

int EffectiveThreadCount(int requested) {
  if (InParallelRegion()) return 1;
  const int resolved = requested > 0 ? requested : DefaultThreadCount();
  return std::max(1, std::min(resolved, ThreadPool::kMaxWorkers + 1));
}

ChunkPlan PlanChunks(size_t n, size_t min_items_per_chunk) {
  ChunkPlan plan;
  plan.items = n;
  if (n == 0) return plan;
  const size_t min_chunk = std::max<size_t>(1, min_items_per_chunk);
  // ceil(n / kMaxChunksPerRegion), floored at the caller's grain. A pure
  // function of (n, min_chunk): thread count never moves a boundary.
  plan.chunk_size = std::max(min_chunk, (n + kMaxChunksPerRegion - 1) /
                                            kMaxChunksPerRegion);
  plan.num_chunks = (n + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

/// One Run() call: `lanes_wanted` workers may still join, `in_flight`
/// lanes are currently inside `work`. All fields are guarded by the
/// pool mutex; completion is announced on the pool-wide condition
/// variable and waited on by the Run() caller.
struct ThreadPool::Region {
  std::function<void()> work;
  int lanes_wanted = 0;
  int in_flight = 0;
};

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: worker threads may outlive static destructors
  // of translation units that still hold references.
  static ThreadPool* const kPool = new ThreadPool();
  return *kPool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::EnsureWorkers(int wanted) {
  // Caller holds mutex_.
  const int target = std::min(wanted, kMaxWorkers);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
    if (shutting_down_) return;
    std::shared_ptr<Region> region = queue_.front();
    region->lanes_wanted -= 1;
    region->in_flight += 1;
    if (region->lanes_wanted == 0) queue_.pop_front();
    lock.unlock();
    {
      ScopedRegionMark mark;
      region->work();
    }
    lock.lock();
    region->in_flight -= 1;
    if (region->in_flight == 0) wake_.notify_all();
  }
}

void ThreadPool::Run(int lanes, const std::function<void()>& work) {
  if (lanes <= 1 || InParallelRegion()) {
    ScopedRegionMark mark;
    work();
    return;
  }
  auto region = std::make_shared<Region>();
  region->work = work;
  region->lanes_wanted = lanes - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureWorkers(region->lanes_wanted);
    queue_.push_back(region);
  }
  wake_.notify_all();

  {
    ScopedRegionMark mark;
    work();  // the calling thread is always lane 0
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (region->lanes_wanted > 0) {
    // The caller's lane drained the region alone (or nearly so) before
    // every worker got to it; revoke the unclaimed lanes so Run never
    // waits on workers that are busy in other regions.
    region->lanes_wanted = 0;
    auto it = std::find(queue_.begin(), queue_.end(), region);
    if (it != queue_.end()) queue_.erase(it);
  }
  wake_.wait(lock, [&region] { return region->in_flight == 0; });
}

// ---------------------------------------------------------------------
// Parallel loops
// ---------------------------------------------------------------------

Status ParallelFor(const ExecutionContext& context, const std::string& scope,
                   size_t n, const ParallelChunkBody& body,
                   const ParallelOptions& options) {
  if (n == 0) return Status::OK();
  const ChunkPlan plan = PlanChunks(n, options.min_items_per_chunk);
  int threads = EffectiveThreadCount(options.num_threads);
  if (static_cast<size_t>(threads) > plan.num_chunks) {
    threads = static_cast<int>(plan.num_chunks);
  }

  if (threads <= 1) {
    for (size_t chunk = 0; chunk < plan.num_chunks; ++chunk) {
      TRANSER_RETURN_IF_ERROR(context.Check(scope, options.diagnostics));
      TRANSER_RETURN_IF_ERROR(body(plan.Begin(chunk), plan.End(chunk), chunk));
    }
    return Status::OK();
  }

  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> stop{false};
  std::mutex error_mutex;
  Status first_error;  // OK until a chunk fails
  const auto lane = [&] {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return;
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= plan.num_chunks) return;
      // Workers poll the shared deadline / cancellation token before
      // each chunk (and may TryReserve against the memory budget from
      // inside the body — all of that state is thread-safe). The
      // diagnostics sink is not, so workers never pass it.
      Status status = context.Check(scope);
      if (status.ok()) {
        status = body(plan.Begin(chunk), plan.End(chunk), chunk);
      }
      if (!status.ok()) {
        std::lock_guard<std::mutex> guard(error_mutex);
        if (first_error.ok()) first_error = std::move(status);
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };
  ThreadPool::Global().Run(threads, lane);

  if (!first_error.ok() && options.diagnostics != nullptr) {
    // Record a budget/cancellation outcome once, from the calling
    // thread. The context latches each outcome kind, so a TE that a
    // worker already observed is recorded here exactly once.
    (void)context.Check(scope, options.diagnostics);
  }
  return first_error;
}

Status ParallelForSeeded(const ExecutionContext& context,
                         const std::string& scope, size_t n, uint64_t seed,
                         const SeededParallelChunkBody& body,
                         const ParallelOptions& options) {
  return ParallelFor(
      context, scope, n,
      [&body, seed](size_t begin, size_t end, size_t chunk) -> Status {
        // A pure function of (seed, chunk): every chunk's stream is
        // independent of execution order and thread count.
        Rng rng = Rng(seed).Fork(chunk);
        return body(begin, end, chunk, rng);
      },
      options);
}

}  // namespace transer

file(REMOVE_RECURSE
  "CMakeFiles/figure6_label_sensitivity.dir/figure6_label_sensitivity.cc.o"
  "CMakeFiles/figure6_label_sensitivity.dir/figure6_label_sensitivity.cc.o.d"
  "figure6_label_sensitivity"
  "figure6_label_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_label_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

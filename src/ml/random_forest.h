#ifndef TRANSER_ML_RANDOM_FOREST_H_
#define TRANSER_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace transer {

/// \brief Hyper-parameters for the random forest.
struct RandomForestOptions {
  size_t num_trees = 32;
  DecisionTreeOptions tree;  ///< tree.max_features 0 = sqrt(m) heuristic
  uint64_t seed = 4;
  /// Worker lanes for the bagged tree fits (0 = process default). Bags
  /// and per-tree seeds are drawn sequentially before any tree trains,
  /// so the forest is bit-identical at any thread count.
  int num_threads = 0;
};

/// \brief Bagged ensemble of CART trees with per-node random feature
/// subsets; PredictProba averages the leaf probabilities of the trees.
class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {})
      : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<double>& weights) override;
  using Classifier::Fit;

  double PredictProba(std::span<const double> features) const override;

  std::string name() const override { return "random_forest"; }

  Status SaveState(artifact::Encoder* out) const override;
  Status LoadState(artifact::Decoder* in) override;

  size_t tree_count() const { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace transer

#endif  // TRANSER_ML_RANDOM_FOREST_H_

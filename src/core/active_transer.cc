#include "core/active_transer.h"

#include <algorithm>
#include <numeric>

#include "ml/sampling.h"
#include "util/logging.h"
#include "util/random.h"

namespace transer {

Result<ActiveTransERResult> ActiveTransER::Run(
    const FeatureMatrix& source, const FeatureMatrix& target,
    const ClassifierFactory& make_classifier, const LabelOracle& oracle,
    const TransferRunOptions& run_options) const {
  if (source.num_features() != target.num_features()) {
    return Status::InvalidArgument(
        "source and target feature spaces differ");
  }
  if (source.empty() || target.empty()) {
    return Status::InvalidArgument("empty domain");
  }

  const TransER transer(options_.transer);

  // --- Phase (i): SEL, exactly as in plain TransER ---
  FeatureMatrix transferred = source;
  if (options_.transer.use_sel) {
    auto selected = transer.SelectInstances(source, target, run_options);
    if (!selected.ok()) return selected.status();
    FeatureMatrix chosen = source.Select(selected.value());
    if (chosen.CountMatches() > 0 && chosen.CountNonMatches() > 0) {
      transferred = std::move(chosen);
    }
  }

  // --- Phase (ii): GEN ---
  auto classifier_u = make_classifier();
  classifier_u->Fit(transferred.ToMatrix(),
                    transfer_internal::RequireLabels(transferred));
  const Matrix x_target = target.ToMatrix();
  const std::vector<double> proba = classifier_u->PredictProbaAll(x_target);

  std::vector<int> labels(proba.size());
  std::vector<double> confidence(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    labels[i] = proba[i] >= 0.5 ? kMatch : kNonMatch;
    confidence[i] = proba[i] >= 0.5 ? proba[i] : 1.0 - proba[i];
  }

  // --- Active step: the least-confident instances go to the oracle ---
  ActiveTransERResult result;
  std::vector<size_t> order(proba.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&confidence](size_t a, size_t b) {
              return confidence[a] < confidence[b];
            });
  const size_t budget = std::min(options_.budget, order.size());
  for (size_t q = 0; q < budget; ++q) {
    const size_t index = order[q];
    labels[index] = oracle(index) == kMatch ? kMatch : kNonMatch;
    confidence[index] = 1.0;  // oracle labels are ground truth
    result.queried_indices.push_back(index);
  }

  // --- Phase (iii): TCL over confident pseudo labels + oracle labels ---
  std::vector<size_t> candidates;
  for (size_t i = 0; i < confidence.size(); ++i) {
    if (confidence[i] >= options_.transer.t_p) candidates.push_back(i);
  }
  std::vector<int> candidate_labels;
  candidate_labels.reserve(candidates.size());
  for (size_t index : candidates) candidate_labels.push_back(labels[index]);
  FeatureMatrix x_v = target.Select(candidates).WithLabels(candidate_labels);

  Rng rng(run_options.seed + 71);
  const FeatureMatrix x_vb =
      x_v.Select(UndersampleNonMatches(x_v.labels(), options_.transer.b,
                                       &rng));
  if (x_vb.CountMatches() == 0 || x_vb.CountNonMatches() == 0 ||
      x_vb.size() < 4) {
    result.predicted = std::move(labels);
    return result;
  }
  auto classifier_v = make_classifier();
  classifier_v->Fit(x_vb.ToMatrix(), x_vb.labels());
  result.predicted = classifier_v->PredictAll(x_target);
  // Oracle answers are authoritative; never overrule them.
  for (size_t index : result.queried_indices) {
    result.predicted[index] = labels[index];
  }
  return result;
}

}  // namespace transer

#include "features/comparator.h"

#include <algorithm>

#include "text/similarity_registry.h"
#include "util/logging.h"

namespace transer {

Result<PairComparator> PairComparator::Create(const Schema& left_schema,
                                              const Schema& right_schema,
                                              ComparatorOptions options) {
  if (!left_schema.CompatibleWith(right_schema)) {
    return Status::InvalidArgument(
        "left and right schemas are not feature-space compatible");
  }
  std::vector<std::string> names;
  std::vector<SimilarityFn> fns;
  names.reserve(left_schema.size());
  fns.reserve(left_schema.size());
  for (const auto& attr : left_schema.attributes()) {
    auto fn = SimilarityRegistry::Global().Lookup(attr.similarity);
    if (!fn.ok()) return fn.status();
    names.push_back(attr.name + ":" + attr.similarity);
    fns.push_back(std::move(fn.value()));
  }
  return PairComparator(std::move(names), std::move(fns), options);
}

std::vector<double> PairComparator::Compare(const Record& left,
                                            const Record& right) const {
  std::vector<double> features(similarity_fns_.size(), 0.0);
  CompareInto(left, right, std::span<double>(features));
  return features;
}

void PairComparator::CompareInto(const Record& left, const Record& right,
                                 std::span<double> out) const {
  TRANSER_CHECK_EQ(left.values.size(), similarity_fns_.size());
  TRANSER_CHECK_EQ(right.values.size(), similarity_fns_.size());
  TRANSER_CHECK_EQ(out.size(), similarity_fns_.size());
  for (size_t q = 0; q < similarity_fns_.size(); ++q) {
    const std::string a = NormalizeValue(left.values[q], options_.normalize);
    const std::string b = NormalizeValue(right.values[q], options_.normalize);
    if (a.empty() || b.empty()) {
      out[q] = options_.missing_value_similarity;
    } else {
      out[q] = similarity_fns_[q](a, b);
    }
  }
}

FeatureMatrix PairComparator::CompareAll(
    const Dataset& left, const Dataset& right,
    const std::vector<PairRef>& pairs) const {
  // The unlimited context never interrupts and the fill body never
  // fails, so the parallel overload's status is always OK here.
  auto out = CompareAll(left, right, pairs, ExecutionContext::Unlimited(),
                        ParallelOptions{});
  TRANSER_CHECK(out.ok());
  return std::move(out.value());
}

Result<FeatureMatrix> PairComparator::CompareAll(
    const Dataset& left, const Dataset& right,
    const std::vector<PairRef>& pairs, const ExecutionContext& context,
    const ParallelOptions& options) const {
  FeatureMatrix out(feature_names_);
  out.Resize(pairs.size());
  ParallelOptions chunk_options = options;
  chunk_options.min_items_per_chunk =
      std::max<size_t>(chunk_options.min_items_per_chunk, 64);
  TRANSER_RETURN_IF_ERROR(ParallelFor(
      context, "compare", pairs.size(),
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const PairRef& pair = pairs[i];
          const Record& l = left.record(pair.left_index);
          const Record& r = right.record(pair.right_index);
          CompareInto(l, r, out.MutableRow(i));
          out.set_label(i, (l.entity_id >= 0 && l.entity_id == r.entity_id)
                               ? kMatch
                               : kNonMatch);
          out.set_pair(i, pair);
        }
        return Status::OK();
      },
      chunk_options));
  return out;
}

}  // namespace transer

#ifndef TRANSER_TRANSFER_TRANSFER_METHOD_H_
#define TRANSER_TRANSFER_TRANSFER_METHOD_H_

#include <string>
#include <vector>

#include "features/feature_matrix.h"
#include "ml/classifier.h"
#include "util/diagnostics.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace transer {

/// \brief Per-run controls for a transfer method. The paper capped every
/// experiment at 200 GB / 72 h (Section 5.1.1, 'ME' / 'TE' cells); the
/// benchmark harness sets proportionally scaled limits here.
struct TransferRunOptions {
  uint64_t seed = 0;
  double time_limit_seconds = 0.0;   ///< 0 = unlimited
  size_t memory_limit_bytes = 0;     ///< 0 = unlimited
  /// Optional sink for the graceful-degradation events of the run
  /// (threshold relaxations, fallbacks, skipped phases). Not owned.
  RunDiagnostics* diagnostics = nullptr;
};

/// \brief A transfer-learning ER method: given a labelled source feature
/// matrix and an unlabelled target feature matrix over the same feature
/// space, predict match/non-match for every target instance.
class TransferMethod {
 public:
  virtual ~TransferMethod() = default;

  /// Short identifier, e.g. "transer", "naive", "coral".
  virtual std::string name() const = 0;

  /// Predicts target labels. Target labels present in `target` must be
  /// ignored (callers typically pass target.WithoutLabels()).
  /// `make_classifier` supplies the classifier family for methods that
  /// are model agnostic; deep methods may ignore it.
  /// Returns FailedPrecondition with a message containing "TE" / "ME"
  /// when a time / memory limit is exceeded.
  virtual Result<std::vector<int>> Run(
      const FeatureMatrix& source, const FeatureMatrix& target,
      const ClassifierFactory& make_classifier,
      const TransferRunOptions& run_options) const = 0;
};

namespace transfer_internal {

/// \brief Cooperative deadline used by the iterative methods.
class Deadline {
 public:
  explicit Deadline(double limit_seconds) : limit_seconds_(limit_seconds) {}

  /// True once the limit has elapsed (never when the limit is 0).
  bool Expired() const {
    return limit_seconds_ > 0.0 &&
           stopwatch_.ElapsedSeconds() > limit_seconds_;
  }

  /// The status to return when expired ('TE' as in the paper's tables).
  static Status Exceeded(const std::string& method) {
    return Status::FailedPrecondition(method +
                                      ": runtime limit exceeded (TE)");
  }

 private:
  double limit_seconds_;
  Stopwatch stopwatch_;
};

/// Returns an error if an allocation of `bytes_needed` would exceed the
/// configured limit ('ME' as in the paper's tables); OK otherwise.
Status CheckMemory(const std::string& method, size_t bytes_needed,
                   size_t limit_bytes);

/// Extracts labels as a 0/1 vector (CHECK-fails on unlabeled instances).
std::vector<int> RequireLabels(const FeatureMatrix& x);

}  // namespace transfer_internal

}  // namespace transer

#endif  // TRANSER_TRANSFER_TRANSFER_METHOD_H_

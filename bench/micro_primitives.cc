// Perf-regression harness for the performance-critical primitives: the
// vectorized kernel layer, tiled batch k-NN, bounded-heap queries and
// the string similarity functions. Each primitive is timed next to the
// scalar implementation it replaced, so the sidecar records both the
// absolute cost and the speedup the kernel layer buys.
//
// Flags: --quick (shorter samples, fewer repeats; for CI smoke —
//        workload sizes never change, so quick sidecars stay
//        comparable to the committed full-run baseline),
//        --threads=N (worker lanes for the N-thread batch k-NN row;
//        default hardware width), --out=<path> (sidecar path; default
//        BENCH_kernels.json), --dims=N / --pair-dims=N (vector widths
//        for the elementwise and pairwise sections; defaults 128 / 16 —
//        entry names carry the width, so diffing against the committed
//        baseline requires the default), --version.
//
// The widths deliberately arrive through flags: as compile-time
// constants the "scalar baseline" loops would be fully unrolled at
// their literal trip counts — a luxury the real pre-kernel code, which
// always received runtime dims, never had.
//
// The sidecar is schema-versioned (transer.kernel_perf v1) and diffed
// against bench/baselines/BENCH_kernels.json by perf_compare. The
// binary runs kernels::SelfCheck() before timing anything and exits 1
// if the vectorized kernels are not bit-identical to their scalar
// references — a fast harness measuring wrong numbers is worthless.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/kernel_probe.h"
#include "bench/perf_sidecar.h"
#include "knn/brute_force.h"
#include "knn/kd_tree.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "ml/lbfgs.h"
#include "ml/logistic_regression.h"
#include "text/edit_distance.h"
#include "text/jaro_winkler.h"
#include "text/set_similarity.h"
#include "util/execution_context.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/status.h"

namespace transer {
namespace {

// ---------------------------------------------------------------------
// Scalar baselines: the implementations these primitives had before the
// kernel layer, reproduced here so every speedup in the sidecar is
// measured against real prior code, not a strawman.

double ScalarDot(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double ScalarSquaredL2(std::span<const double> a,
                       std::span<const double> b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void ScalarAxpy(double alpha, std::span<const double> x,
                std::span<double> y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

// The pre-kernel BruteForceKnn::Query: materialize all n distances,
// sort, take k.
std::vector<Neighbour> SortAllQuery(const Matrix& points,
                                    std::span<const double> query,
                                    size_t k) {
  std::vector<Neighbour> all;
  all.reserve(points.rows());
  for (size_t row = 0; row < points.rows(); ++row) {
    const std::span<const double> p(points.Row(row), points.cols());
    all.push_back(Neighbour{row, std::sqrt(ScalarSquaredL2(query, p))});
  }
  std::sort(all.begin(), all.end(), NeighbourBefore);
  all.resize(std::min(k, all.size()));
  return all;
}

// The pre-kernel QueryBatch body: one row-at-a-time scan per query.
void RowScanBatch(const Matrix& points, const Matrix& queries, size_t k,
                  std::vector<std::vector<Neighbour>>* out) {
  out->resize(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    const std::span<const double> query(queries.Row(q), queries.cols());
    (*out)[q] = SortAllQuery(points, query, k);
  }
}

// Full-table Levenshtein (the pre-banded implementation).
size_t NaiveLevenshtein(std::string_view a, std::string_view b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

// ---------------------------------------------------------------------

// A sorted random CSR row: nnz distinct columns out of `dims`.
void RandomSparseRow(size_t dims, size_t nnz, Rng* rng,
                     std::vector<uint32_t>* indices,
                     std::vector<double>* values) {
  indices->clear();
  values->clear();
  std::vector<uint32_t> cols(dims);
  for (size_t i = 0; i < dims; ++i) cols[i] = static_cast<uint32_t>(i);
  for (size_t i = 0; i < nnz; ++i) {
    const size_t j = i + static_cast<size_t>(rng->NextUint64Below(dims - i));
    std::swap(cols[i], cols[j]);
  }
  cols.resize(nnz);
  std::sort(cols.begin(), cols.end());
  for (uint32_t c : cols) {
    indices->push_back(c);
    values->push_back(rng->NextDouble() - 0.5);
  }
}

Matrix RandomMatrix(size_t n, size_t dims, Rng* rng) {
  Matrix m(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) m(i, d) = rng->NextDouble();
  }
  return m;
}

/// Runs each primitive through MeasureNsPerOp, prints the human table
/// and accumulates the machine-readable sidecar.
class Harness {
 public:
  Harness(int threads, double min_seconds, int samples)
      : min_seconds_(min_seconds), samples_(samples) {
    sidecar_.threads = threads;
    std::printf("%-28s %8s %14s %14s\n", "primitive", "threads", "ns/op",
                "Mops/s");
  }

  template <typename F>
  double Run(const std::string& name, int threads, F&& fn,
             double ops_per_call = 1.0) {
    const double ns = bench::MeasureNsPerOp(
        std::forward<F>(fn), ops_per_call, min_seconds_, samples_);
    bench::PerfEntry entry;
    entry.name = name;
    entry.threads = threads;
    entry.ns_per_op = ns;
    entry.ops_per_sec = ns > 0.0 ? 1e9 / ns : 0.0;
    sidecar_.entries.push_back(entry);
    std::printf("%-28s %8d %14.2f %14.3f\n", name.c_str(), threads, ns,
                entry.ops_per_sec / 1e6);
    return ns;
  }

  /// Run() in both clocks: records the usual wall-time entry and also
  /// returns the process-CPU reading, for the thread-scaling extra.
  template <typename F>
  bench::WallCpuNs RunWallCpu(const std::string& name, int threads, F&& fn,
                              double ops_per_call = 1.0) {
    const bench::WallCpuNs ns = bench::MeasureWallCpuNsPerOp(
        std::forward<F>(fn), ops_per_call, min_seconds_, samples_);
    bench::PerfEntry entry;
    entry.name = name;
    entry.threads = threads;
    entry.ns_per_op = ns.wall;
    entry.ops_per_sec = ns.wall > 0.0 ? 1e9 / ns.wall : 0.0;
    sidecar_.entries.push_back(entry);
    std::printf("%-28s %8d %14.2f %14.3f\n", name.c_str(), threads, ns.wall,
                entry.ops_per_sec / 1e6);
    return ns;
  }

  void Extra(const std::string& key, double value) {
    sidecar_.extras.emplace_back(key, value);
    std::printf("  %-42s %.2fx\n", (key + ":").c_str(), value);
  }

  const bench::PerfSidecar& sidecar() const { return sidecar_; }

 private:
  double min_seconds_;
  int samples_;
  bench::PerfSidecar sidecar_;
};

int Main(int argc, char** argv) {
  const bench::Flags flags(argc, argv,
                           {"quick", "threads", "out", "dims", "pair-dims"});
  const int threads = bench::ConfigureThreads(flags);
  const bool quick = flags.GetBool("quick", false);
  const std::string out_path = flags.GetString("out", "BENCH_kernels.json");
  const size_t elem_dims = static_cast<size_t>(flags.GetInt("dims", 128));
  const size_t pd = static_cast<size_t>(flags.GetInt("pair-dims", 16));
  const std::string ed = std::to_string(elem_dims);

  const Status self_check = kernels::SelfCheck();
  if (!self_check.ok()) {
    std::fprintf(stderr, "kernel self-check failed: %s\n",
                 self_check.ToString().c_str());
    return 1;
  }
  std::printf("kernel self-check passed (vectorized == scalar reference)\n");

  // Full mode takes five samples per primitive: the committed baseline
  // must not record one lucky scheduler slice.
  const double min_seconds = quick ? 0.05 : 0.25;
  Harness harness(threads, min_seconds, quick ? 3 : 5);
  Rng rng(4242);

  // --- elementwise kernels at --dims (default 128) ---
  std::vector<double> a(elem_dims), b(elem_dims), y(elem_dims);
  for (double& x : a) x = rng.NextDouble() - 0.5;
  for (double& x : b) x = rng.NextDouble() - 0.5;
  for (double& x : y) x = rng.NextDouble() - 0.5;

  const double dot_kernel = harness.Run("dot.kernel.d" + ed, 1, [&] {
    bench::DoNotOptimize(kernels::Dot(a, b));
  });
  const double dot_scalar = harness.Run("dot.scalar.d" + ed, 1, [&] {
    bench::DoNotOptimize(ScalarDot(a, b));
  });
  const double l2_kernel = harness.Run("squared_l2.kernel.d" + ed, 1, [&] {
    bench::DoNotOptimize(kernels::SquaredL2(a, b));
  });
  const double l2_scalar = harness.Run("squared_l2.scalar.d" + ed, 1, [&] {
    bench::DoNotOptimize(ScalarSquaredL2(a, b));
  });
  harness.Run("axpy.kernel.d" + ed, 1, [&] {
    kernels::Axpy(1e-9, a, y);
    bench::DoNotOptimize(y.data());
  });
  harness.Run("axpy.scalar.d" + ed, 1, [&] {
    ScalarAxpy(1e-9, a, y);
    bench::DoNotOptimize(y.data());
  });
  harness.Run("fma.kernel.d" + ed, 1, [&] {
    kernels::Fma(a, b, y);
    bench::DoNotOptimize(y.data());
  });

  // --- tiled pairwise distances straddling the internal 8x64 tiles ---
  const size_t pa = 64, pb = 256;
  const Matrix rows_a = RandomMatrix(pa, pd, &rng);
  const Matrix rows_b = RandomMatrix(pb, pd, &rng);
  std::vector<double> norms_a(pa), norms_b(pb);
  kernels::SquaredNorms(rows_a.Row(0), pa, pd, norms_a.data());
  kernels::SquaredNorms(rows_b.Row(0), pb, pd, norms_b.data());
  std::vector<double> pairwise(pa * pb);
  const double pair_tiled = harness.Run(
      "pairwise_l2.tiled", 1,
      [&] {
        kernels::PairwiseSquaredL2(rows_a.Row(0), pa, norms_a.data(),
                                   rows_b.Row(0), pb, norms_b.data(), pd,
                                   pairwise.data());
        bench::DoNotOptimize(pairwise.data());
      },
      static_cast<double>(pa * pb));
  const double pair_scalar = harness.Run(
      "pairwise_l2.scalar", 1,
      [&] {
        for (size_t i = 0; i < pa; ++i) {
          const std::span<const double> row_a(rows_a.Row(i), pd);
          for (size_t j = 0; j < pb; ++j) {
            pairwise[i * pb + j] = ScalarSquaredL2(
                row_a, std::span<const double>(rows_b.Row(j), pd));
          }
        }
        bench::DoNotOptimize(pairwise.data());
      },
      static_cast<double>(pa * pb));

  // --- k-NN: tiled batch vs the old row-at-a-time scan ---
  const size_t points_n = 4000;
  const size_t queries_n = 256;
  const size_t dims = 12, k = 10;
  const Matrix points = RandomMatrix(points_n, dims, &rng);
  const Matrix queries = RandomMatrix(queries_n, dims, &rng);
  const BruteForceKnn brute(points);
  const KdTree tree(points);
  const ExecutionContext& context = ExecutionContext::Unlimited();
  ParallelOptions serial;
  serial.num_threads = 1;

  const bench::WallCpuNs batch_1t = harness.RunWallCpu(
      "knn_batch.tiled.t1", 1,
      [&] {
        bench::DoNotOptimize(
            brute.QueryBatch(queries, k, context, "bench", serial));
      },
      static_cast<double>(queries_n));
  std::vector<std::vector<Neighbour>> rowscan_out;
  const double batch_rowscan = harness.Run(
      "knn_batch.rowscan.t1", 1,
      [&] {
        RowScanBatch(points, queries, k, &rowscan_out);
        bench::DoNotOptimize(rowscan_out.data());
      },
      static_cast<double>(queries_n));
  // Always emitted so the sidecar's entry set is machine-independent;
  // perf_compare skips it when lane counts differ between baseline and
  // candidate. At --threads=1 the probe oversubscribes lanes (see
  // ResolveProbeLanes) so the parallel dispatch path is measured — and
  // knn_batch_speedup_vs_1_thread populated (via the CPU-time scaling
  // projection of ThreadScalingSpeedup) — even on one core.
  const int lanes = bench::ResolveProbeLanes(threads);
  ParallelOptions wide;
  wide.num_threads = lanes;
  const bench::WallCpuNs batch_nt = harness.RunWallCpu(
      "knn_batch.tiled.tN", lanes,
      [&] {
        bench::DoNotOptimize(
            brute.QueryBatch(queries, k, context, "bench", wide));
      },
      static_cast<double>(queries_n));

  const std::span<const double> probe(queries.Row(0), dims);
  harness.Run("knn_query.heap", 1, [&] {
    bench::DoNotOptimize(brute.Query(probe, k));
  });
  harness.Run("knn_query.sortall", 1, [&] {
    bench::DoNotOptimize(SortAllQuery(points, probe, k));
  });
  harness.Run("kdtree.query", 1, [&] {
    bench::DoNotOptimize(tree.Query(probe, k));
  });

  // --- string similarity ---
  const std::string jw_a = "margaret thompson";
  const std::string jw_b = "margret thomson";
  harness.Run("sim.jaro_winkler", 1, [&] {
    bench::DoNotOptimize(JaroWinklerSimilarity(jw_a, jw_b));
  });
  const std::string lev_a = "international association of entity resolution";
  const std::string lev_b = "internation asociation of entity resolutions";
  const double lev_banded = harness.Run("sim.levenshtein.banded", 1, [&] {
    bench::DoNotOptimize(LevenshteinDistance(lev_a, lev_b));
  });
  const double lev_naive = harness.Run("sim.levenshtein.naive", 1, [&] {
    bench::DoNotOptimize(NaiveLevenshtein(lev_a, lev_b));
  });
  harness.Run("sim.levenshtein.bounded", 1, [&] {
    bench::DoNotOptimize(LevenshteinDistanceBounded(lev_a, lev_b, 3));
  });
  const std::string qg_a = "efficient entity resolution methods";
  const std::string qg_b = "eficient entity resolution method";
  harness.Run("sim.qgram_jaccard", 1, [&] {
    bench::DoNotOptimize(QGramJaccardSimilarity(qg_a, qg_b));
  });

  // --- sparse kernels: CSR rows over a hashed 2^16 space, nnz=512 ---
  // Workload sizes are fixed (not flag-driven) so entry names stay
  // stable against the committed baseline.
  const size_t sparse_dims = size_t{1} << 16;
  const size_t sparse_nnz = 512;
  std::vector<uint32_t> sp_ai, sp_bi;
  std::vector<double> sp_av, sp_bv;
  RandomSparseRow(sparse_dims, sparse_nnz, &rng, &sp_ai, &sp_av);
  RandomSparseRow(sparse_dims, sparse_nnz, &rng, &sp_bi, &sp_bv);
  std::vector<double> sp_dense(sparse_dims);
  for (double& x : sp_dense) x = rng.NextDouble() - 0.5;
  const double ops_nnz = static_cast<double>(sparse_nnz);

  const double sdot_kernel =
      harness.Run("sparse_dot.kernel.nnz512", 1,
                  [&] {
                    bench::DoNotOptimize(
                        kernels::SparseDenseDot(sp_ai, sp_av, sp_dense));
                  },
                  ops_nnz);
  const double sdot_scalar =
      harness.Run("sparse_dot.scalar.nnz512", 1,
                  [&] {
                    bench::DoNotOptimize(
                        kernels::ref::SparseDenseDot(sp_ai, sp_av, sp_dense));
                  },
                  ops_nnz);
  harness.Run("sparse_sparse_dot.kernel", 1,
              [&] {
                bench::DoNotOptimize(
                    kernels::SparseDot(sp_ai, sp_av, sp_bi, sp_bv));
              },
              ops_nnz);
  harness.Run("sparse_squared_l2.kernel", 1,
              [&] {
                bench::DoNotOptimize(
                    kernels::SparseSquaredL2(sp_ai, sp_av, sp_bi, sp_bv));
              },
              ops_nnz);
  const double saxpy_kernel =
      harness.Run("sparse_axpy.kernel.nnz512", 1,
                  [&] {
                    kernels::SparseAxpy(1e-9, sp_ai, sp_av,
                                        std::span<double>(sp_dense));
                    bench::DoNotOptimize(sp_dense.data());
                  },
                  ops_nnz);
  const double saxpy_scalar =
      harness.Run("sparse_axpy.scalar.nnz512", 1,
                  [&] {
                    kernels::ref::SparseAxpy(1e-9, sp_ai, sp_av,
                                             std::span<double>(sp_dense));
                    bench::DoNotOptimize(sp_dense.data());
                  },
                  ops_nnz);

  // --- solver convergence: L-BFGS vs SGD on one small separable fit ---
  // Fixed workload (n=256, m=16) so a regression in either solver's
  // per-fit cost — extra passes, a broken line search — shows up as a
  // ratio shift against the baseline.
  const size_t fit_n = 256, fit_m = 16;
  Matrix fit_x(fit_n, fit_m);
  std::vector<int> fit_y(fit_n);
  for (size_t i = 0; i < fit_n; ++i) {
    fit_y[i] = static_cast<int>(i % 2);
    const double shift = fit_y[i] == 1 ? 1.0 : -1.0;
    for (size_t d = 0; d < fit_m; ++d) {
      fit_x(i, d) = shift + 0.25 * (rng.NextDouble() - 0.5);
    }
  }
  LogisticRegressionOptions sgd_opts;
  sgd_opts.epochs = 50;
  LogisticRegressionOptions lbfgs_opts;
  lbfgs_opts.solver = LinearSolver::kLbfgs;
  lbfgs_opts.lbfgs_max_iterations = 50;
  const double fit_sgd = harness.Run("solver.sgd_fit.n256", 1, [&] {
    LogisticRegression model(sgd_opts);
    model.Fit(fit_x, fit_y);
    bench::DoNotOptimize(model.coefficients().data());
  });
  const double fit_lbfgs = harness.Run("solver.lbfgs_fit.n256", 1, [&] {
    LogisticRegression model(lbfgs_opts);
    model.Fit(fit_x, fit_y);
    bench::DoNotOptimize(model.coefficients().data());
  });

  std::printf("\nspeedups (scalar baseline = pre-kernel implementation):\n");
  harness.Extra("dot_speedup_vs_scalar", dot_scalar / dot_kernel);
  harness.Extra("squared_l2_speedup_vs_scalar", l2_scalar / l2_kernel);
  harness.Extra("pairwise_speedup_vs_scalar", pair_scalar / pair_tiled);
  harness.Extra("knn_batch_speedup_tiled_vs_rowscan",
                batch_rowscan / batch_1t.wall);
  harness.Extra("knn_batch_speedup_vs_1_thread",
                bench::ThreadScalingSpeedup(batch_1t, batch_nt, lanes));
  harness.Extra("levenshtein_speedup_vs_naive", lev_naive / lev_banded);
  harness.Extra("sparse_dot_speedup_vs_scalar", sdot_scalar / sdot_kernel);
  harness.Extra("sparse_axpy_speedup_vs_scalar", saxpy_scalar / saxpy_kernel);
  harness.Extra("lbfgs_fit_speedup_vs_sgd", fit_sgd / fit_lbfgs);

  if (!bench::WritePerfSidecar(out_path, harness.sidecar())) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace transer

int main(int argc, char** argv) { return transer::Main(argc, argv); }

#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>

#include "util/artifact_io.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace transer {

namespace internal_gbdt {

namespace {

// Weighted mean of residuals over indices[begin, end).
double WeightedMean(const std::vector<double>& residuals,
                    const std::vector<double>& weights,
                    const std::vector<size_t>& indices, size_t begin,
                    size_t end) {
  double total = 0.0;
  double total_w = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const size_t row = indices[i];
    total += weights[row] * residuals[row];
    total_w += weights[row];
  }
  return total_w > 0.0 ? total / total_w : 0.0;
}

}  // namespace

ptrdiff_t RegressionTree::Grow(const Matrix& x,
                               const std::vector<double>& residuals,
                               const std::vector<double>& weights,
                               std::vector<size_t>* indices, size_t begin,
                               size_t end, int depth, int max_depth,
                               size_t min_samples_leaf, int num_threads) {
  Node node;
  node.value = WeightedMean(residuals, weights, *indices, begin, end);

  // Find the squared-error-optimal split if the node may be split.
  bool found = false;
  size_t best_feature = 0;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  if (depth < max_depth && end - begin >= 2 * min_samples_leaf) {
    // Every feature scores from this pristine copy of the node's row
    // order, so its result is independent of which other features ran
    // (or in what order) — the basis of the parallel search's
    // determinism.
    const std::vector<size_t> base(
        indices->begin() + static_cast<ptrdiff_t>(begin),
        indices->begin() + static_cast<ptrdiff_t>(end));
    double total_sw = 0.0, total_swr = 0.0;
    for (size_t row : base) {
      total_sw += weights[row];
      total_swr += weights[row] * residuals[row];
    }

    struct BestSplit {
      bool found = false;
      double gain = 1e-12;
      size_t feature = 0;
      double threshold = 0.0;
    };
    ParallelOptions par;
    par.num_threads = num_threads;
    auto best = ParallelReduce<BestSplit>(
        ExecutionContext::Unlimited(), "gbdt_split", x.cols(), BestSplit{},
        [&](size_t f_begin, size_t f_end, size_t /*chunk*/,
            BestSplit* acc) -> Status {
          std::vector<size_t> sorted;
          for (size_t feature = f_begin; feature < f_end; ++feature) {
            sorted = base;
            std::sort(sorted.begin(), sorted.end(),
                      [&x, feature](size_t a, size_t b) {
                        return x(a, feature) < x(b, feature);
                      });
            double left_sw = 0.0, left_swr = 0.0;
            for (size_t i = 0; i + 1 < sorted.size(); ++i) {
              const size_t row = sorted[i];
              left_sw += weights[row];
              left_swr += weights[row] * residuals[row];
              if (i + 1 < min_samples_leaf ||
                  sorted.size() - i - 1 < min_samples_leaf) {
                continue;
              }
              const double value = x(row, feature);
              const double next = x(sorted[i + 1], feature);
              if (next <= value) continue;
              const double right_sw = total_sw - left_sw;
              const double right_swr = total_swr - left_swr;
              if (left_sw <= 0.0 || right_sw <= 0.0) continue;
              // Variance-reduction gain: sum of (weighted mean)^2 * weight.
              const double gain = left_swr * left_swr / left_sw +
                                  right_swr * right_swr / right_sw -
                                  total_swr * total_swr / total_sw;
              // Strict >: within the ascending feature scan the lowest
              // feature index wins gain ties, exactly as the serial
              // loop resolved them.
              if (gain > acc->gain) {
                const double threshold = value + 0.5 * (next - value);
                if (!(threshold < next)) continue;
                acc->gain = gain;
                acc->feature = feature;
                acc->threshold = threshold;
                acc->found = true;
              }
            }
          }
          return Status::OK();
        },
        [](BestSplit* into, BestSplit* part) {
          // Chunks fold in ascending feature order; strict > preserves
          // the lowest-index tie-break across chunk boundaries.
          if (part->found && part->gain > into->gain) *into = *part;
        },
        par);
    TRANSER_CHECK(best.ok());
    found = best.value().found;
    best_feature = best.value().feature;
    best_threshold = best.value().threshold;
    best_gain = best.value().gain;
  }
  (void)best_gain;

  if (!found) {
    nodes.push_back(node);
    return static_cast<ptrdiff_t>(nodes.size() - 1);
  }

  auto mid_it = std::partition(
      indices->begin() + static_cast<ptrdiff_t>(begin),
      indices->begin() + static_cast<ptrdiff_t>(end),
      [&x, best_feature, best_threshold](size_t row) {
        return x(row, best_feature) <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices->begin());
  TRANSER_CHECK(mid > begin && mid < end);

  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes.push_back(node);
  const ptrdiff_t index = static_cast<ptrdiff_t>(nodes.size() - 1);
  const ptrdiff_t left = Grow(x, residuals, weights, indices, begin, mid,
                              depth + 1, max_depth, min_samples_leaf,
                              num_threads);
  const ptrdiff_t right = Grow(x, residuals, weights, indices, mid, end,
                               depth + 1, max_depth, min_samples_leaf,
                               num_threads);
  nodes[static_cast<size_t>(index)].left = left;
  nodes[static_cast<size_t>(index)].right = right;
  return index;
}

void RegressionTree::Fit(const Matrix& x,
                         const std::vector<double>& residuals,
                         const std::vector<double>& weights, int max_depth,
                         size_t min_samples_leaf, int num_threads) {
  nodes.clear();
  root = -1;
  if (x.rows() == 0) return;
  std::vector<size_t> indices(x.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  root = Grow(x, residuals, weights, &indices, 0, indices.size(), 0,
              max_depth, min_samples_leaf, num_threads);
}

double RegressionTree::Predict(std::span<const double> features) const {
  if (root < 0) return 0.0;
  ptrdiff_t current = root;
  for (;;) {
    const Node& node = nodes[static_cast<size_t>(current)];
    if (node.is_leaf) return node.value;
    current =
        features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

}  // namespace internal_gbdt

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void GradientBoosting::Fit(const Matrix& x, const std::vector<int>& y,
                           const std::vector<double>& weights) {
  TRANSER_CHECK_EQ(x.rows(), y.size());
  TRANSER_CHECK(weights.empty() || weights.size() == y.size());
  trees_.clear();
  num_features_ = x.cols();
  base_logit_ = 0.0;
  const size_t n = x.rows();
  if (n == 0) return;

  std::vector<double> w = weights;
  if (w.empty()) w.assign(n, 1.0);

  // Base score: log-odds of the (weighted) match rate, clamped so a
  // single-class fit stays finite.
  double match_w = 0.0, total_w = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total_w += w[i];
    if (y[i] == 1) match_w += w[i];
  }
  const double p0 = std::clamp(match_w / std::max(total_w, 1e-12), 1e-4,
                               1.0 - 1e-4);
  base_logit_ = std::log(p0 / (1.0 - p0));

  std::vector<double> logits(n, base_logit_);
  std::vector<double> residuals(n);
  for (size_t round = 0; round < options_.num_rounds; ++round) {
    if (FitInterrupted()) return;  // caller surfaces the status via Check
    for (size_t i = 0; i < n; ++i) {
      residuals[i] = static_cast<double>(y[i]) - Sigmoid(logits[i]);
    }
    internal_gbdt::RegressionTree tree;
    tree.Fit(x, residuals, w, options_.max_depth, options_.min_samples_leaf,
             options_.num_threads);
    double max_abs_update = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double update =
          options_.learning_rate *
          tree.Predict(std::span<const double>(x.Row(i), num_features_));
      logits[i] += update;
      max_abs_update = std::max(max_abs_update, std::fabs(update));
    }
    trees_.push_back(std::move(tree));
    if (max_abs_update < 1e-7) break;  // converged: residuals exhausted
  }
}

namespace {

void SaveRegressionTree(const internal_gbdt::RegressionTree& tree,
                        artifact::Encoder* out) {
  out->PutI64(tree.root);
  out->PutU64(tree.nodes.size());
  for (const auto& node : tree.nodes) {
    out->PutU8(node.is_leaf ? 1 : 0);
    out->PutU64(node.feature);
    out->PutDouble(node.threshold);
    out->PutI64(node.left);
    out->PutI64(node.right);
    out->PutDouble(node.value);
  }
}

Status LoadRegressionTree(artifact::Decoder* in, size_t num_features,
                          internal_gbdt::RegressionTree* tree) {
  int64_t root = 0;
  uint64_t node_count = 0;
  TRANSER_RETURN_IF_ERROR(in->GetI64(&root));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&node_count));
  if (node_count > in->remaining() / 41) {
    return Status::InvalidArgument(
        "regression tree node count exceeds payload");
  }
  std::vector<internal_gbdt::RegressionTree::Node> nodes;
  nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    internal_gbdt::RegressionTree::Node node;
    uint8_t is_leaf = 0;
    uint64_t feature = 0;
    int64_t left = 0;
    int64_t right = 0;
    TRANSER_RETURN_IF_ERROR(in->GetU8(&is_leaf));
    TRANSER_RETURN_IF_ERROR(in->GetU64(&feature));
    TRANSER_RETURN_IF_ERROR(in->GetDouble(&node.threshold));
    TRANSER_RETURN_IF_ERROR(in->GetI64(&left));
    TRANSER_RETURN_IF_ERROR(in->GetI64(&right));
    TRANSER_RETURN_IF_ERROR(in->GetDouble(&node.value));
    if (is_leaf > 1 || !std::isfinite(node.value)) {
      return Status::InvalidArgument("regression tree node is malformed");
    }
    node.is_leaf = is_leaf == 1;
    node.feature = static_cast<size_t>(feature);
    node.left = static_cast<ptrdiff_t>(left);
    node.right = static_cast<ptrdiff_t>(right);
    if (node.is_leaf) {
      if (left != -1 || right != -1) {
        return Status::InvalidArgument("regression tree leaf has children");
      }
    } else if (node.feature >= num_features ||
               !std::isfinite(node.threshold) ||
               left <= static_cast<int64_t>(i) ||
               right <= static_cast<int64_t>(i) ||
               left >= static_cast<int64_t>(node_count) ||
               right >= static_cast<int64_t>(node_count)) {
      // Parents precede children in Grow(), so child-index-exceeds-parent
      // guarantees the loaded tree terminates every Predict walk.
      return Status::InvalidArgument(StrFormat(
          "regression tree node %llu has invalid split structure",
          static_cast<unsigned long long>(i)));
    }
    nodes.push_back(node);
  }
  if (root < -1 || root >= static_cast<int64_t>(node_count) ||
      (root == -1 && node_count != 0)) {
    return Status::InvalidArgument("regression tree root is out of range");
  }
  tree->root = static_cast<ptrdiff_t>(root);
  tree->nodes = std::move(nodes);
  return Status::OK();
}

}  // namespace

Status GradientBoosting::SaveState(artifact::Encoder* out) const {
  out->PutU64(options_.num_rounds);
  out->PutDouble(options_.learning_rate);
  out->PutI64(options_.max_depth);
  out->PutU64(options_.min_samples_leaf);
  out->PutU64(num_features_);
  out->PutDouble(base_logit_);
  out->PutU64(trees_.size());
  for (const auto& tree : trees_) SaveRegressionTree(tree, out);
  return Status::OK();
}

Status GradientBoosting::LoadState(artifact::Decoder* in) {
  GradientBoostingOptions options = options_;
  uint64_t num_rounds = 0;
  int64_t max_depth = 0;
  uint64_t min_samples_leaf = 0;
  uint64_t num_features = 0;
  double base_logit = 0.0;
  uint64_t tree_count = 0;
  TRANSER_RETURN_IF_ERROR(in->GetU64(&num_rounds));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&options.learning_rate));
  TRANSER_RETURN_IF_ERROR(in->GetI64(&max_depth));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&min_samples_leaf));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&num_features));
  TRANSER_RETURN_IF_ERROR(in->GetDouble(&base_logit));
  TRANSER_RETURN_IF_ERROR(in->GetU64(&tree_count));
  if (num_rounds > 1u << 20 || max_depth < 0 || max_depth > INT32_MAX ||
      min_samples_leaf == 0 || !std::isfinite(options.learning_rate) ||
      !std::isfinite(base_logit) || tree_count > num_rounds ||
      tree_count > in->remaining() / 17) {
    return Status::InvalidArgument("gradient boosting state is implausible");
  }
  options.num_rounds = static_cast<size_t>(num_rounds);
  options.max_depth = static_cast<int>(max_depth);
  options.min_samples_leaf = static_cast<size_t>(min_samples_leaf);
  std::vector<internal_gbdt::RegressionTree> trees;
  trees.reserve(tree_count);
  for (uint64_t t = 0; t < tree_count; ++t) {
    internal_gbdt::RegressionTree tree;
    TRANSER_RETURN_IF_ERROR(
        LoadRegressionTree(in, static_cast<size_t>(num_features), &tree));
    trees.push_back(std::move(tree));
  }
  options_ = options;
  num_features_ = static_cast<size_t>(num_features);
  base_logit_ = base_logit;
  trees_ = std::move(trees);
  return Status::OK();
}

double GradientBoosting::PredictProba(
    std::span<const double> features) const {
  TRANSER_CHECK_EQ(features.size(), num_features_);
  double logit = base_logit_;
  for (const auto& tree : trees_) {
    logit += options_.learning_rate * tree.Predict(features);
  }
  return Sigmoid(logit);
}

}  // namespace transer

#ifndef TRANSER_DATA_DATASET_STATISTICS_H_
#define TRANSER_DATA_DATASET_STATISTICS_H_

#include <string>
#include <vector>

#include "features/ambiguity.h"
#include "features/feature_matrix.h"

namespace transer {

/// \brief One Table-1 row: per-domain statistics for the two domains of a
/// pair plus their common-feature-vector statistics.
struct DomainPairStatistics {
  std::string domain_a;
  std::string domain_b;
  size_t num_features = 0;
  AmbiguityStats stats_a;
  AmbiguityStats stats_b;
  CommonVectorStats common;
};

/// Computes the full Table-1 row for a domain pair (vectors rounded to
/// two decimals, as in the paper).
DomainPairStatistics ComputePairStatistics(const std::string& name_a,
                                           const FeatureMatrix& a,
                                           const std::string& name_b,
                                           const FeatureMatrix& b);

/// \brief Histogram of per-instance average similarity (the Figure 2
/// view). `counts[i]` covers [i/bins, (i+1)/bins).
struct SimilarityHistogram {
  size_t bins = 0;
  std::vector<size_t> counts;

  /// Index of the highest-count bin.
  size_t ArgMax() const;

  /// True if the histogram has >= 2 local maxima separated by a valley at
  /// most `valley_ratio` of the smaller peak — the paper's bi-modality.
  bool IsBimodal(double valley_ratio = 0.6) const;
};

/// Builds the average-similarity histogram of a feature matrix.
SimilarityHistogram ComputeSimilarityHistogram(const FeatureMatrix& x,
                                               size_t bins = 20);

}  // namespace transer

#endif  // TRANSER_DATA_DATASET_STATISTICS_H_

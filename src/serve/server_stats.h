#ifndef TRANSER_SERVE_SERVER_STATS_H_
#define TRANSER_SERVE_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace transer {
namespace serve {

/// \brief Point-in-time view of the serving counters, the latency
/// percentiles, and the repository state — the health/readiness payload
/// of the kStats endpoint and the drain-time flush.
struct StatsSnapshot {
  uint64_t received = 0;
  uint64_t served_full = 0;      ///< answered at the requested level
  uint64_t served_degraded = 0;  ///< answered one rung down
  uint64_t shed = 0;             ///< refused at admission (queue/drain)
  uint64_t rejected = 0;         ///< refused after admission (budget, model)
  uint64_t malformed = 0;        ///< frames the codec rejected
  uint64_t latency_samples = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  // Repository / lifecycle state, filled by the server core.
  uint64_t models = 0;
  uint64_t refreshes = 0;
  uint64_t load_retries = 0;
  uint64_t quarantined = 0;
  uint64_t active_requests = 0;
  bool ready = false;
  bool draining = false;
  // kNN index telemetry, filled by the server core: the configured
  // backend for rebuilt "knn"-family classifiers, and the aggregate
  // footprint of every live ANN graph across loaded models.
  std::string knn_backend;   ///< KnnBackendKindName of the host choice
  uint64_t ann_models = 0;   ///< loaded classifiers backed by the graph
  uint64_t ann_points = 0;   ///< indexed points across those graphs
  uint64_t ann_edges = 0;    ///< links across those graphs

  /// One-line JSON rendering (stable key order, no external deps).
  std::string ToJson() const;
};

/// \brief Lock-free serving counters plus a log-bucketed latency
/// histogram. Everything is atomics, so request threads record without
/// contention; percentiles are computed from the histogram on demand
/// (bucket-upper-bound resolution, which is plenty for p50/p99 health
/// reporting).
class ServerStats {
 public:
  /// Histogram buckets: [0, 1ms) then doubling up to ~0.5 s, with a
  /// final overflow bucket.
  static constexpr size_t kLatencyBuckets = 12;

  void RecordReceived() { Add(&received_); }
  void RecordServedFull() { Add(&served_full_); }
  void RecordServedDegraded() { Add(&served_degraded_); }
  void RecordShed() { Add(&shed_); }
  void RecordRejected() { Add(&rejected_); }
  void RecordMalformed() { Add(&malformed_); }

  void RecordLatencyMs(double milliseconds);

  /// Counters + percentiles; the repository/lifecycle fields are left
  /// zero for the caller (the server core) to fill.
  StatsSnapshot Snapshot() const;

 private:
  static void Add(std::atomic<uint64_t>* counter) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }

  /// Upper bound (ms) of bucket `i`.
  static double BucketUpperMs(size_t i);

  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> served_full_{0};
  std::atomic<uint64_t> served_degraded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> malformed_{0};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_buckets_{};
};

}  // namespace serve
}  // namespace transer

#endif  // TRANSER_SERVE_SERVER_STATS_H_

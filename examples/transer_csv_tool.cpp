// Command-line TransER: classify an unlabelled target feature matrix
// (CSV) using a labelled source feature matrix (CSV) and write the
// predicted labels back out.
//
// Usage:
//   transer_csv_tool --source=source.csv --target=target.csv \
//       [--out=labels.csv] [--classifier=rf|lr|svm|dt|nb|knn]
//       [--tc=0.9] [--tl=0.9] [--tp=0.99] [--k=7] [--b=3]
//
// CSV format: one column per feature plus a final "label" column
// (1 = match, 0 = non-match, -1 = unlabelled), as written by
// FeatureMatrix::ToCsvFile. Target labels are ignored for prediction;
// when present they are used to print evaluation measures.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/transer.h"
#include "eval/metrics.h"
#include "features/feature_matrix.h"
#include "ml/decision_tree.h"
#include "ml/knn_classifier.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "util/string_util.h"

namespace transer {
namespace {

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (StartsWith(argv[i], prefix)) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return fallback;
}

double GetDoubleFlag(int argc, char** argv, const std::string& name,
                     double fallback) {
  const std::string raw = GetFlag(argc, argv, name, "");
  double value = fallback;
  if (!raw.empty() && !ParseDouble(raw, &value)) {
    std::fprintf(stderr, "bad value for --%s: %s\n", name.c_str(),
                 raw.c_str());
    std::exit(2);
  }
  return value;
}

ClassifierFactory MakeFactory(const std::string& name) {
  if (name == "rf") {
    return []() -> std::unique_ptr<Classifier> {
      return std::make_unique<RandomForest>();
    };
  }
  if (name == "lr") {
    return []() -> std::unique_ptr<Classifier> {
      return std::make_unique<LogisticRegression>();
    };
  }
  if (name == "svm") {
    return []() -> std::unique_ptr<Classifier> {
      return std::make_unique<LinearSvm>();
    };
  }
  if (name == "dt") {
    return []() -> std::unique_ptr<Classifier> {
      return std::make_unique<DecisionTree>();
    };
  }
  if (name == "nb") {
    return []() -> std::unique_ptr<Classifier> {
      return std::make_unique<GaussianNaiveBayes>();
    };
  }
  if (name == "knn") {
    return []() -> std::unique_ptr<Classifier> {
      return std::make_unique<KnnClassifier>();
    };
  }
  std::fprintf(stderr, "unknown classifier '%s' (rf|lr|svm|dt|nb|knn)\n",
               name.c_str());
  std::exit(2);
}

int Main(int argc, char** argv) {
  const std::string source_path = GetFlag(argc, argv, "source", "");
  const std::string target_path = GetFlag(argc, argv, "target", "");
  if (source_path.empty() || target_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --source=source.csv --target=target.csv "
                 "[--out=labels.csv] [--classifier=rf]\n",
                 argv[0]);
    return 2;
  }

  auto source = FeatureMatrix::FromCsvFile(source_path);
  if (!source.ok()) {
    std::fprintf(stderr, "cannot load source: %s\n",
                 source.status().ToString().c_str());
    return 1;
  }
  auto target = FeatureMatrix::FromCsvFile(target_path);
  if (!target.ok()) {
    std::fprintf(stderr, "cannot load target: %s\n",
                 target.status().ToString().c_str());
    return 1;
  }

  TransEROptions options;
  options.t_c = GetDoubleFlag(argc, argv, "tc", options.t_c);
  options.t_l = GetDoubleFlag(argc, argv, "tl", options.t_l);
  options.t_p = GetDoubleFlag(argc, argv, "tp", options.t_p);
  options.k = static_cast<size_t>(GetDoubleFlag(argc, argv, "k",
                                                static_cast<double>(options.k)));
  options.b = GetDoubleFlag(argc, argv, "b", options.b);

  TransER transer(options);
  TransERReport report;
  auto predicted = transer.RunWithReport(
      source.value(), target.value().WithoutLabels(),
      MakeFactory(GetFlag(argc, argv, "classifier", "rf")),
      TransferRunOptions{}, &report);
  if (!predicted.ok()) {
    std::fprintf(stderr, "TransER failed: %s\n",
                 predicted.status().ToString().c_str());
    return 1;
  }

  std::printf("source: %zu instances (%zu matches), target: %zu\n",
              source.value().size(), source.value().CountMatches(),
              target.value().size());
  std::printf("SEL kept %zu; TCL trained on %zu balanced instances\n",
              report.selected_instances, report.balanced_instances);
  size_t predicted_matches = 0;
  for (int label : predicted.value()) predicted_matches += label == 1;
  std::printf("predicted %zu matches / %zu pairs\n", predicted_matches,
              predicted.value().size());

  // If the target CSV carried labels, report quality against them.
  if (target.value().CountUnlabeled() < target.value().size()) {
    std::printf("quality vs target labels: %s\n",
                EvaluateLinkage(target.value().labels(), predicted.value())
                    .ToString()
                    .c_str());
  }

  const std::string out_path = GetFlag(argc, argv, "out", "");
  if (!out_path.empty()) {
    const FeatureMatrix labelled =
        target.value().WithLabels(predicted.value());
    const Status status = labelled.ToCsvFile(out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace transer

int main(int argc, char** argv) { return transer::Main(argc, argv); }

#ifndef TRANSER_LINALG_EIGEN_H_
#define TRANSER_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace transer {

/// \brief Eigendecomposition result: eigenvalues sorted descending, with
/// `vectors` holding the matching eigenvectors as columns.
struct EigenDecomposition {
  std::vector<double> values;
  Matrix vectors;
};

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// method. Returns InvalidArgument for non-square input. Accuracy is
/// ample for the m x m and kernel-sized problems in this library.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64,
                                          double tolerance = 1e-12);

/// Solves the generalized symmetric eigenproblem A v = lambda B v with A
/// symmetric and B symmetric positive definite, via the Cholesky reduction
/// B = L L^T, C = L^{-1} A L^{-T}. Eigenvalues are sorted descending and
/// eigenvectors (columns) are back-transformed so that v = L^{-T} y.
Result<EigenDecomposition> GeneralizedSymmetricEigen(const Matrix& a,
                                                     const Matrix& b);

/// Computes A^power for a symmetric positive semi-definite matrix through
/// its eigendecomposition; eigenvalues below `floor` are clamped to it
/// before exponentiation (needed for inverse powers of near-singular
/// covariances, as in CORAL whitening).
Result<Matrix> SymmetricMatrixPower(const Matrix& a, double power,
                                    double floor = 1e-12);

}  // namespace transer

#endif  // TRANSER_LINALG_EIGEN_H_
